"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Trained models
are cached in a session-wide :class:`repro.eval.harness.ExperimentContext`, so
the expensive training runs are shared across benchmarks.  Select the
fidelity/wall-clock trade-off with ``REPRO_BENCH_PROFILE`` (``quick`` default,
``full`` for longer schedules, ``smoke`` for CI-style smoke runs).
"""

from __future__ import annotations

import pytest

from repro.eval.harness import get_profile, global_context


def pytest_report_header(config):
    profile = get_profile()
    return f"repro benchmark profile: {profile.name}"


@pytest.fixture(scope="session")
def context():
    """Session-wide experiment context with cached trained models."""
    return global_context(get_profile())


@pytest.fixture(scope="session")
def dataset_name():
    """The dataset every benchmark defaults to (the paper's XA dataset analogue)."""
    return "xa_like"


def print_tables(*tables) -> None:
    """Print result tables so the benchmark output mirrors the paper artefact."""
    for table in tables:
        print()
        print(table.to_text())
