"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Trained models
are cached in a session-wide :class:`repro.eval.harness.ExperimentContext`, so
the expensive training runs are shared across benchmarks.  Select the
fidelity/wall-clock trade-off with ``REPRO_BENCH_PROFILE`` (``quick`` default,
``full`` for longer schedules, ``smoke`` for CI-style smoke runs).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.eval.harness import get_profile, global_context

#: Benchmarks that do NOT train models; everything else in this directory is
#: automatically marked ``slow`` so ``pytest -m "not slow"`` is a fast tier.
FAST_BENCHMARK_FILES = {"test_perf_engine.py"}

_BENCHMARKS_DIR = Path(__file__).resolve().parent


def pytest_collection_modifyitems(config, items):
    # The hook receives the whole session's items; only mark the
    # table/figure benchmarks that live in this directory.
    for item in items:
        path = Path(str(item.path)).resolve()
        if path.parent == _BENCHMARKS_DIR and path.name not in FAST_BENCHMARK_FILES:
            item.add_marker(pytest.mark.slow)


def pytest_report_header(config):
    profile = get_profile()
    return f"repro benchmark profile: {profile.name}"


@pytest.fixture(scope="session")
def context():
    """Session-wide experiment context with cached trained models."""
    return global_context(get_profile())


@pytest.fixture(scope="session")
def dataset_name():
    """The dataset every benchmark defaults to (the paper's XA dataset analogue)."""
    return "xa_like"


def print_tables(*tables) -> None:
    """Print result tables so the benchmark output mirrors the paper artefact."""
    for table in tables:
        print()
        print(table.to_text())
