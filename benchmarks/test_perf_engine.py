"""Benchmark: engine micro-benchmarks (fused kernels, KV-cached decode,
float32 compute policy, batched rollout, batched single-pass evaluation,
sharded evaluation, continuous-batching serving).

Unlike the table/figure benchmarks this one trains nothing — it times the
engine fast paths against the formulations they replaced and writes
``BENCH_engine.json`` at the repository root so future changes have a perf
trajectory to regress against (compare two reports with
``scripts/bench_compare.py``; sections missing from an older report are
listed as skipped, not failed).  It is deliberately NOT marked ``slow``: it
runs in seconds and is the regression gate for the engine.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

from repro.eval.perfbench import PerfBenchConfig, run_perfbench, write_report

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Required speedups of the optimised engine paths over the legacy ones.
FORWARD_BACKWARD_TARGET = 3.0
DECODE_TARGET = 5.0
#: float32 step time must be <= 0.8x the float64 step time.
DTYPE_TARGET = 1.25
BATCHED_ROLLOUT_TARGET = 2.0
#: The batched single-pass evaluation paths (recovery, traffic
#: prediction/imputation) must not be slower than the per-case loops they
#: replaced; the win comes from assembling one right-padded prompt batch
#: instead of one prompt at a time.
BATCHED_RECOVERY_TARGET = 1.0
BATCHED_TRAFFIC_TARGET = 1.0
#: Continuous-batched serving must not be slower than serial per-request
#: execution of the same trace (typically well above 1 — the scheduler folds
#: every group of batch-compatible requests into one ``*_batch`` model call).
SERVING_TARGET = 1.0
#: Sharding needs cores (and cheap fork-based workers) to win; the gate only
#: applies on multi-core machines where the fork start method exists.
SHARDED_EVAL_TARGET = 2.0
SHARDED_EVAL_MIN_CPUS = 4

EXPECTED_SECTIONS = {
    "tokenizer",
    "forward_backward",
    "decode",
    "dtype_policy",
    "batched_rollout",
    "batched_recovery",
    "batched_traffic",
    "sharded_eval",
    "serving",
}


def _gated_speedups(report) -> dict:
    gates = {
        "forward_backward": FORWARD_BACKWARD_TARGET,
        "decode": DECODE_TARGET,
        "dtype_policy": DTYPE_TARGET,
        "batched_rollout": BATCHED_ROLLOUT_TARGET,
        "batched_recovery": BATCHED_RECOVERY_TARGET,
        "batched_traffic": BATCHED_TRAFFIC_TARGET,
        "serving": SERVING_TARGET,
    }
    if (os.cpu_count() or 1) >= SHARDED_EVAL_MIN_CPUS and "fork" in multiprocessing.get_all_start_methods():
        gates["sharded_eval"] = SHARDED_EVAL_TARGET
    return gates


def test_perf_engine_report():
    report = run_perfbench()
    gates = _gated_speedups(report)
    if any(report.results[name]["speedup"] < target for name, target in gates.items()):
        # Wall-clock on a shared core is noisy; one retry with more paired
        # samples tightens the best-of estimate before failing for real.
        report = run_perfbench(PerfBenchConfig(samples=16))

    path = write_report(report, REPO_ROOT / "BENCH_engine.json")
    written = json.loads(path.read_text())
    assert written["config_id"] == report.config.config_id
    assert set(written["results"]) == EXPECTED_SECTIONS

    for name, target in gates.items():
        assert report.results[name]["speedup"] >= target, (name, report.results[name])
    assert report.results["tokenizer"]["sequences_per_s"] > 0.0
    # The batched single-pass evaluation paths must return exactly what the
    # per-case loops return.
    assert report.results["batched_recovery"]["identical"] == 1.0, report.results["batched_recovery"]
    assert report.results["batched_traffic"]["identical"] == 1.0, report.results["batched_traffic"]
    # Sharded evaluation must merge to bit-identical results on any machine,
    # even where the parallel speedup gate does not apply.
    assert report.results["sharded_eval"]["identical"] == 1.0, report.results["sharded_eval"]
    # Continuous-batched serving must return exactly what serial per-request
    # execution returns, and its latency percentiles must be ordered.
    serving = report.results["serving"]
    assert serving["identical"] == 1.0, serving
    assert serving["latency_p50_s"] <= serving["latency_p95_s"] <= serving["latency_p99_s"], serving
    # The Poisson run must actually fold requests into batch calls — the
    # mixed trace includes recovery and traffic requests, so the fold metric
    # proves every request kind batches, not just next-hop rollouts.
    assert serving["folded"] > 0.0, serving
    # With no fault plan installed the resilience layer must be invisible:
    # a clean benchmark run sheds, retries, isolates, fails, respawns and
    # quarantines exactly nothing, and the load generator observes no
    # rejected/failed/timed-out requests.
    for counter in (
        "shed",
        "retried",
        "isolated",
        "failed",
        "respawned",
        "quarantined",
        "rejected",
        "loadgen_rejected",
        "loadgen_failed",
        "loadgen_timeouts",
        "failure_rate",
    ):
        assert serving[counter] == 0.0, (counter, serving)


def test_perf_config_hash_is_stable():
    first = PerfBenchConfig()
    second = PerfBenchConfig()
    assert first.config_id == second.config_id
    assert first.config_id != PerfBenchConfig(seq_len=64).config_id
