"""Benchmark: engine micro-benchmarks (fused kernels + KV-cached decode).

Unlike the table/figure benchmarks this one trains nothing — it times the
engine fast paths against the legacy formulations they replaced and writes
``BENCH_engine.json`` at the repository root so future changes have a perf
trajectory to regress against (compare two reports with
``scripts/bench_compare.py``).  It is deliberately NOT marked ``slow``: it
runs in seconds and is the regression gate for the engine.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.eval.perfbench import PerfBenchConfig, run_perfbench, write_report

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Required speedups of the optimised engine paths over the legacy ones.
FORWARD_BACKWARD_TARGET = 3.0
DECODE_TARGET = 5.0


def test_perf_engine_report():
    report = run_perfbench()
    forward_backward = report.results["forward_backward"]
    decode = report.results["decode"]
    if (
        forward_backward["speedup"] < FORWARD_BACKWARD_TARGET
        or decode["speedup"] < DECODE_TARGET
    ):
        # Wall-clock on a shared core is noisy; one retry with more paired
        # samples tightens the best-of estimate before failing for real.
        report = run_perfbench(PerfBenchConfig(samples=16))
        forward_backward = report.results["forward_backward"]
        decode = report.results["decode"]

    path = write_report(report, REPO_ROOT / "BENCH_engine.json")
    written = json.loads(path.read_text())
    assert written["config_id"] == report.config.config_id
    assert set(written["results"]) == {"tokenizer", "forward_backward", "decode"}

    assert forward_backward["speedup"] >= FORWARD_BACKWARD_TARGET, forward_backward
    assert decode["speedup"] >= DECODE_TARGET, decode
    assert report.results["tokenizer"]["sequences_per_s"] > 0.0


def test_perf_config_hash_is_stable():
    first = PerfBenchConfig()
    second = PerfBenchConfig()
    assert first.config_id == second.config_id
    assert first.config_id != PerfBenchConfig(seq_len=64).config_id
