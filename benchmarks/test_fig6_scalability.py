"""Benchmark: regenerate Figure 6 (efficiency and scalability)."""

from repro.eval.experiments import BIGCITY_NAME, run_fig6_scalability

from conftest import print_tables


def test_fig6_scalability(benchmark, context, dataset_name):
    result = benchmark.pedantic(
        lambda: run_fig6_scalability(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(result["inference_time"], result["search_time"], result["mean_rank"])

    inference = result["inference_time"].rows[BIGCITY_NAME]
    sizes = sorted(inference, key=lambda key: int(key.split("=")[1]))
    times = [inference[key] for key in sizes]
    # Shape check (Fig. 6a): inference cost grows roughly linearly — the cost
    # per sample must not explode as the input grows.
    assert times[-1] >= times[0] * 0.5
    per_sample = [time / int(size.split("=")[1]) for size, time in zip(sizes, times)]
    assert per_sample[-1] <= per_sample[0] * 3.0

    # Shape check (Fig. 6b): classical measures slow down with database size
    # much faster than embedding search does.
    search = result["search_time"].rows
    db_keys = sorted(search[BIGCITY_NAME], key=lambda key: int(key.split("=")[1]))
    if "dtw" in search and len(db_keys) >= 2:
        dtw_growth = search["dtw"][db_keys[-1]] / max(search["dtw"][db_keys[0]], 1e-9)
        big_growth = search[BIGCITY_NAME][db_keys[-1]] / max(search[BIGCITY_NAME][db_keys[0]], 1e-9)
        assert dtw_growth >= big_growth * 0.5

    # Shape check (Fig. 6c): mean rank stays bounded for BIGCity.
    ranks = result["mean_rank"].rows[BIGCITY_NAME]
    assert all(value >= 1.0 for value in ranks.values())
