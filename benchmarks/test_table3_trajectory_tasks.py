"""Benchmark: regenerate Table III (trajectory non-generative tasks).

Travel time estimation, trajectory classification, next-hop prediction and
most-similar search, for BIGCity and the seven trajectory-representation
baselines.  Absolute numbers differ from the paper (synthetic data, CPU-scale
models); the shape check asserts BIGCity is competitive: best or near-best on
the majority of metrics.
"""

from repro.eval.experiments import BIGCITY_NAME, run_table3_trajectory_tasks

from conftest import print_tables


def test_table3_trajectory_tasks(benchmark, context, dataset_name):
    tables = benchmark.pedantic(
        lambda: run_table3_trajectory_tasks(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(*tables.values())

    # Every model must have been evaluated on every task family.
    for table in tables.values():
        assert BIGCITY_NAME in table.rows
        assert len(table.rows) >= 3

    # Shape checks.  With synthetic data and no pretrained GPT-2, absolute
    # parity with the paper is out of reach; what must hold is that the single
    # multi-task BIGCity model is competitive with the per-task baselines:
    # a clear win on travel-time estimation (its most robust advantage here)
    # and a top-half ranking on at least two of the four task families.
    assert tables["travel_time"].best_by("mae") == BIGCITY_NAME

    headline = {
        "travel_time": "mae",
        "classification": "macro_f1" if context.dataset(dataset_name).has_dynamic_features else "f1",
        "next_hop": "mrr@5",
        "similarity": "hr@5",
    }
    top_half = 0
    for task, metric in headline.items():
        table = tables[task]
        rank = table.rank_of(BIGCITY_NAME, metric)
        if rank is not None and rank <= max(1, (len(table.rows) + 1) // 2):
            top_half += 1
    assert top_half >= 2, f"BIGCity in top half for only {top_half} of 4 trajectory tasks"
