"""Benchmark: regenerate Table IV (trajectory recovery at several mask ratios)."""

from repro.eval.experiments import BIGCITY_NAME, run_table4_recovery

from conftest import print_tables


def test_table4_recovery(benchmark, context, dataset_name):
    table = benchmark.pedantic(
        lambda: run_table4_recovery(context, dataset_name, mask_ratios=(0.85, 0.90, 0.95)),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert BIGCITY_NAME in table.rows
    assert len(table.rows) >= 3

    # Shape checks shared with the paper: recovering gets harder as the mask
    # ratio grows, for every method.
    for model, row in table.rows.items():
        if all(f"acc@{m}" in row for m in (85, 95)):
            assert row["acc@95"] <= row["acc@85"] + 0.05, f"{model} does not degrade with mask ratio"

    # Learned or graph-aware methods should beat naive linear interpolation.
    if "linear_hmm" in table.rows:
        best_acc = max(row.get("acc@85", 0.0) for name, row in table.rows.items() if name != "linear_hmm")
        assert best_acc >= table.rows["linear_hmm"].get("acc@85", 0.0)
