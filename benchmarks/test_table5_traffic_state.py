"""Benchmark: regenerate Table V (traffic-state prediction and imputation)."""

from repro.eval.experiments import BIGCITY_NAME, run_table5_traffic_state

from conftest import print_tables


def test_table5_traffic_state(benchmark, context, dataset_name):
    tables = benchmark.pedantic(
        lambda: run_table5_traffic_state(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(*tables.values())

    for table in tables.values():
        assert BIGCITY_NAME in table.rows
        assert len(table.rows) >= 3
        for row in table.rows.values():
            assert all(value >= 0 for value in row.values())

    # Shape check shared with the paper: multi-step forecasting is harder
    # than one-step forecasting for the overwhelming majority of models.
    harder = 0
    total = 0
    for model in tables["one_step"].rows:
        one = tables["one_step"].rows[model].get("mae")
        multi = tables["multi_step"].rows.get(model, {}).get("mae")
        if one is not None and multi is not None:
            total += 1
            if multi >= one * 0.95:
                harder += 1
    assert total > 0 and harder >= total // 2
