"""Benchmark: regenerate Figure 1 (per-task radar chart of BIGCity vs best baseline)."""

from repro.eval.experiments import BIGCITY_NAME, run_fig1_radar

from conftest import print_tables


def test_fig1_radar(benchmark, context, dataset_name):
    table = benchmark.pedantic(
        lambda: run_fig1_radar(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    row = table.rows[BIGCITY_NAME]
    # The radar chart has one axis per evaluated task; with traffic states
    # available there are eight axes as in the paper's Figure 1.
    assert len(row) >= 5
    assert all(value > 0 for value in row.values())
    # Shape check: the single multi-task model matches or beats the best
    # task-specific baseline (value >= 0.9) on at least two axes, and is never
    # off the chart (every axis stays above 3% of the best baseline).  The
    # paper's fully dominant radar relies on a pretrained GPT-2 and millions
    # of trajectories; see EXPERIMENTS.md for the discussion.
    competitive = sum(1 for value in row.values() if value >= 0.9)
    assert competitive >= 2
    assert all(value >= 0.03 for value in row.values())
