"""Benchmark: regenerate Table VI (cross-city generalisation)."""

from repro.eval.experiments import run_table6_generalization

from conftest import print_tables


def test_table6_generalization(benchmark, context):
    table = benchmark.pedantic(
        lambda: run_table6_generalization(context, source_dataset="bj_like", target_datasets=("xa_like",)),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert "xa_like/native" in table.rows
    assert "xa_like/transferred" in table.rows

    native = table.rows["xa_like/native"]
    transferred = table.rows["xa_like/transferred"]
    # Shape check: the transferred backbone stays in the same ballpark as the
    # natively trained model (the paper reports <7% average degradation; we
    # allow a generous factor because the synthetic cities are small).
    assert transferred["tte_mae"] <= native["tte_mae"] * 3.0 + 1.0
    assert transferred["next_acc"] >= 0.0
