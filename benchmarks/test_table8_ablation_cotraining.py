"""Benchmark: regenerate Table VIII (multi-task co-training ablation)."""

from repro.eval.experiments import run_table8_cotraining_ablations

from conftest import print_tables


def test_table8_cotraining_ablations(benchmark, context, dataset_name):
    table = benchmark.pedantic(
        lambda: run_table8_cotraining_ablations(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert set(table.rows) >= {"next_only", "tte_only", "ms_only", "ms+next", "tte+next", "all"}

    # Single-task runs only report their own metric, as in the paper's table.
    assert set(table.rows["next_only"]) == {"next_acc"}
    assert set(table.rows["tte_only"]) == {"tte_mae"}
    assert set(table.rows["ms_only"]) == {"ms_mape"}
    # The co-trained run reports every metric.
    assert set(table.rows["all"]) == {"next_acc", "tte_mae", "ms_mape"}
    for row in table.rows.values():
        assert all(value >= 0 for value in row.values())
