"""Benchmark: regenerate Table IX (training efficiency)."""

from repro.eval.experiments import BIGCITY_NAME, run_table9_efficiency

from conftest import print_tables


def test_table9_efficiency(benchmark, context, dataset_name):
    table = benchmark.pedantic(
        lambda: run_table9_efficiency(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert BIGCITY_NAME in table.rows
    big = table.rows[BIGCITY_NAME]

    # Shape checks mirroring Table IX: BIGCity has the largest parameter
    # count of the compared models, yet thanks to LoRA only a fraction of it
    # is trainable, and its per-epoch cost stays within a moderate factor of
    # the much smaller two-stage baselines.
    baseline_params = [row["parameters"] for name, row in table.rows.items() if name != BIGCITY_NAME]
    assert big["parameters"] >= max(baseline_params)
    assert big["trainable_parameters"] < big["parameters"]
    baseline_times = [row["stage2_s_per_epoch"] for name, row in table.rows.items() if name != BIGCITY_NAME]
    assert big["stage2_s_per_epoch"] <= max(baseline_times) * 50 + 60.0
