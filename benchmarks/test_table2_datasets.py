"""Benchmark: regenerate Table II (dataset statistics)."""

from repro.eval.experiments import run_table2_dataset_statistics

from conftest import print_tables


def test_table2_dataset_statistics(benchmark, context):
    table = benchmark.pedantic(
        lambda: run_table2_dataset_statistics(context),
        rounds=1,
        iterations=1,
    )
    print_tables(table)
    rows = table.rows
    assert set(rows) == {"bj_like", "xa_like", "cd_like"}
    # Shape check against Table II: BJ is the largest city and has no
    # dynamic traffic-state features.
    assert rows["bj_like"]["road_segments"] >= rows["xa_like"]["road_segments"]
    assert rows["bj_like"]["has_dynamic_features"] == 0.0
    assert rows["xa_like"]["has_dynamic_features"] == 1.0
