"""Benchmark: regenerate Table VII (ablations on model designs)."""

from repro.eval.experiments import run_table7_design_ablations

from conftest import print_tables


def test_table7_design_ablations(benchmark, context, dataset_name):
    table = benchmark.pedantic(
        lambda: run_table7_design_ablations(context, dataset_name),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert set(table.rows) >= {"full", "wo_dyn", "wo_sta", "wo_fus", "wo_pro"}

    # Every ablated variant reports the trajectory-task metrics; only
    # variants with a dynamic encoder report the traffic metric (as in the
    # paper, where '-' marks tasks an ablation cannot run).
    assert "multi_step_mape" in table.rows["full"]
    assert "multi_step_mape" not in table.rows["wo_dyn"]

    # Shape check: the full model is best (or within 10% of the best ablated
    # variant) on at least two of the headline metrics, mirroring the paper's
    # conclusion that every module contributes.  Small-scale training noise
    # means individual metrics can flip, so the check is deliberately coarse.
    wins = 0
    for metric in ("tte_mae", "next_acc", "simi_hr@10", "reco_acc", "clas_macro_f1"):
        best = table.best_by(metric)
        if best is None:
            continue
        full_value = table.value("full", metric)
        best_value = table.value(best, metric)
        if full_value is None or best_value is None:
            continue
        higher = table.higher_is_better.get(metric, True)
        if best == "full":
            wins += 1
        elif higher and full_value >= 0.9 * best_value:
            wins += 1
        elif not higher and full_value <= 1.1 * best_value:
            wins += 1
    assert wins >= 2, f"full model competitive on only {wins} headline metrics"
