"""Benchmark: regenerate Figure 5 (LoRA rank / coverage sensitivity)."""

from repro.eval.experiments import run_fig5_lora_sensitivity

from conftest import print_tables


def test_fig5_lora_sensitivity(benchmark, context, dataset_name):
    ranks = (4, 8, 16)
    coverages = (1.0,)
    table = benchmark.pedantic(
        lambda: run_fig5_lora_sensitivity(context, dataset_name, ranks=ranks, coverages=coverages),
        rounds=1,
        iterations=1,
    )
    print_tables(table)

    assert len(table.rows) == len(ranks) * len(coverages)
    for row in table.rows.values():
        assert {"tte_mae", "next_acc", "simi_hr@1"} <= set(row)
        assert row["tte_mae"] >= 0

    # Shape check mirroring Fig. 5: full LoRA coverage (n=1) should not be
    # worse than half coverage on the majority of metrics at the chosen rank.
    full = table.rows.get("lora_r8_n1")
    half = table.rows.get("lora_r8_n0.5")
    if full and half:
        better = 0
        better += int(full["tte_mae"] <= half["tte_mae"] * 1.5)
        better += int(full["next_acc"] >= half["next_acc"] * 0.5)
        better += int(full["simi_hr@5"] >= half["simi_hr@5"] * 0.5)
        assert better >= 2
