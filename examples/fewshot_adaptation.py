"""Few-shot cross-city adaptation: how much target-city data does BIGCity need?

Run with:

    python examples/fewshot_adaptation.py

The paper's Table VI transfers a backbone trained on the large BJ dataset to
XA/CD and fine-tunes only the tokenizer's final MLP.  This example pushes the
idea further: the backbone trained on the BJ-like city is adapted to the
XA-like city with 0 (zero-shot), 4, 16 and all available training
trajectories, and the resulting models are compared on travel time, next-hop
and user-linkage.  The trend to look for is the few-shot curve approaching
the fully fine-tuned transfer as the shot count grows.
"""

from __future__ import annotations

from repro.core import BIGCityConfig, TrainingConfig, train_bigcity
from repro.core.fewshot import evaluate_adaptation, few_shot_transfer, zero_shot_transfer
from repro.data import load_dataset
from repro.eval.results import ResultTable


def main() -> None:
    print("Training the source model on the BJ-like city (no traffic states, as in the paper) ...")
    source_dataset = load_dataset("bj_like", seed=0)
    source_model, _ = train_bigcity(
        source_dataset,
        BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0),
        TrainingConfig(stage1_epochs=2, stage2_epochs=4, batch_size=8, seed=0),
    )

    print("Adapting to the XA-like city with growing amounts of target data ...")
    target_dataset = load_dataset("xa_like", seed=0)
    finetune_config = TrainingConfig(stage2_epochs=2, batch_size=8, seed=0)

    table = ResultTable(
        title="Few-shot adaptation BJ-like -> XA-like",
        higher_is_better={"tte_mae": False, "tte_rmse": False, "next_acc": True, "next_mrr@5": True},
    )

    zero_shot = zero_shot_transfer(source_model, target_dataset)
    table.add_row("0 shots (zero-shot)", evaluate_adaptation(zero_shot, target_dataset, max_eval_samples=30))

    for shots in (4, 16):
        adapted = few_shot_transfer(
            source_model,
            target_dataset,
            shots=shots,
            finetune_epochs=2,
            training_config=finetune_config,
        )
        table.add_row(f"{shots} shots", evaluate_adaptation(adapted, target_dataset, max_eval_samples=30))

    full = few_shot_transfer(
        source_model,
        target_dataset,
        shots=len(target_dataset.splits.train),
        finetune_epochs=2,
        training_config=finetune_config,
    )
    table.add_row("all trajectories", evaluate_adaptation(full, target_dataset, max_eval_samples=30))

    print()
    print(table.to_text())
    print(
        "\nReading guide: travel-time error should shrink and next-hop accuracy grow "
        "as the number of target-city trajectories increases; the zero-shot row shows "
        "what the transferred backbone gives for free."
    )


if __name__ == "__main__":
    main()
