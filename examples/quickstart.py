"""Quickstart: train a small BIGCity model and run every kind of task once.

Run with:

    python examples/quickstart.py

The script builds the XA-like synthetic city dataset, trains BIGCity with a
short two-stage schedule (a couple of minutes on a laptop CPU), and then asks
the single trained model to perform travel-time estimation, next-hop
prediction, trajectory classification, similarity search, trajectory recovery
and traffic-state forecasting — the multi-task, multi-modality behaviour the
paper calls MTMD.
"""

from __future__ import annotations

import numpy as np

from repro.core import BIGCityConfig, TrainingConfig, train_bigcity
from repro.data import load_dataset, subsample_trajectory


def main() -> None:
    print("Loading the XA-like synthetic city dataset ...")
    dataset = load_dataset("xa_like", seed=0)
    print(f"  {dataset.summary()}")

    print("\nTraining BIGCity (stage 1: masked reconstruction, stage 2: prompt tuning) ...")
    model_config = BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0)
    training_config = TrainingConfig(
        stage1_epochs=2,
        stage2_epochs=6,
        batch_size=8,
        traffic_sequences_per_epoch=32,
        seed=0,
    )
    model, logs = train_bigcity(dataset, model_config, training_config)
    for stage, stage_logs in logs.items():
        losses = ", ".join(f"{log.loss:.2f}" for log in stage_logs)
        print(f"  {stage}: per-epoch loss {losses}")

    test = dataset.test_trajectories
    sample = [t for t in test if len(t) >= 4][:5]

    print("\n--- Travel time estimation -------------------------------------")
    predicted = model.estimate_travel_time(sample)
    for trajectory, estimate in zip(sample, predicted):
        print(f"  trajectory {trajectory.trajectory_id}: predicted {estimate / 60:5.1f} min, actual {trajectory.duration / 60:5.1f} min")

    print("\n--- Next hop prediction ------------------------------------------")
    rankings = model.predict_next_hop(sample, top_k=3)
    for trajectory, ranking in zip(sample, rankings):
        print(f"  trajectory {trajectory.trajectory_id}: true next segment {trajectory.segments[-1]}, top-3 candidates {list(ranking)}")

    print("\n--- Trajectory classification (user linkage) ---------------------")
    users = model.classify_trajectory(sample, target="user")
    for trajectory, user in zip(sample, users):
        print(f"  trajectory {trajectory.trajectory_id}: predicted user {user}, true user {trajectory.user_id}")

    print("\n--- Most similar trajectory search --------------------------------")
    embeddings = model.trajectory_embeddings(test[:20])
    query = embeddings[0]
    similarity = embeddings @ query / (np.linalg.norm(embeddings, axis=1) * np.linalg.norm(query) + 1e-9)
    print(f"  nearest neighbours of trajectory {test[0].trajectory_id}: {list(np.argsort(-similarity)[1:4])}")

    print("\n--- Trajectory recovery -------------------------------------------")
    long_trajectory = max(test, key=len)
    _, kept = subsample_trajectory(long_trajectory, keep_ratio=0.3, rng=np.random.default_rng(0))
    recovered = model.recover_trajectory(long_trajectory, kept)
    missing = np.setdiff1d(np.arange(len(long_trajectory)), kept)
    truth = [long_trajectory.segments[i] for i in missing]
    correct = int(np.sum(recovered == np.asarray(truth)))
    print(f"  recovered {correct}/{len(truth)} masked segments of trajectory {long_trajectory.trajectory_id}")

    print("\n--- Traffic state forecasting --------------------------------------")
    forecast = model.predict_traffic_state(segment_id=3, start_slice=60, history=6, horizon=6)
    actual = dataset.traffic_states.values[3, 66:72, 0]
    print(f"  segment 3 speed forecast (km/h): {np.round(forecast[:, 0], 1)}")
    print(f"  segment 3 speed actual   (km/h): {np.round(actual, 1)}")

    print("\nDone: one model, eight heterogeneous tasks.")


if __name__ == "__main__":
    main()
