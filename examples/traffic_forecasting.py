"""Traffic-state forecasting: BIGCity against two task-specific baselines.

Run with:

    python examples/traffic_forecasting.py

The script trains BIGCity once (both stages) and two dedicated traffic-state
baselines (DCRNN-style and Graph-WaveNet-style) on the XA-like synthetic
city, then compares them on one-step prediction, multi-step prediction and
imputation — the three traffic tasks of Table V.  It is the "population
level" half of the paper's MTMD claim: the very same BIGCity parameters used
for trajectory tasks also forecast traffic states.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.traffic import build_traffic_baseline
from repro.core import BIGCityConfig, TrainingConfig, train_bigcity
from repro.data import load_dataset
from repro.eval.results import ResultTable
from repro.tasks.traffic import TrafficStateEvaluator

HISTORY = 6
HORIZON = 6


def main() -> None:
    print("Loading the XA-like synthetic city dataset ...")
    dataset = load_dataset("xa_like", seed=0)

    print("Training BIGCity (shared across every task) ...")
    model, _ = train_bigcity(
        dataset,
        BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0),
        TrainingConfig(stage1_epochs=2, stage2_epochs=5, batch_size=8, traffic_sequences_per_epoch=32, seed=0),
    )

    print("Training the task-specific baselines (DCRNN, GWNET) ...")
    baselines = {}
    for name in ("dcrnn", "gwnet"):
        baseline = build_traffic_baseline(name, dataset, history=HISTORY, horizon=HORIZON, hidden_dim=32, seed=0)
        baseline.fit(num_windows=32, epochs=3)
        baseline.fit_imputation(num_windows=16, epochs=3)
        baselines[name] = baseline

    evaluator = TrafficStateEvaluator(dataset, history=HISTORY, horizon=HORIZON, max_windows=48, seed=0)

    one_step = ResultTable(title="One-step prediction", higher_is_better={"mae": False, "rmse": False, "mape": False})
    multi_step = ResultTable(title="Multi-step prediction", higher_is_better={"mae": False, "rmse": False, "mape": False})
    imputation = ResultTable(title="Imputation (25% masked)", higher_is_better={"mae": False, "rmse": False, "mape": False})

    for name, baseline in baselines.items():
        one_step.add_row(name, evaluator.evaluate_prediction(baseline.predict, horizon=1))
        multi_step.add_row(name, evaluator.evaluate_prediction(baseline.predict, horizon=HORIZON))
        imputation.add_row(name, evaluator.evaluate_imputation(baseline.impute, mask_ratio=0.25, max_cases=24))

    one_step.add_row("bigcity", evaluator.evaluate_prediction(model.predict_traffic_state, horizon=1))
    multi_step.add_row("bigcity", evaluator.evaluate_prediction(model.predict_traffic_state, horizon=HORIZON))
    imputation.add_row("bigcity", evaluator.evaluate_imputation(model.impute_traffic_state, mask_ratio=0.25, max_cases=24))

    for table in (one_step, multi_step, imputation):
        print()
        print(table.to_text())

    print("\nA sample forecast for segment 3:")
    forecast = model.predict_traffic_state(segment_id=3, start_slice=60, history=HISTORY, horizon=HORIZON)
    actual = dataset.traffic_states.values[3, 60 + HISTORY : 60 + HISTORY + HORIZON, 0]
    print(f"  predicted speeds (km/h): {np.round(forecast[:, 0], 1)}")
    print(f"  actual speeds    (km/h): {np.round(actual, 1)}")


if __name__ == "__main__":
    main()
