"""POIs and grid cells: the spatial elements named as BIGCity's future work.

Run with:

    python examples/poi_grid_extension.py

The paper closes by noting that BIGCity "focused solely on road segments,
excluding other spatial elements such as POIs and grids".  This example shows
the substrate this repository provides for that direction (no training
involved, it runs in seconds):

1. generate a synthetic city and scatter POIs along its road segments,
2. build POI-category features per segment (a drop-in extension of the
   static feature vector of Definition 1),
3. partition the city into a grid and aggregate segment-level traffic states
   into cell-level series,
4. project a trajectory from the segment domain into the grid domain.
"""

from __future__ import annotations

import numpy as np

from repro.data import load_dataset
from repro.roadnet.poi import GridPartition, POIRegistry


def main() -> None:
    dataset = load_dataset("xa_like", seed=0)
    network = dataset.network
    print(f"XA-like city: {network.num_segments} road segments")

    print("\n--- POIs -----------------------------------------------------------")
    registry = POIRegistry.generate(network, pois_per_segment=1.5, seed=0)
    print(f"generated {len(registry)} POIs")
    for category, count in sorted(registry.category_counts().items(), key=lambda kv: -kv[1]):
        print(f"  {category:12s} {count}")

    features = registry.segment_category_features()
    richest = int(np.argmax(features.sum(axis=1)))
    print(f"segment with the most POIs: {richest} ({int(features[richest].sum())} POIs)")
    print("its POI mix:", {c: int(n) for c, n in zip(registry.category_counts(), features[richest]) if n})

    centre = network.segment(richest).midpoint
    nearest_hospital = registry.nearest(centre, category="hospital")
    if nearest_hospital is not None:
        print(f"nearest hospital to that segment: {nearest_hospital.name} on segment {nearest_hospital.segment_id}")

    print("\n--- Grid partition ---------------------------------------------------")
    grid = GridPartition(network, rows=4, cols=4)
    occupancy = grid.occupancy()
    print(f"{grid.num_cells} cells; segments per cell:")
    for row in occupancy:
        print("  " + " ".join(f"{int(count):3d}" for count in row))

    print("\n--- Grid-level traffic states ----------------------------------------")
    cell_series = grid.aggregate_traffic(dataset.traffic_states)
    busiest = int(np.argmax(cell_series[:, :, 0].mean(axis=1) * (occupancy.reshape(-1) > 0)))
    speeds = cell_series[busiest, :8, 0]
    print(f"cell {busiest} mean speed over the first 8 slices (km/h): {np.round(speeds, 1)}")

    print("\n--- A trajectory in the grid domain -----------------------------------")
    trajectory = max(dataset.trajectories, key=len)
    cells = grid.cell_trajectory(trajectory.segments)
    print(f"trajectory {trajectory.trajectory_id}: {len(trajectory)} segments -> {len(cells)} grid cells")
    print(f"  segment path: {trajectory.segments[:12]} ...")
    print(f"  cell path:    {cells}")


if __name__ == "__main__":
    main()
