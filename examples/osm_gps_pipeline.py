"""The data-preparation pipeline behind the paper's datasets, end to end.

Run with:

    python examples/osm_gps_pipeline.py

The paper's BJ/XA/CD datasets are built by (1) extracting a road network from
OpenStreetMap and (2) map-matching raw GPS trajectories onto it.  This
example exercises exactly that pipeline on synthetic data (it runs in
seconds, no model training involved):

1. generate a synthetic city and export it as OSM XML,
2. re-import the OSM file into a road network,
3. render segment-level trajectories as noisy GPS traces,
4. map-match the traces back onto the network with the HMM matcher,
5. report how much of the original path the matcher recovers at different
   GPS noise levels.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.data import load_dataset
from repro.data.gps import map_match_trace, trajectory_to_gps
from repro.roadnet.osm import load_osm, save_osm


def path_overlap(original, recovered) -> float:
    """Fraction of the original segments that reappear in the recovered path."""
    original_set = set(original.segments)
    recovered_set = set(recovered.segments)
    return len(original_set & recovered_set) / len(original_set)


def main() -> None:
    dataset = load_dataset("xa_like", seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        osm_path = Path(tmp) / "xa_like.osm"
        save_osm(dataset.network, osm_path)
        print(f"exported the XA-like road network to {osm_path.name} "
              f"({osm_path.stat().st_size / 1024:.1f} KiB of OSM XML)")

        network = load_osm(osm_path)
        print(f"re-imported {network.num_segments} road segments "
              f"(original: {dataset.network.num_segments}); "
              f"strongly connected: {network.is_strongly_connected()}")

    print("\nGPS rendering + HMM map matching on 20 trajectories:")
    trajectories = [t for t in dataset.test_trajectories if len(t) >= 5][:20]
    for noise_km in (0.0, 0.02, 0.05, 0.1):
        overlaps = []
        for trajectory in trajectories:
            trace = trajectory_to_gps(
                trajectory, dataset.network, points_per_segment=2, noise_sigma_km=noise_km, seed=trajectory.trajectory_id
            )
            recovered = map_match_trace(trace, dataset.network)
            overlaps.append(path_overlap(trajectory, recovered))
        print(f"  GPS noise sigma {noise_km * 1000:5.0f} m -> "
              f"mean path overlap {np.mean(overlaps):.2f} "
              f"(min {np.min(overlaps):.2f}, max {np.max(overlaps):.2f})")

    print(
        "\nThe overlap degrades gracefully with the GPS noise level — the same "
        "behaviour the map-matching step of the paper's preprocessing relies on."
    )


if __name__ == "__main__":
    main()
