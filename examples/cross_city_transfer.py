"""Cross-city transfer: pre-train on the big city, adapt to a smaller one.

The paper's Table VI shows that a BIGCity backbone trained on Beijing can be
attached to a fresh tokenizer for Xi'an or Chengdu and, after fine-tuning only
the tokenizer's final MLP (plus the task heads), stays within a few percent of
a natively trained model.  This example reproduces that workflow on the
synthetic presets.

Run with:  python examples/cross_city_transfer.py
"""

from __future__ import annotations

from repro.core import BIGCityConfig, TrainingConfig, train_bigcity, transfer_backbone
from repro.data import load_dataset
from repro.tasks import NextHopEvaluator, TravelTimeEvaluator


def evaluate(model, dataset, label: str) -> None:
    tte = TravelTimeEvaluator(dataset, max_samples=40, seed=0)
    next_hop = NextHopEvaluator(dataset, max_samples=40, seed=0)
    tte_result = tte.evaluate(model.estimate_travel_time)
    next_result = next_hop.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
    print(
        f"  {label:<22} TTE MAE {tte_result['mae']:5.2f} min | "
        f"next-hop ACC {next_result['acc']:.3f}  MRR@5 {next_result['mrr@5']:.3f}"
    )


def main() -> None:
    model_config = BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0)
    training_config = TrainingConfig(stage1_epochs=2, stage2_epochs=5, batch_size=8, seed=0)

    print("Training BIGCity on the source city (BJ-like, no traffic states) ...")
    source_dataset = load_dataset("bj_like", seed=0)
    source_model, _ = train_bigcity(source_dataset, model_config, training_config)

    print("Training a native model on the target city (XA-like) for reference ...")
    target_dataset = load_dataset("xa_like", seed=0)
    native_model, _ = train_bigcity(target_dataset, model_config, training_config)

    print("Transferring the BJ-trained backbone to XA and fine-tuning the tokenizer MLP ...")
    transferred_model, _ = transfer_backbone(
        source_model,
        target_dataset,
        training_config=TrainingConfig(stage2_epochs=2, batch_size=8, seed=0),
        finetune_epochs=2,
    )

    print("\nResults on the XA-like test split (Table VI scenario):")
    evaluate(native_model, target_dataset, "native (trained on XA)")
    evaluate(transferred_model, target_dataset, "transferred from BJ")


if __name__ == "__main__":
    main()
