"""Trajectory recovery from low-sampling-rate GPS, against classic baselines.

Mirrors the Table IV experiment at demo scale: trajectories are thinned to
~15% of their samples and each method must reconstruct the dropped road
segments.  Compares BIGCity against interpolation+HMM map matching and the
seq2seq recovery baseline.

Run with:  python examples/trajectory_recovery_demo.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import DTHRHMMRecovery, LinearHMMRecovery, MTrajRec
from repro.core import BIGCityConfig, TrainingConfig, train_bigcity
from repro.data import load_dataset
from repro.tasks import TrajectoryRecoveryEvaluator


def main() -> None:
    dataset = load_dataset("xa_like", seed=0)
    evaluator = TrajectoryRecoveryEvaluator(dataset, mask_ratio=0.85, max_samples=30, seed=0)
    print(f"Recovery benchmark: {len(evaluator)} test trajectories at 85% mask ratio\n")

    results = {}

    linear = LinearHMMRecovery(dataset)
    linear.fit()
    results["Linear+HMM"] = evaluator.evaluate(linear.recover)

    dthr = DTHRHMMRecovery(dataset)
    dthr.fit()
    results["DTHR+HMM"] = evaluator.evaluate(dthr.recover)

    print("Training MTrajRec (seq2seq recovery baseline) ...")
    mtrajrec = MTrajRec(dataset, seed=0)
    mtrajrec.fit(epochs=2)
    results["MTrajRec"] = evaluator.evaluate(mtrajrec.recover)

    print("Training BIGCity (multi-task, includes the recovery prompt) ...")
    model, _ = train_bigcity(
        dataset,
        BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0),
        TrainingConfig(stage1_epochs=2, stage2_epochs=6, batch_size=8, seed=0),
    )
    results["BIGCity"] = evaluator.evaluate(model.recover_trajectory)

    print("\nMethod          accuracy   macro-F1")
    print("-" * 38)
    for name, metrics in results.items():
        print(f"{name:<15} {metrics['accuracy']:8.3f} {metrics['macro_f1']:10.3f}")
    best = max(results, key=lambda name: results[name]["accuracy"])
    print(f"\nBest method at this scale: {best}")


if __name__ == "__main__":
    main()
