"""Joint trajectory + traffic analysis, the scenario that motivates MTMD models.

The paper's introduction argues that applications such as car-hailing
platforms need to reason about an *individual* trip and the *population*
traffic state at the same time.  This example plays that scenario out: for a
driver part-way through a trip, one BIGCity model

1. predicts where the driver goes next (next-hop prediction),
2. forecasts the traffic speed on the candidate next segments
   (traffic-state prediction), and
3. estimates the remaining travel time of the trip (travel-time estimation),

which together give an ETA-with-congestion answer that would otherwise
require three separately trained models.

Run with:  python examples/navigation_assistant.py
"""

from __future__ import annotations

import numpy as np

from repro.core import BIGCityConfig, TrainingConfig, train_bigcity
from repro.data import load_dataset


def main() -> None:
    dataset = load_dataset("xa_like", seed=0)
    print(f"City: {dataset.num_segments} road segments, {len(dataset.trajectories)} trajectories")

    print("Training BIGCity ...")
    model, _ = train_bigcity(
        dataset,
        BIGCityConfig(hidden_dim=32, d_model=64, num_layers=3, seed=0),
        TrainingConfig(stage1_epochs=2, stage2_epochs=5, batch_size=8, traffic_sequences_per_epoch=32, seed=0),
    )

    # Pick an ongoing trip from the test split: the driver has completed the
    # first 60% of the trajectory.
    trip = max(dataset.test_trajectories, key=len)
    progress = max(3, int(len(trip) * 0.6))
    so_far = trip.slice(0, progress)
    print(f"\nDriver {trip.user_id} is on segment {so_far.segments[-1]} after {so_far.duration / 60:.1f} min of driving.")

    # 1. Where next?
    candidates = model.predict_next_hop([trip.slice(0, progress + 1)], top_k=3)[0]
    print(f"Most likely next segments: {list(candidates)} (actual: {trip.segments[progress]})")

    # 2. How congested are those candidates right now?
    current_slice = dataset.time_axis.slice_of(so_far.end_time)
    history = 6
    start = max(current_slice - history, 0)
    print("Forecast speed on candidate segments for the next half hour:")
    for segment in candidates:
        forecast = model.predict_traffic_state(int(segment), start, history=history, horizon=1)
        limit = dataset.network.segment(int(segment)).speed_limit
        congestion = "congested" if forecast[0, 0] < 0.7 * limit else "free-flowing"
        print(f"  segment {int(segment)}: {forecast[0, 0]:5.1f} km/h (limit {limit:.0f}) -> {congestion}")

    # 3. When does the driver arrive?
    predicted_total = model.estimate_travel_time([trip])[0]
    elapsed = so_far.duration
    remaining = max(predicted_total - elapsed, 0.0)
    actual_remaining = trip.duration - elapsed
    print(
        f"\nETA: {remaining / 60:.1f} min remaining "
        f"(actual {actual_remaining / 60:.1f} min, trip total predicted {predicted_total / 60:.1f} min)"
    )


if __name__ == "__main__":
    main()
