#!/usr/bin/env sh
# Fast test tier: every unit test plus the engine perf gate, none of the
# training-heavy table/figure benchmarks (those carry the `slow` marker).
#
# Usage: scripts/fasttests.sh [extra pytest args...]
#
# Runs in well under a minute; the full tier-1 suite (including the slow
# benchmarks that retrain models for every paper table) is
#   PYTHONPATH=src python -m pytest -x -q
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -m "not slow" -q "$@"
