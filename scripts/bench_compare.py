#!/usr/bin/env python
"""Diff two ``BENCH_engine.json`` reports and flag regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CANDIDATE.json \
        [--threshold 0.10] [--tolerance serving=0.25] [--fail-on-regression]

Every numeric metric of every benchmark section present in *both* reports is
compared; sections that exist in only one report (perfbench grows new
sections over time, so an old baseline is expected to miss some) are listed
as skipped instead of silently ignored or treated as regressions.  Metrics
measured in seconds (``seconds``, ``*_s``) regress when they grow;
rate/ratio metrics (``speedup``, ``*_per_s``) regress when they shrink.

A relative change beyond the threshold (default 10%) is flagged.
``--tolerance`` overrides the threshold for one section
(``--tolerance serving=0.25``) or one metric
(``--tolerance serving.latency_p99_s=0.5``); pass it repeatedly for several
overrides.  Noisy metrics (latency tails on a shared core) get a wider
budget this way without loosening the gate on everything else.

By default the script only *reports* and exits 0 (2 when nothing was
comparable); with ``--fail-on-regression`` a flagged metric makes the exit
code 1, which is the mode CI gates on.  Reports with different
``config_id`` values measure different workloads; they are still diffed,
but a warning is printed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: Metrics that only describe the workload, not its performance.
_INFORMATIONAL = {"iterations", "steps", "sequences", "requests", "ticks", "units",
                  "workers", "trajectories", "poisson_rate_hz"}
#: Metric-name prefixes that are workload descriptions (histogram buckets).
_INFORMATIONAL_PREFIXES = ("batch_occ_", "queue_depth_")


def _is_informational(name: str) -> bool:
    return name in _INFORMATIONAL or name.startswith(_INFORMATIONAL_PREFIXES)


def _is_time_metric(name: str) -> bool:
    # Rate metrics like ``sequences_per_s`` also end in ``_s`` — exclude them.
    if name.endswith("_per_s") or name == "speedup":
        return False
    return name == "seconds" or name.endswith("_s")


def _iter_metrics(results: Dict) -> Iterator[Tuple[str, str, float]]:
    for bench_name, metrics in sorted(results.items()):
        for metric_name, value in sorted(metrics.items()):
            if _is_informational(metric_name) or not isinstance(value, (int, float)):
                continue
            yield bench_name, metric_name, float(value)


def parse_tolerances(specs) -> Dict[str, float]:
    """Parse repeated ``--tolerance`` values into ``{key: threshold}``.

    Keys are ``"section"`` or ``"section.metric"``; a bare float (no ``=``)
    becomes the global override under key ``"*"``.
    """
    tolerances: Dict[str, float] = {}
    for spec in specs or ():
        if "=" in spec:
            key, _, raw = spec.partition("=")
            key = key.strip()
        else:
            key, raw = "*", spec
        try:
            value = float(raw)
        except ValueError:
            raise SystemExit(f"invalid --tolerance {spec!r}: expected FLOAT or NAME=FLOAT")
        if value < 0:
            raise SystemExit(f"invalid --tolerance {spec!r}: must be >= 0")
        tolerances[key] = value
    return tolerances


def _threshold_for(bench: str, metric: str, default: float, tolerances: Dict[str, float]) -> float:
    for key in (f"{bench}.{metric}", bench, "*"):
        if key in tolerances:
            return tolerances[key]
    return default


def compare(
    baseline: Dict,
    candidate: Dict,
    threshold: float,
    tolerances: Dict[str, float] = None,
) -> Tuple[list, list, Dict[str, list]]:
    """Return ``(rows, regressions, skipped)`` comparing the two report dicts.

    ``skipped`` maps ``"baseline_only"`` / ``"candidate_only"`` to the sorted
    benchmark sections that appear in just one report and are therefore not
    compared.
    """
    tolerances = tolerances or {}
    baseline_results = baseline.get("results", {})
    candidate_results = candidate.get("results", {})
    shared = {name: metrics for name, metrics in baseline_results.items() if name in candidate_results}
    skipped = {
        "baseline_only": sorted(set(baseline_results) - set(candidate_results)),
        "candidate_only": sorted(set(candidate_results) - set(baseline_results)),
    }
    rows, regressions = [], []
    for bench, metric, base_value in _iter_metrics(shared):
        cand_value = candidate_results.get(bench, {}).get(metric)
        if not isinstance(cand_value, (int, float)):
            continue
        if base_value == 0:
            change = 0.0
        elif _is_time_metric(metric):
            change = (cand_value - base_value) / base_value
        else:
            change = (base_value - cand_value) / base_value
        flagged = change > _threshold_for(bench, metric, threshold, tolerances)
        rows.append((bench, metric, base_value, float(cand_value), change, flagged))
        if flagged:
            regressions.append((bench, metric, change))
    return rows, regressions, skipped


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path, help="older BENCH_engine.json")
    parser.add_argument("candidate", type=Path, help="newer BENCH_engine.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression beyond which a metric is flagged (default 0.10)",
    )
    parser.add_argument(
        "--tolerance",
        action="append",
        default=None,
        metavar="[SECTION[.METRIC]=]FLOAT",
        help="override the threshold globally (FLOAT), for one section "
        "(serving=0.25) or one metric (serving.latency_p99_s=0.5); repeatable",
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when any metric regresses beyond its threshold (CI gate)",
    )
    args = parser.parse_args(argv)
    tolerances = parse_tolerances(args.tolerance)

    baseline = json.loads(args.baseline.read_text())
    candidate = json.loads(args.candidate.read_text())
    if baseline.get("config_id") != candidate.get("config_id"):
        print(
            f"WARNING: config_id mismatch ({baseline.get('config_id')} vs "
            f"{candidate.get('config_id')}); the reports measure different workloads",
            file=sys.stderr,
        )

    rows, regressions, skipped = compare(baseline, candidate, args.threshold, tolerances)
    for origin, sections in sorted(skipped.items()):
        if sections:
            print(
                f"skipped sections ({origin.replace('_', ' ')}, not compared): "
                + ", ".join(sections)
            )
    if not rows:
        print("no comparable metrics found", file=sys.stderr)
        return 2

    width = max(len(f"{bench}.{metric}") for bench, metric, *_ in rows)
    print(f"{'metric'.ljust(width)}  {'baseline':>12}  {'candidate':>12}  {'change':>8}")
    for bench, metric, base_value, cand_value, change, flagged in rows:
        marker = "  << REGRESSION" if flagged else ""
        direction = "+" if change >= 0 else "-"
        print(
            f"{f'{bench}.{metric}'.ljust(width)}  {base_value:>12.5g}  {cand_value:>12.5g}  "
            f"{direction}{abs(change) * 100:>6.1f}%{marker}"
        )

    if regressions:
        print(
            f"\n{len(regressions)} metric(s) regressed beyond tolerance",
            file=sys.stderr,
        )
        return 1 if args.fail_on_regression else 0
    print("\nno regressions beyond tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
