"""Tests for the OSM XML import/export bridge (`repro.roadnet.osm`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.roadnet.generators import grid_city
from repro.roadnet.osm import load_osm, osm_highway_to_road_type, save_osm

MINIMAL_OSM = """<?xml version="1.0" encoding="UTF-8"?>
<osm version="0.6" generator="test">
  <node id="1" lat="39.9000" lon="116.4000"/>
  <node id="2" lat="39.9000" lon="116.4060"/>
  <node id="3" lat="39.9045" lon="116.4060"/>
  <node id="4" lat="39.9045" lon="116.4000"/>
  <way id="10">
    <nd ref="1"/>
    <nd ref="2"/>
    <nd ref="3"/>
    <tag k="highway" v="primary"/>
    <tag k="lanes" v="2"/>
    <tag k="maxspeed" v="60"/>
  </way>
  <way id="11">
    <nd ref="3"/>
    <nd ref="4"/>
    <tag k="highway" v="residential"/>
    <tag k="oneway" v="yes"/>
  </way>
  <way id="12">
    <nd ref="4"/>
    <nd ref="1"/>
    <tag k="highway" v="footway"/>
  </way>
</osm>
"""


@pytest.fixture()
def osm_file(tmp_path):
    path = tmp_path / "city.osm"
    path.write_text(MINIMAL_OSM, encoding="utf-8")
    return path


class TestHighwayMapping:
    def test_known_values(self):
        assert osm_highway_to_road_type("motorway") == "motorway"
        assert osm_highway_to_road_type("tertiary") == "secondary"
        assert osm_highway_to_road_type("living_street") == "residential"

    def test_non_drivable_values_are_none(self):
        assert osm_highway_to_road_type("footway") is None
        assert osm_highway_to_road_type("cycleway") is None
        assert osm_highway_to_road_type("") is None


class TestLoadOsm:
    def test_segment_count(self, osm_file):
        network = load_osm(osm_file)
        # way 10: two node pairs, bidirectional -> 4 segments
        # way 11: one node pair, oneway -> 1 segment
        # way 12: footway -> ignored
        assert network.num_segments == 5

    def test_tags_become_static_attributes(self, osm_file):
        network = load_osm(osm_file)
        primary = [network.segment(i) for i in range(network.num_segments) if network.segment(i).road_type == "primary"]
        assert len(primary) == 4
        assert all(segment.lanes == 2 for segment in primary)
        assert all(segment.speed_limit == pytest.approx(60.0) for segment in primary)

    def test_lengths_match_geographic_distance(self, osm_file):
        network = load_osm(osm_file)
        # nodes 1-2 are 0.006 degrees of longitude apart at latitude ~39.9,
        # which is roughly 0.51 km
        lengths = [network.segment(i).length for i in range(network.num_segments)]
        assert min(lengths) > 0.3
        assert max(lengths) < 0.8

    def test_mph_speed_parsing(self, tmp_path):
        text = MINIMAL_OSM.replace('v="60"', 'v="30 mph"')
        path = tmp_path / "mph.osm"
        path.write_text(text, encoding="utf-8")
        network = load_osm(path)
        primary = next(network.segment(i) for i in range(network.num_segments) if network.segment(i).road_type == "primary")
        assert primary.speed_limit == pytest.approx(30 * 1.609344)

    def test_missing_node_reference_raises(self, tmp_path):
        text = MINIMAL_OSM.replace('<nd ref="2"/>', '<nd ref="99"/>')
        path = tmp_path / "broken.osm"
        path.write_text(text, encoding="utf-8")
        with pytest.raises(ValueError):
            load_osm(path)

    def test_document_without_roads_raises(self, tmp_path):
        text = """<?xml version="1.0"?><osm><node id="1" lat="0" lon="0"/><node id="2" lat="0" lon="1"/></osm>"""
        path = tmp_path / "empty.osm"
        path.write_text(text, encoding="utf-8")
        with pytest.raises(ValueError):
            load_osm(path)

    def test_document_without_nodes_raises(self, tmp_path):
        path = tmp_path / "nodes.osm"
        path.write_text("""<?xml version="1.0"?><osm></osm>""", encoding="utf-8")
        with pytest.raises(ValueError):
            load_osm(path)


class TestRoundTrip:
    def test_synthetic_city_survives_export_import(self, tmp_path):
        original = grid_city(rows=3, cols=3, block_km=0.5, seed=2)
        path = save_osm(original, tmp_path / "grid.osm")
        restored = load_osm(path)
        assert restored.num_segments == original.num_segments
        # road-type distribution is preserved
        def type_counts(network):
            counts = {}
            for i in range(network.num_segments):
                counts[network.segment(i).road_type] = counts.get(network.segment(i).road_type, 0) + 1
            return counts

        assert type_counts(restored) == type_counts(original)

    def test_round_trip_preserves_lengths(self, tmp_path):
        original = grid_city(rows=3, cols=4, block_km=0.7, seed=0)
        restored = load_osm(save_osm(original, tmp_path / "grid.osm"))
        original_lengths = sorted(original.segment(i).length for i in range(original.num_segments))
        restored_lengths = sorted(restored.segment(i).length for i in range(restored.num_segments))
        np.testing.assert_allclose(original_lengths, restored_lengths, rtol=1e-3)

    def test_round_trip_preserves_connectivity(self, tmp_path):
        original = grid_city(rows=3, cols=3, seed=1)
        restored = load_osm(save_osm(original, tmp_path / "grid.osm"))
        assert restored.is_strongly_connected() == original.is_strongly_connected()

    def test_exported_file_is_valid_xml_with_nodes_and_ways(self, tmp_path):
        import xml.etree.ElementTree as ET

        network = grid_city(rows=2, cols=2, seed=0)
        path = save_osm(network, tmp_path / "tiny.osm")
        root = ET.parse(path).getroot()
        assert root.tag == "osm"
        assert len(root.findall("way")) == network.num_segments
        assert len(root.findall("node")) >= 4
