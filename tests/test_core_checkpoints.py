"""Tests for whole-model checkpoints (`repro.core.checkpoints`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.checkpoints import load_bigcity, read_checkpoint_metadata, save_bigcity
from repro.nn.serialization import save_state_dict


class TestSaveAndLoad:
    def test_round_trip_preserves_predictions(self, trained_model, tiny_dataset, tmp_path):
        path = save_bigcity(trained_model, tmp_path / "model.npz", dataset_name=tiny_dataset.name)
        restored, metadata = load_bigcity(path, tiny_dataset)
        assert metadata["dataset_name"] == tiny_dataset.name

        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:3]
        original = trained_model.estimate_travel_time(trajectories)
        reloaded = restored.estimate_travel_time(trajectories)
        np.testing.assert_allclose(original, reloaded, rtol=1e-6)

    def test_round_trip_preserves_config(self, trained_model, tiny_dataset, tmp_path):
        path = save_bigcity(trained_model, tmp_path / "model.npz")
        restored, _ = load_bigcity(path, tiny_dataset)
        assert restored.config == trained_model.config

    def test_metadata_readable_without_model(self, trained_model, tiny_dataset, tmp_path):
        path = save_bigcity(
            trained_model, tmp_path / "model.npz", dataset_name=tiny_dataset.name, extra_metadata={"note": "unit-test"}
        )
        metadata = read_checkpoint_metadata(path)
        assert metadata["note"] == "unit-test"
        assert metadata["checkpoint_format"] == "1"
        assert "bigcity_config" in metadata

    def test_dataset_mismatch_detected(self, trained_model, tiny_dataset, tiny_dataset_no_traffic, tmp_path):
        path = save_bigcity(trained_model, tmp_path / "model.npz", dataset_name=tiny_dataset.name)
        with pytest.raises(ValueError):
            load_bigcity(path, tiny_dataset_no_traffic)

    def test_bare_state_dict_is_rejected(self, trained_model, tiny_dataset, tmp_path):
        bare = save_state_dict(trained_model, tmp_path / "bare.npz")
        with pytest.raises(ValueError):
            load_bigcity(bare, tiny_dataset)

    def test_missing_file_raises(self, tiny_dataset, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_checkpoint_metadata(tmp_path / "nothing.npz")
