"""Tests for dataset persistence (`repro.data.io`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data.io import load_dataset_directory, load_trajectories, save_dataset, save_trajectories


class TestTrajectoriesRoundTrip:
    def test_round_trip_preserves_content(self, tiny_dataset, tmp_path):
        path = save_trajectories(tiny_dataset.trajectories, tmp_path / "trajectories.jsonl")
        restored = load_trajectories(path)
        assert len(restored) == len(tiny_dataset.trajectories)
        for original, loaded in zip(tiny_dataset.trajectories, restored):
            assert loaded.trajectory_id == original.trajectory_id
            assert loaded.user_id == original.user_id
            assert loaded.segments == original.segments
            np.testing.assert_allclose(loaded.timestamps, original.timestamps)

    def test_blank_lines_are_skipped(self, tiny_dataset, tmp_path):
        path = save_trajectories(tiny_dataset.trajectories[:3], tmp_path / "t.jsonl")
        content = path.read_text() + "\n\n"
        path.write_text(content)
        assert len(load_trajectories(path)) == 3

    def test_invalid_json_reports_line_number(self, tiny_dataset, tmp_path):
        valid_line = json.dumps(tiny_dataset.trajectories[0].to_dict())
        path = tmp_path / "broken.jsonl"
        path.write_text(valid_line + "\nnot json\n")
        with pytest.raises(ValueError, match=":2:"):
            load_trajectories(path)


class TestDatasetRoundTrip:
    def test_round_trip_preserves_structure(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "tiny")
        restored = load_dataset_directory(directory)
        assert restored.name == tiny_dataset.name
        assert restored.num_segments == tiny_dataset.num_segments
        assert len(restored.trajectories) == len(tiny_dataset.trajectories)
        assert restored.splits.train == tiny_dataset.splits.train
        assert restored.time_axis.num_slices == tiny_dataset.time_axis.num_slices
        np.testing.assert_allclose(restored.traffic_states.values, tiny_dataset.traffic_states.values)
        assert restored.traffic_states.channels == tiny_dataset.traffic_states.channels

    def test_round_trip_without_traffic_states(self, tiny_dataset_no_traffic, tmp_path):
        directory = save_dataset(tiny_dataset_no_traffic, tmp_path / "no_traffic")
        restored = load_dataset_directory(directory)
        assert restored.traffic_states is None
        assert restored.has_dynamic_features is False

    def test_expected_files_exist(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "tiny")
        for name in ("network.json", "trajectories.jsonl", "traffic.npz", "metadata.json"):
            assert (directory / name).exists()
        metadata = json.loads((directory / "metadata.json").read_text())
        assert metadata["name"] == tiny_dataset.name

    def test_missing_metadata_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset_directory(tmp_path)

    def test_missing_traffic_file_raises(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "tiny")
        (directory / "traffic.npz").unlink()
        with pytest.raises(FileNotFoundError):
            load_dataset_directory(directory)

    def test_restored_dataset_summary_matches(self, tiny_dataset, tmp_path):
        directory = save_dataset(tiny_dataset, tmp_path / "tiny")
        restored = load_dataset_directory(directory)
        assert restored.summary() == tiny_dataset.summary()
