"""Tests for the evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tasks import metrics


class TestRegressionMetrics:
    def test_mae_rmse_mape_known_values(self):
        prediction = np.array([2.0, 4.0])
        target = np.array([1.0, 2.0])
        assert metrics.mae(prediction, target) == pytest.approx(1.5)
        assert metrics.rmse(prediction, target) == pytest.approx(np.sqrt(2.5))
        assert metrics.mape(prediction, target) == pytest.approx(100.0)

    def test_perfect_prediction_is_zero(self):
        target = np.array([1.0, 2.0, 3.0])
        assert metrics.mae(target, target) == 0.0
        assert metrics.rmse(target, target) == 0.0
        assert metrics.mape(target, target) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            metrics.mae(np.zeros(3), np.zeros(4))

    def test_regression_report_keys(self):
        report = metrics.regression_report(np.ones(4), np.zeros(4))
        assert set(report) == {"mae", "rmse", "mape"}

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_rmse_at_least_mae(self, values):
        prediction = np.array(values)
        target = np.zeros_like(prediction)
        assert metrics.rmse(prediction, target) >= metrics.mae(prediction, target) - 1e-12


class TestRankingMetrics:
    def test_accuracy(self):
        assert metrics.accuracy(np.array([1, 2, 3]), np.array([1, 0, 3])) == pytest.approx(2 / 3)

    def test_accuracy_empty(self):
        assert metrics.accuracy(np.array([]), np.array([])) == 0.0

    def test_mrr_at_k(self):
        rankings = [[3, 1, 2], [9, 8, 7]]
        targets = [1, 7]
        assert metrics.mrr_at_k(rankings, targets, k=3) == pytest.approx((1 / 2 + 1 / 3) / 2)

    def test_mrr_misses_outside_k(self):
        assert metrics.mrr_at_k([[1, 2, 3, 4]], [4], k=3) == 0.0

    def test_ndcg_at_k_perfect_first(self):
        assert metrics.ndcg_at_k([[5, 1, 2]], [5], k=3) == pytest.approx(1.0)

    def test_ndcg_positional_discount(self):
        second = metrics.ndcg_at_k([[1, 5]], [5], k=5)
        assert second == pytest.approx(1.0 / np.log2(3))

    def test_hit_rate(self):
        rankings = [[1, 2, 3], [4, 5, 6]]
        assert metrics.hit_rate_at_k(rankings, [3, 9], k=3) == pytest.approx(0.5)

    def test_mean_rank_with_missing(self):
        rankings = [[1, 2, 3], [4, 5, 6]]
        assert metrics.mean_rank(rankings, [2, 9]) == pytest.approx((2 + 4) / 2)

    @given(st.integers(min_value=1, max_value=5))
    @settings(max_examples=20, deadline=None)
    def test_hit_rate_monotone_in_k(self, k):
        rankings = [list(range(10)) for _ in range(5)]
        targets = [7, 0, 3, 9, 2]
        assert metrics.hit_rate_at_k(rankings, targets, k) <= metrics.hit_rate_at_k(rankings, targets, k + 1)


class TestClassificationMetrics:
    def test_binary_f1_perfect_and_zero(self):
        assert metrics.binary_f1([1, 0, 1], [1, 0, 1]) == 1.0
        assert metrics.binary_f1([0, 0, 0], [1, 1, 1]) == 0.0

    def test_binary_f1_known_value(self):
        # TP=1, FP=1, FN=1 -> precision=recall=0.5 -> F1=0.5
        assert metrics.binary_f1([1, 1, 0], [1, 0, 1]) == pytest.approx(0.5)

    def test_roc_auc_perfect_and_random(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert metrics.roc_auc(scores, labels) == pytest.approx(1.0)
        assert metrics.roc_auc(1 - scores, labels) == pytest.approx(0.0)

    def test_roc_auc_degenerate_classes(self):
        assert metrics.roc_auc(np.array([0.5, 0.6]), np.array([1, 1])) == 0.5

    def test_micro_f1_equals_accuracy_single_label(self):
        prediction = np.array([0, 1, 2, 2])
        target = np.array([0, 1, 1, 2])
        assert metrics.micro_f1(prediction, target, 3) == pytest.approx(metrics.accuracy(prediction, target))

    def test_macro_f1_counts_only_present_classes(self):
        prediction = np.array([0, 0])
        target = np.array([0, 0])
        # Class 1 and 2 never appear in targets and must not dilute the score.
        assert metrics.macro_f1(prediction, target, 3) == pytest.approx(1.0)

    def test_macro_recall(self):
        prediction = np.array([0, 1, 1, 1])
        target = np.array([0, 0, 1, 1])
        assert metrics.macro_recall(prediction, target, 2) == pytest.approx((0.5 + 1.0) / 2)

    @given(
        st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=30),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_f1_scores_bounded(self, targets, seed):
        rng = np.random.default_rng(seed)
        targets = np.array(targets)
        predictions = rng.integers(0, 4, size=len(targets))
        for value in (
            metrics.micro_f1(predictions, targets, 4),
            metrics.macro_f1(predictions, targets, 4),
            metrics.macro_recall(predictions, targets, 4),
        ):
            assert 0.0 <= value <= 1.0
