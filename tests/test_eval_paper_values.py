"""Tests for the transcribed paper reference values (`repro.eval.paper_values`)."""

from __future__ import annotations

import pytest

from repro.baselines.recovery import RECOVERY_BASELINES
from repro.baselines.traffic import TRAFFIC_BASELINES
from repro.baselines.trajectory import TRAJECTORY_BASELINES
from repro.eval.paper_values import PAPER_REFERENCES, get_reference
from repro.eval.report import PaperReference


class TestReferenceCatalogue:
    def test_every_reference_is_well_formed(self):
        for key, reference in PAPER_REFERENCES.items():
            assert isinstance(reference, PaperReference)
            assert reference.artefact
            assert reference.values, f"{key} has no values"
            for model, row in reference.values.items():
                assert row, f"{key}/{model} has no metrics"
                assert all(isinstance(v, (int, float)) for v in row.values())

    def test_bigcity_present_in_every_model_comparison(self):
        for key, reference in PAPER_REFERENCES.items():
            if key == "table6_generalization":
                continue
            assert "bigcity" in reference.values, f"{key} is missing the bigcity row"

    def test_model_keys_match_the_baseline_registries(self):
        known = set(TRAJECTORY_BASELINES) | set(TRAFFIC_BASELINES) | set(RECOVERY_BASELINES) | {"bigcity"}
        for key, reference in PAPER_REFERENCES.items():
            if key == "table6_generalization":
                continue
            unknown = set(reference.values) - known
            assert not unknown, f"{key} references unknown models: {unknown}"

    def test_get_reference_round_trip_and_error(self):
        assert get_reference("table3_next_hop").artefact.startswith("Table III")
        with pytest.raises(KeyError):
            get_reference("table42")


class TestPaperShapes:
    """The transcribed numbers encode the paper's headline claims."""

    def test_bigcity_wins_travel_time(self):
        reference = get_reference("table3_travel_time")
        assert reference.best_by("mae", higher_is_better=False) == "bigcity"

    def test_bigcity_wins_next_hop(self):
        reference = get_reference("table3_next_hop")
        assert reference.best_by("acc", higher_is_better=True) == "bigcity"

    def test_bigcity_wins_recovery_at_every_mask_ratio(self):
        reference = get_reference("table4_recovery")
        for metric in ("acc@85", "acc@90", "acc@95"):
            assert reference.best_by(metric, higher_is_better=True) == "bigcity"

    def test_bigcity_wins_traffic_tasks(self):
        for key in ("table5_one_step", "table5_multi_step", "table5_imputation"):
            assert get_reference(key).best_by("mae", higher_is_better=False) == "bigcity"

    def test_transfer_degradation_is_small(self):
        reference = get_reference("table6_generalization")
        native = reference.values["xa_like/native"]
        transferred = reference.values["xa_like/transferred"]
        assert transferred["tte_mae"] <= native["tte_mae"] * 1.07
        assert transferred["next_acc"] >= native["next_acc"] * 0.93

    def test_recovery_accuracy_degrades_with_mask_ratio(self):
        reference = get_reference("table4_recovery")
        for row in reference.values.values():
            assert row["acc@85"] >= row["acc@90"] >= row["acc@95"]
