"""Numerical equivalence of the fused engine kernels and the KV cache.

Every fused kernel (SDPA, cross-entropy, layer-norm, GELU, linear, row
gather) must match the composed formulation it replaced in both value
(atol 1e-6) and gradient (atol 1e-4), with gradients additionally checked
against central finite differences.  KV-cached decoding must reproduce the
full re-encoding logits exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn import losses
from repro.nn.attention import KVCache, MultiHeadAttention
from repro.nn.layers import LayerNorm, Linear
from repro.nn.tensor import Tensor, fused_kernels, no_grad
from repro.nn.transformer import GPT2Config, GPT2Model

VALUE_ATOL = 1e-6
GRAD_ATOL = 1e-4


def finite_difference(f, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    flat, grad_flat = array.reshape(-1), grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        upper = f()
        flat[index] = original - eps
        lower = f()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2 * eps)
    return grad


def scalarise(out: Tensor, weights: np.ndarray) -> Tensor:
    """Reduce a tensor to a scalar through fixed random weights."""
    return (out * Tensor(weights)).sum()


class TestFusedGelu:
    def test_value_and_grad_match_composed(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((3, 7))
        fused_x = Tensor(data.copy(), requires_grad=True)
        fused_out = F.fused_gelu(fused_x)
        fused_out.sum().backward()
        composed_x = Tensor(data.copy(), requires_grad=True)
        composed_out = F.gelu_composed(composed_x)
        composed_out.sum().backward()
        legacy_out = Tensor(data.copy()).gelu()
        assert np.allclose(fused_out.data, composed_out.data, atol=VALUE_ATOL)
        assert np.allclose(fused_out.data, legacy_out.data, atol=VALUE_ATOL)
        assert np.allclose(fused_x.grad, composed_x.grad, atol=GRAD_ATOL)

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(1)
        data = rng.standard_normal((2, 5))
        weights = rng.standard_normal((2, 5))
        x = Tensor(data, requires_grad=True)
        scalarise(F.fused_gelu(x), weights).backward()
        numeric = finite_difference(lambda: float((F.fused_gelu(Tensor(data)).data * weights).sum()), data)
        assert np.allclose(x.grad, numeric, atol=GRAD_ATOL)


class TestFusedLayerNorm:
    def test_value_and_grad_match_composed(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal((4, 3, 6))
        weight = rng.standard_normal(6)
        bias = rng.standard_normal(6)
        grads = {}
        for name, fn in (("fused", F.fused_layer_norm), ("composed", F.layer_norm_composed)):
            x = Tensor(data.copy(), requires_grad=True)
            w = Tensor(weight.copy(), requires_grad=True)
            b = Tensor(bias.copy(), requires_grad=True)
            out = fn(x, w, b)
            out.sum().backward()
            grads[name] = (out.data, x.grad, w.grad, b.grad)
        for fused_part, composed_part in zip(grads["fused"], grads["composed"]):
            assert np.allclose(fused_part, composed_part, atol=GRAD_ATOL)
        assert np.allclose(grads["fused"][0], grads["composed"][0], atol=VALUE_ATOL)

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((2, 4))
        weight = rng.standard_normal(4)
        bias = rng.standard_normal(4)
        mix = rng.standard_normal((2, 4))

        def value() -> float:
            out = F.fused_layer_norm(Tensor(data), Tensor(weight), Tensor(bias))
            return float((out.data * mix).sum())

        x = Tensor(data, requires_grad=True)
        w = Tensor(weight, requires_grad=True)
        b = Tensor(bias, requires_grad=True)
        scalarise(F.fused_layer_norm(x, w, b), mix).backward()
        assert np.allclose(x.grad, finite_difference(value, data), atol=GRAD_ATOL)
        assert np.allclose(w.grad, finite_difference(value, weight), atol=GRAD_ATOL)
        assert np.allclose(b.grad, finite_difference(value, bias), atol=GRAD_ATOL)

    def test_layer_norm_module_dispatches(self):
        rng = np.random.default_rng(4)
        data = rng.standard_normal((3, 8))
        layer = LayerNorm(8)
        with fused_kernels(True):
            fused_out = layer(Tensor(data)).data
        with fused_kernels(False):
            composed_out = layer(Tensor(data)).data
        assert np.allclose(fused_out, composed_out, atol=VALUE_ATOL)


class TestFusedCrossEntropy:
    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_value_and_grad_match_composed(self, reduction):
        rng = np.random.default_rng(5)
        logits = rng.standard_normal((6, 9))
        targets = rng.integers(0, 9, size=6)
        results = {}
        for name, enabled in (("fused", True), ("composed", False)):
            with fused_kernels(enabled):
                t = Tensor(logits.copy(), requires_grad=True)
                loss = losses.cross_entropy(t, targets, reduction=reduction)
                loss.backward(np.ones_like(loss.data))
                results[name] = (loss.data, t.grad)
        assert np.allclose(results["fused"][0], results["composed"][0], atol=VALUE_ATOL)
        assert np.allclose(results["fused"][1], results["composed"][1], atol=GRAD_ATOL)

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(6)
        logits = rng.standard_normal((4, 5))
        targets = rng.integers(0, 5, size=4)
        t = Tensor(logits, requires_grad=True)
        F.fused_cross_entropy(t, targets).backward()
        numeric = finite_difference(
            lambda: float(F.fused_cross_entropy(Tensor(logits), targets).data), logits
        )
        assert np.allclose(t.grad, numeric, atol=GRAD_ATOL)

    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_batched_leading_shape(self, reduction):
        rng = np.random.default_rng(7)
        logits = rng.standard_normal((2, 3, 4))
        targets = rng.integers(0, 4, size=(2, 3))
        with fused_kernels(True):
            fused = losses.cross_entropy(Tensor(logits), targets, reduction=reduction).data
        with fused_kernels(False):
            composed = losses.cross_entropy(Tensor(logits), targets, reduction=reduction).data
        assert fused.shape == composed.shape
        assert np.allclose(fused, composed, atol=VALUE_ATOL)


class TestFusedLinear:
    def test_value_and_grad_match_composed(self):
        rng = np.random.default_rng(8)
        data = rng.standard_normal((3, 4, 5))
        layer = Linear(5, 7, rng=rng)
        results = {}
        for name, enabled in (("fused", True), ("composed", False)):
            with fused_kernels(enabled):
                for parameter in layer.parameters():
                    parameter.zero_grad()
                x = Tensor(data.copy(), requires_grad=True)
                out = layer(x)
                out.sum().backward()
                results[name] = (out.data, x.grad, layer.weight.grad, layer.bias.grad)
        assert np.allclose(results["fused"][0], results["composed"][0], atol=VALUE_ATOL)
        for fused_grad, composed_grad in zip(results["fused"][1:], results["composed"][1:]):
            assert np.allclose(fused_grad, composed_grad, atol=GRAD_ATOL)


class TestScaledDotProductAttention:
    @staticmethod
    def _composed_reference(q, k, v, mask, scale):
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale
        if mask is not None:
            scores = scores.masked_fill(mask, -1e9)
        return scores.softmax(axis=-1).matmul(v)

    @pytest.mark.parametrize("use_mask", [False, True])
    def test_value_and_grad_match_composed(self, use_mask):
        rng = np.random.default_rng(9)
        shape = (2, 2, 5, 3)
        q_data, k_data, v_data = (rng.standard_normal(shape) for _ in range(3))
        mask = np.triu(np.ones((5, 5), dtype=bool), k=1)[None, None] if use_mask else None
        scale = 1.0 / np.sqrt(3)
        grad_out = rng.standard_normal(shape)
        results = {}
        for name in ("fused", "composed"):
            q = Tensor(q_data.copy(), requires_grad=True)
            k = Tensor(k_data.copy(), requires_grad=True)
            v = Tensor(v_data.copy(), requires_grad=True)
            if name == "fused":
                out = F.scaled_dot_product_attention(q, k, v, mask=mask, scale=scale)
            else:
                with fused_kernels(False):
                    out = self._composed_reference(q, k, v, mask, scale)
            out.backward(grad_out)
            results[name] = (out.data, q.grad, k.grad, v.grad)
        assert np.allclose(results["fused"][0], results["composed"][0], atol=VALUE_ATOL)
        for fused_grad, composed_grad in zip(results["fused"][1:], results["composed"][1:]):
            assert np.allclose(fused_grad, composed_grad, atol=GRAD_ATOL)

    def test_grad_matches_finite_difference(self):
        rng = np.random.default_rng(10)
        shape = (1, 1, 4, 2)
        q_data, k_data, v_data = (rng.standard_normal(shape) for _ in range(3))
        mix = rng.standard_normal(shape)
        mask = np.triu(np.ones((4, 4), dtype=bool), k=1)[None, None]

        def value() -> float:
            out = F.scaled_dot_product_attention(Tensor(q_data), Tensor(k_data), Tensor(v_data), mask=mask)
            return float((out.data * mix).sum())

        q = Tensor(q_data, requires_grad=True)
        k = Tensor(k_data, requires_grad=True)
        v = Tensor(v_data, requires_grad=True)
        scalarise(F.scaled_dot_product_attention(q, k, v, mask=mask), mix).backward()
        assert np.allclose(q.grad, finite_difference(value, q_data), atol=GRAD_ATOL)
        assert np.allclose(k.grad, finite_difference(value, k_data), atol=GRAD_ATOL)
        assert np.allclose(v.grad, finite_difference(value, v_data), atol=GRAD_ATOL)

    @pytest.mark.parametrize("length", [130, 192, 256])
    def test_block_causal_matches_masked(self, length):
        """The block-causal kernel must equal the full masked formulation."""
        rng = np.random.default_rng(11)
        shape = (2, 2, length, 4)
        q_data, k_data, v_data = (rng.standard_normal(shape) for _ in range(3))
        grad_out = rng.standard_normal(shape)
        mask = np.triu(np.ones((length, length), dtype=bool), k=1)[None, None]
        results = {}
        for name, kwargs in (("blocked", {"is_causal": True}), ("masked", {"mask": mask})):
            q = Tensor(q_data.copy(), requires_grad=True)
            k = Tensor(k_data.copy(), requires_grad=True)
            v = Tensor(v_data.copy(), requires_grad=True)
            out = F.scaled_dot_product_attention(q, k, v, **kwargs)
            out.backward(grad_out)
            results[name] = (out.data, q.grad, k.grad, v.grad)
        for blocked_part, masked_part in zip(results["blocked"], results["masked"]):
            assert np.allclose(blocked_part, masked_part, atol=1e-9)

    def test_attention_module_paths_agree(self):
        """MultiHeadAttention output is identical on both engine paths."""
        rng = np.random.default_rng(12)
        attention = MultiHeadAttention(16, 4, causal=True, rng=rng)
        attention.eval()
        x = rng.standard_normal((2, 9, 16))
        padding = np.zeros((2, 9), dtype=bool)
        padding[1, 6:] = True
        with fused_kernels(True):
            fused_out = attention(Tensor(x), padding_mask=padding).data
        with fused_kernels(False):
            composed_out = attention(Tensor(x), padding_mask=padding).data
        assert np.allclose(fused_out, composed_out, atol=VALUE_ATOL)


class TestGatherRows:
    def test_value_and_grad(self):
        rng = np.random.default_rng(13)
        data = rng.standard_normal((3, 5, 4))
        batch_idx = [0, 1, 1, 2]
        row_idx = [4, 0, 2, 2]
        x = Tensor(data, requires_grad=True)
        out = F.gather_rows(x, batch_idx, row_idx)
        assert np.allclose(out.data, data[batch_idx, row_idx], atol=VALUE_ATOL)
        grad_out = rng.standard_normal(out.shape)
        out.backward(grad_out)
        expected = np.zeros_like(data)
        np.add.at(expected, (np.asarray(batch_idx), np.asarray(row_idx)), grad_out)
        assert np.allclose(x.grad, expected, atol=GRAD_ATOL)

    def test_duplicate_rows_accumulate(self):
        data = np.arange(8, dtype=np.float64).reshape(1, 4, 2)
        x = Tensor(data, requires_grad=True)
        out = F.gather_rows(x, [0, 0], [1, 1])
        out.sum().backward()
        assert np.allclose(x.grad[0, 1], [2.0, 2.0])


class TestCachedCausalMask:
    def test_no_mask_when_nothing_hidden(self):
        assert F.cached_causal_mask(1, 7, offset=6) is None

    def test_mask_matches_triu(self):
        mask = F.cached_causal_mask(5, 5)
        assert np.array_equal(mask[0, 0], np.triu(np.ones((5, 5), dtype=bool), k=1))

    def test_offset_semantics(self):
        mask = F.cached_causal_mask(2, 6, offset=4)
        # query 0 sits at absolute position 4: keys 5.. are hidden
        assert list(mask[0, 0, 0]) == [False] * 5 + [True]
        assert list(mask[0, 0, 1]) == [False] * 6

    def test_cache_returns_same_object(self):
        first = F.cached_causal_mask(3, 3)
        second = F.cached_causal_mask(3, 3)
        assert first is second
        assert not first.flags.writeable


class TestKVCache:
    def test_append_and_reset(self):
        cache = KVCache()
        keys = np.ones((1, 2, 3, 4))
        full_k, full_v = cache.append(keys, keys * 2)
        assert cache.length == 3
        assert full_k.shape == (1, 2, 3, 4)
        cache.append(np.full((1, 2, 1, 4), 5.0), np.full((1, 2, 1, 4), 6.0))
        assert cache.length == 4
        cache.reset()
        assert cache.length == 0

    def test_batch_shape_mismatch_raises(self):
        cache = KVCache()
        cache.append(np.ones((2, 2, 3, 4)), np.ones((2, 2, 3, 4)))
        with pytest.raises(ValueError, match="new_caches"):
            cache.append(np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        # After an explicit reset a new batch shape is a fresh session.
        cache.reset()
        cache.append(np.ones((1, 2, 1, 4)), np.ones((1, 2, 1, 4)))
        assert cache.length == 1

    def test_cached_decode_matches_full_recompute(self):
        """Incremental KV-cached decoding equals re-encoding from scratch."""
        config = GPT2Config(d_model=16, num_layers=2, num_heads=2, max_position=64, dropout=0.0, seed=0)
        model = GPT2Model(config)
        model.eval()
        rng = np.random.default_rng(14)
        embeddings = rng.standard_normal((1, 10, 16))
        with no_grad():
            full = model(Tensor(embeddings)).data
            caches = model.new_caches()
            cached_rows = [model(Tensor(embeddings[:, :4]), caches=caches).data]
            for position in range(4, 10):
                step = embeddings[:, position : position + 1]
                cached_rows.append(model(Tensor(step), caches=caches).data)
        incremental = np.concatenate(cached_rows, axis=1)
        assert np.allclose(incremental, full, atol=1e-9)

    def test_cache_requires_no_grad(self):
        config = GPT2Config(d_model=8, num_layers=1, num_heads=2, max_position=16, dropout=0.0, seed=0)
        model = GPT2Model(config)
        model.eval()
        caches = model.new_caches()
        with pytest.raises(RuntimeError, match="no_grad"):
            model(Tensor(np.zeros((1, 2, 8))), caches=caches)

    def test_cache_rejects_cross_attention(self):
        attention = MultiHeadAttention(8, 2)
        with no_grad():
            with pytest.raises(ValueError, match="self-attention"):
                attention(
                    Tensor(np.zeros((1, 2, 8))),
                    key_value=Tensor(np.zeros((1, 3, 8))),
                    cache=KVCache(),
                )


class TestRecordAttention:
    def test_off_by_default(self):
        attention = MultiHeadAttention(8, 2)
        attention.eval()
        attention(Tensor(np.random.default_rng(15).standard_normal((1, 4, 8))))
        assert attention.last_attention is None

    def test_enabled_on_both_paths(self):
        rng = np.random.default_rng(16)
        attention = MultiHeadAttention(8, 2, record_attention=True)
        attention.eval()
        x = rng.standard_normal((1, 4, 8))
        with fused_kernels(True):
            attention(Tensor(x))
            fused_weights = attention.last_attention.copy()
        with fused_kernels(False):
            attention(Tensor(x))
            composed_weights = attention.last_attention.copy()
        assert np.allclose(fused_weights.sum(axis=-1), 1.0)
        assert np.allclose(fused_weights, composed_weights, atol=VALUE_ATOL)


class TestRolloutEquivalence:
    def test_rollout_cached_equals_recompute(self, untrained_model, tiny_dataset):
        trajectory = tiny_dataset.train_trajectories[0]
        untrained_model.eval()
        cached = untrained_model.rollout_next_hops(trajectory, steps=4, use_cache=True)
        recomputed = untrained_model.rollout_next_hops(trajectory, steps=4, use_cache=False)
        assert np.array_equal(cached, recomputed)
        assert cached.shape == (4,)
