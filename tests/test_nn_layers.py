"""Tests for standard layers, attention, transformer, GAT, GRU."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    GAT,
    GELU,
    GPT2Config,
    GPT2Model,
    GRU,
    LayerNorm,
    Linear,
    MLP,
    MultiHeadAttention,
    CrossAttentionPool,
    TransformerEncoder,
    cross_entropy,
    Adam,
)
from repro.nn.gat import GraphAttentionLayer, normalized_adjacency, random_walk_matrix
from repro.nn.tensor import Tensor


class TestLinearAndMLP:
    def test_linear_shapes_and_grad(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((5, 4))))
        assert out.shape == (5, 3)
        out.sum().backward()
        assert layer.weight.grad.shape == (3, 4)
        assert layer.bias.grad.shape == (3,)

    def test_linear_without_bias(self):
        layer = Linear(4, 3, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((2, 4)))).shape == (2, 3)

    def test_linear_batched_3d_input(self):
        layer = Linear(4, 3)
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 3)

    def test_mlp_hidden_layers_and_activation(self):
        mlp = MLP(4, [8, 8], 2, activation="relu")
        assert mlp(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_mlp_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP(4, [8], 2, activation="swish")


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 6)
        assert emb(np.array([[1, 2], [3, 4]])).shape == (2, 2, 6)

    def test_out_of_range_raises(self):
        emb = Embedding(10, 6)
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_gradient_accumulates_per_row(self):
        emb = Embedding(5, 3)
        out = emb(np.array([1, 1, 2]))
        out.sum().backward()
        assert np.allclose(emb.weight.grad[1], 2.0)
        assert np.allclose(emb.weight.grad[2], 1.0)
        assert np.allclose(emb.weight.grad[0], 0.0)


class TestNormalisationAndDropout:
    def test_layernorm_normalises_last_axis(self):
        layer = LayerNorm(8)
        out = layer(Tensor(np.random.default_rng(0).standard_normal((4, 8)) * 10 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layernorm_scale_shift_parameters(self):
        layer = LayerNorm(4)
        layer.weight.data = np.full(4, 2.0)
        layer.bias.data = np.full(4, 1.0)
        out = layer(Tensor(np.random.default_rng(1).standard_normal((3, 4)))).data
        assert np.allclose(out.mean(axis=-1), 1.0, atol=1e-6)

    def test_dropout_identity_in_eval(self):
        layer = Dropout(0.9)
        layer.eval()
        x = Tensor(np.ones((3, 3)))
        assert np.allclose(layer(x).data, 1.0)

    def test_dropout_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestAttention:
    def test_self_attention_shape(self):
        attn = MultiHeadAttention(16, 4)
        out = attn(Tensor(np.random.default_rng(0).standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_causal_masking_blocks_future(self):
        """Changing a future position must not change earlier outputs."""
        attn = MultiHeadAttention(8, 2, causal=True, rng=np.random.default_rng(0))
        attn.eval()
        x = np.random.default_rng(1).standard_normal((1, 4, 8))
        out_a = attn(Tensor(x)).data.copy()
        x_mod = x.copy()
        x_mod[0, 3] += 10.0
        out_b = attn(Tensor(x_mod)).data
        assert np.allclose(out_a[0, :3], out_b[0, :3], atol=1e-9)
        assert not np.allclose(out_a[0, 3], out_b[0, 3])

    def test_padding_mask_excludes_positions(self):
        attn = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        attn.eval()
        x = np.random.default_rng(2).standard_normal((1, 4, 8))
        mask = np.array([[False, False, True, True]])
        out_a = attn(Tensor(x), padding_mask=mask).data.copy()
        x_mod = x.copy()
        x_mod[0, 3] += 5.0  # padded position: should not matter
        out_b = attn(Tensor(x_mod), padding_mask=mask).data
        assert np.allclose(out_a[0, :2], out_b[0, :2], atol=1e-9)

    def test_attention_weights_normalised(self):
        attn = MultiHeadAttention(8, 2, record_attention=True)
        attn.eval()
        attn(Tensor(np.random.default_rng(3).standard_normal((2, 5, 8))))
        assert np.allclose(attn.last_attention.sum(axis=-1), 1.0)

    def test_cross_attention_different_lengths(self):
        attn = MultiHeadAttention(8, 2)
        query = Tensor(np.random.default_rng(4).standard_normal((1, 3, 8)))
        memory = Tensor(np.random.default_rng(5).standard_normal((1, 6, 8)))
        assert attn(query, key_value=memory).shape == (1, 3, 8)

    def test_causal_cross_attention_rejected(self):
        attn = MultiHeadAttention(8, 2, causal=True)
        query = Tensor(np.zeros((1, 3, 8)))
        memory = Tensor(np.zeros((1, 5, 8)))
        with pytest.raises(ValueError):
            attn(query, key_value=memory)

    def test_fusion_pool_keeps_identity_via_residual(self):
        pool = CrossAttentionPool(6, rng=np.random.default_rng(0))
        h = np.random.default_rng(1).standard_normal((5, 6))
        out = pool(Tensor(h)).data
        assert out.shape == (5, 6)
        # Residual means distinct inputs stay distinct even with uniform attention.
        assert np.std(out - out.mean(axis=0)) > 0.1


class TestTransformer:
    def test_gpt2_forward_shape(self):
        model = GPT2Model(GPT2Config(d_model=32, num_layers=2, num_heads=4, max_position=16, seed=0))
        out = model(Tensor(np.random.default_rng(0).standard_normal((2, 7, 32))))
        assert out.shape == (2, 7, 32)

    def test_gpt2_causality_end_to_end(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=2, num_heads=2, max_position=8, seed=0))
        model.eval()
        x = np.random.default_rng(1).standard_normal((1, 5, 16))
        base = model(Tensor(x)).data.copy()
        x_mod = x.copy()
        x_mod[0, 4] += 3.0
        changed = model(Tensor(x_mod)).data
        assert np.allclose(base[0, :4], changed[0, :4], atol=1e-8)

    def test_gpt2_token_embedding_requires_vocab(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=1, num_heads=2, vocab_size=0))
        with pytest.raises(RuntimeError):
            model.embed_tokens(np.array([1, 2]))

    def test_gpt2_rejects_too_long_sequences(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=1, num_heads=2, max_position=4))
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 5, 16))))

    def test_gpt2_rejects_wrong_width(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=1, num_heads=2))
        with pytest.raises(ValueError):
            model(Tensor(np.zeros((1, 3, 8))))

    def test_config_validates_head_divisibility(self):
        with pytest.raises(ValueError):
            GPT2Config(d_model=30, num_heads=4)

    def test_tiny_language_model_overfits(self):
        """A tiny GPT-2 + LM head should overfit a repeating token pattern."""
        config = GPT2Config(d_model=32, num_layers=2, num_heads=2, max_position=16, vocab_size=6, seed=0)
        model = GPT2Model(config)
        head = Linear(32, 6, rng=np.random.default_rng(0))
        sequence = np.array([[0, 1, 2, 3, 4, 5, 0, 1, 2, 3, 4, 5]])
        optimizer = Adam(model.parameters() + head.parameters(), lr=5e-3)
        for _ in range(60):
            optimizer.zero_grad()
            hidden = model(model.embed_tokens(sequence[:, :-1]))
            loss = cross_entropy(head(hidden), sequence[:, 1:])
            loss.backward()
            optimizer.step()
        assert float(loss.item()) < 0.5

    def test_bidirectional_encoder_sees_future(self):
        encoder = TransformerEncoder(d_model=16, num_layers=1, num_heads=2, seed=0)
        encoder.eval()
        x = np.random.default_rng(2).standard_normal((1, 4, 16))
        base = encoder(Tensor(x)).data.copy()
        x_mod = x.copy()
        # Perturb a single feature (a uniform shift would be removed by LayerNorm).
        x_mod[0, 3, 0] += 2.0
        changed = encoder(Tensor(x_mod)).data
        assert not np.allclose(base[0, 0], changed[0, 0])


class TestGraphLayers:
    def test_gat_output_shape(self):
        gat = GAT(6, 8, 5, num_layers=2, num_heads=2, rng=np.random.default_rng(0))
        adjacency = np.random.default_rng(1).random((7, 7)) < 0.4
        out = gat(Tensor(np.random.default_rng(2).standard_normal((7, 6))), adjacency)
        assert out.shape == (7, 5)

    def test_single_head_layer_handles_isolated_nodes(self):
        layer = GraphAttentionLayer(4, 4, rng=np.random.default_rng(0))
        adjacency = np.zeros((3, 3), dtype=bool)  # no edges: only self-loops
        out = layer(Tensor(np.random.default_rng(1).standard_normal((3, 4))), adjacency)
        assert np.all(np.isfinite(out.data))

    def test_adjacency_must_be_square(self):
        layer = GraphAttentionLayer(4, 4)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((3, 4))), np.zeros((3, 2), dtype=bool))

    def test_feature_count_must_match_adjacency(self):
        layer = GraphAttentionLayer(4, 4)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((2, 4))), np.zeros((3, 3), dtype=bool))

    def test_gat_gradient_flows_to_inputs(self):
        gat = GAT(3, 4, 4, num_layers=1, num_heads=1, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((5, 3)), requires_grad=True)
        gat(x, np.eye(5, dtype=bool)).sum().backward()
        assert x.grad is not None

    def test_normalized_adjacency_symmetric_and_bounded(self):
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        norm = normalized_adjacency(adjacency)
        assert norm.shape == (3, 3)
        assert np.all(norm >= 0) and np.all(norm <= 1.0 + 1e-9)

    def test_random_walk_matrix_rows_sum_to_one(self):
        adjacency = np.array([[0, 1, 1], [1, 0, 0], [1, 1, 0]], dtype=float)
        walk = random_walk_matrix(adjacency)
        assert np.allclose(walk.sum(axis=1), 1.0)


class TestGRU:
    def test_output_shapes(self):
        gru = GRU(4, 6, rng=np.random.default_rng(0))
        outputs, final = gru(Tensor(np.random.default_rng(1).standard_normal((3, 7, 4))))
        assert outputs.shape == (3, 7, 6)
        assert final.shape == (3, 6)

    def test_padding_keeps_last_real_state(self):
        gru = GRU(2, 4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).standard_normal((1, 5, 2))
        mask = np.array([[False, False, True, True, True]])
        outputs, final = gru(Tensor(x), padding_mask=mask)
        assert np.allclose(final.data, outputs.data[:, 1, :])

    def test_gradient_through_time(self):
        gru = GRU(3, 3, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((2, 4, 3)), requires_grad=True)
        _, final = gru(x)
        final.sum().backward()
        assert np.any(x.grad[:, 0, :] != 0)
