"""Tests for POIs and grid partitions (`repro.roadnet.poi`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.generators import grid_city
from repro.roadnet.poi import POI, POI_CATEGORIES, GridPartition, POIRegistry


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, block_km=0.5, seed=3)


@pytest.fixture(scope="module")
def registry(network):
    return POIRegistry.generate(network, pois_per_segment=0.8, seed=1)


class TestPOI:
    def test_unknown_category_raises(self):
        with pytest.raises(ValueError):
            POI(poi_id=0, name="x", category="volcano", location=(0.0, 0.0), segment_id=0)

    def test_round_trip(self):
        poi = POI(poi_id=3, name="cafe_3", category="restaurant", location=(1.0, 2.0), segment_id=5)
        assert POI.from_dict(poi.to_dict()) == poi


class TestPOIRegistry:
    def test_generate_is_deterministic(self, network):
        first = POIRegistry.generate(network, pois_per_segment=0.5, seed=7)
        second = POIRegistry.generate(network, pois_per_segment=0.5, seed=7)
        assert len(first) == len(second)
        assert [p.to_dict() for p in first] == [p.to_dict() for p in second]

    def test_every_poi_lies_on_its_segment(self, registry, network):
        for poi in registry:
            segment = network.segment(poi.segment_id)
            xs = sorted([segment.start[0], segment.end[0]])
            ys = sorted([segment.start[1], segment.end[1]])
            assert xs[0] - 1e-9 <= poi.location[0] <= xs[1] + 1e-9
            assert ys[0] - 1e-9 <= poi.location[1] <= ys[1] + 1e-9

    def test_duplicate_id_rejected(self, network):
        registry = POIRegistry(network)
        poi = POI(poi_id=0, name="a", category="park", location=(0.0, 0.0), segment_id=0)
        registry.add(poi)
        with pytest.raises(ValueError):
            registry.add(POI(poi_id=0, name="b", category="park", location=(0.0, 0.0), segment_id=1))

    def test_unknown_segment_rejected(self, network):
        registry = POIRegistry(network)
        with pytest.raises(ValueError):
            registry.add(POI(poi_id=0, name="a", category="park", location=(0.0, 0.0), segment_id=10_000))

    def test_lookup_by_segment_and_category(self, registry):
        for poi in list(registry)[:10]:
            assert poi in registry.on_segment(poi.segment_id)
            assert poi in registry.by_category(poi.category)

    def test_unknown_category_lookup_raises(self, registry):
        with pytest.raises(ValueError):
            registry.by_category("volcano")

    def test_get_unknown_id_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get(10_000_000)

    def test_nearest_returns_closest(self, registry):
        target = list(registry)[0]
        found = registry.nearest(target.location)
        assert found is not None
        distance_found = np.hypot(found.location[0] - target.location[0], found.location[1] - target.location[1])
        assert distance_found <= 1e-9

    def test_nearest_on_empty_category(self, network):
        registry = POIRegistry(network)
        assert registry.nearest((0.0, 0.0)) is None

    def test_category_counts_sum_to_total(self, registry):
        counts = registry.category_counts()
        assert set(counts) == set(POI_CATEGORIES)
        assert sum(counts.values()) == len(registry)

    def test_segment_category_features_shape_and_total(self, registry, network):
        features = registry.segment_category_features()
        assert features.shape == (network.num_segments, len(POI_CATEGORIES))
        assert features.sum() == len(registry)

    def test_round_trip(self, registry, network):
        payload = registry.to_dict()
        restored = POIRegistry.from_dict(network, payload)
        assert len(restored) == len(registry)
        assert restored.category_counts() == registry.category_counts()

    def test_negative_density_raises(self, network):
        with pytest.raises(ValueError):
            POIRegistry.generate(network, pois_per_segment=-0.1)


class TestGridPartition:
    def test_every_segment_maps_to_a_valid_cell(self, network):
        grid = GridPartition(network, rows=3, cols=4)
        for segment_id in range(network.num_segments):
            cell = grid.cell_of_segment(segment_id)
            assert 0 <= cell < grid.num_cells
            assert segment_id in grid.segments_in_cell(cell)

    def test_occupancy_sums_to_segment_count(self, network):
        grid = GridPartition(network, rows=3, cols=3)
        occupancy = grid.occupancy()
        assert occupancy.shape == (3, 3)
        assert occupancy.sum() == network.num_segments

    def test_single_cell_grid_contains_everything(self, network):
        grid = GridPartition(network, rows=1, cols=1)
        assert grid.segments_in_cell(0) == list(range(network.num_segments))

    def test_invalid_sizes_raise(self, network):
        with pytest.raises(ValueError):
            GridPartition(network, rows=0, cols=3)

    def test_invalid_cell_query_raises(self, network):
        grid = GridPartition(network, rows=2, cols=2)
        with pytest.raises(ValueError):
            grid.segments_in_cell(99)
        with pytest.raises(ValueError):
            grid.cell_of_segment(-1)

    def test_cell_trajectory_collapses_repeats(self, network):
        grid = GridPartition(network, rows=2, cols=2)
        segments = [0, 0, 1, 1, 2]
        cells = grid.cell_trajectory(segments)
        assert len(cells) <= len(segments)
        assert all(a != b for a, b in zip(cells, cells[1:]))

    def test_aggregate_traffic_shape_and_mean(self, network):
        grid = GridPartition(network, rows=2, cols=2)
        num_slices, channels = 6, 2
        values = np.arange(network.num_segments * num_slices * channels, dtype=float).reshape(
            network.num_segments, num_slices, channels
        )
        from repro.data.timeutils import TimeAxis
        from repro.data.traffic_state import TrafficStateSeries

        axis = TimeAxis(num_slices=num_slices, slice_seconds=1800.0)
        traffic = TrafficStateSeries(values=values, time_axis=axis, channels=("speed", "flow"))
        aggregated = grid.aggregate_traffic(traffic)
        assert aggregated.shape == (grid.num_cells, num_slices, channels)
        cell0_segments = grid.segments_in_cell(0)
        np.testing.assert_allclose(aggregated[0], values[cell0_segments].mean(axis=0))

    def test_aggregate_traffic_wrong_network_raises(self, network):
        from repro.data.timeutils import TimeAxis
        from repro.data.traffic_state import TrafficStateSeries

        grid = GridPartition(network, rows=2, cols=2)
        axis = TimeAxis(num_slices=3, slice_seconds=1800.0)
        traffic = TrafficStateSeries(
            values=np.zeros((network.num_segments + 1, 3, 1)),
            time_axis=axis,
            channels=("speed",),
        )
        with pytest.raises(ValueError):
            grid.aggregate_traffic(traffic)

    @given(rows=st.integers(min_value=1, max_value=5), cols=st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_partition_is_exhaustive_and_disjoint(self, network, rows, cols):
        grid = GridPartition(network, rows=rows, cols=cols)
        seen = []
        for cell in range(grid.num_cells):
            seen.extend(grid.segments_in_cell(cell))
        assert sorted(seen) == list(range(network.num_segments))

    def test_round_trip(self, network):
        grid = GridPartition(network, rows=3, cols=2)
        restored = GridPartition.from_dict(network, grid.to_dict())
        assert restored.rows == 3 and restored.cols == 2
        assert restored.occupancy().tolist() == grid.occupancy().tolist()
