"""Tests for the road-network substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet import (
    RoadNetwork,
    RoadSegment,
    StaticFeatureEncoder,
    grid_city,
    load_road_network,
    radial_city,
    random_city,
    save_road_network,
)
from repro.roadnet.segment import DEFAULT_SPEED_LIMITS, ROAD_TYPES


class TestRoadSegment:
    def test_length_is_euclidean(self):
        segment = RoadSegment(0, (0.0, 0.0), (3.0, 4.0))
        assert segment.length == pytest.approx(5.0)

    def test_default_speed_limit_by_type(self):
        segment = RoadSegment(0, (0.0, 0.0), (1.0, 0.0), road_type="motorway")
        assert segment.speed_limit == DEFAULT_SPEED_LIMITS["motorway"]

    def test_free_flow_travel_time(self):
        segment = RoadSegment(0, (0.0, 0.0), (1.0, 0.0), road_type="residential", speed_limit=30.0)
        assert segment.free_flow_travel_time == pytest.approx(1.0 / 30.0 * 3600.0)

    def test_unknown_road_type_rejected(self):
        with pytest.raises(ValueError):
            RoadSegment(0, (0, 0), (1, 0), road_type="footpath")

    def test_zero_lanes_rejected(self):
        with pytest.raises(ValueError):
            RoadSegment(0, (0, 0), (1, 0), lanes=0)

    def test_dict_roundtrip(self):
        segment = RoadSegment(3, (0.5, 1.0), (1.5, 1.0), road_type="primary", lanes=2)
        restored = RoadSegment.from_dict(segment.to_dict())
        assert restored.segment_id == 3
        assert restored.road_type == "primary"
        assert restored.length == pytest.approx(segment.length)

    def test_midpoint(self):
        segment = RoadSegment(0, (0.0, 0.0), (2.0, 2.0))
        assert segment.midpoint == (1.0, 1.0)


class TestStaticFeatureEncoder:
    def test_dimension_and_one_hot(self):
        segments = [RoadSegment(i, (0, i), (1, i), road_type=ROAD_TYPES[i % len(ROAD_TYPES)]) for i in range(5)]
        encoder = StaticFeatureEncoder(segments)
        features = encoder.encode_all(segments)
        assert features.shape == (5, encoder.dimension)
        assert np.allclose(features[:, : len(ROAD_TYPES)].sum(axis=1), 1.0)

    def test_features_are_normalised(self):
        segments = [RoadSegment(i, (0, 0), (i + 1.0, 0)) for i in range(4)]
        encoder = StaticFeatureEncoder(segments)
        features = encoder.encode_all(segments)
        assert features[:, len(ROAD_TYPES)].max() == pytest.approx(1.0)

    def test_empty_segment_list_rejected(self):
        with pytest.raises(ValueError):
            StaticFeatureEncoder([])


class TestRoadNetwork:
    def test_grid_adjacency_follows_geometry(self, tiny_network):
        for i in range(tiny_network.num_segments):
            for j in tiny_network.successors(i):
                assert np.allclose(tiny_network.segment(i).end, tiny_network.segment(j).start)

    def test_degrees_are_consistent_with_adjacency(self, tiny_network):
        adjacency = tiny_network.adjacency
        for i, segment in enumerate(tiny_network.segments):
            assert segment.out_degree == adjacency[i].sum()
            assert segment.in_degree == adjacency[:, i].sum()

    def test_static_feature_matrix_shape(self, tiny_network):
        assert tiny_network.static_features.shape == (tiny_network.num_segments, tiny_network.static_feature_dim)

    def test_grid_city_is_strongly_connected(self, tiny_network):
        assert tiny_network.is_strongly_connected()

    def test_shortest_path_starts_and_ends_correctly(self, tiny_network):
        source, target = 0, tiny_network.num_segments - 1
        path = tiny_network.shortest_path(source, target)
        assert path[0] == source and path[-1] == target
        for a, b in zip(path[:-1], path[1:]):
            assert b in tiny_network.successors(a)

    def test_shortest_path_respects_custom_weights(self, tiny_network):
        source = 0
        successors = tiny_network.successors(source)
        assert len(successors) >= 1
        target = successors[0]
        # Penalising the direct edge should still find a path.
        weights = {(source, target): 1e9}
        path = tiny_network.shortest_path(source, target, weights=weights)
        assert path[0] == source and path[-1] == target

    def test_hop_distance_self_is_zero(self, tiny_network):
        assert tiny_network.hop_distance(3, 3) == 0

    def test_random_walk_follows_edges(self, tiny_network, rng):
        walk = tiny_network.random_walk(0, 6, rng)
        for a, b in zip(walk[:-1], walk[1:]):
            assert b in tiny_network.successors(a)

    def test_non_contiguous_ids_rejected(self):
        segments = [RoadSegment(1, (0, 0), (1, 0)), RoadSegment(2, (1, 0), (2, 0))]
        with pytest.raises(ValueError):
            RoadNetwork(segments)

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork([])

    def test_dict_roundtrip_preserves_adjacency(self, tiny_network):
        restored = RoadNetwork.from_dict(tiny_network.to_dict())
        assert np.array_equal(restored.adjacency, tiny_network.adjacency)

    def test_save_and_load(self, tiny_network, tmp_path):
        path = save_road_network(tiny_network, tmp_path / "net.json")
        restored = load_road_network(path)
        assert restored.num_segments == tiny_network.num_segments
        assert np.array_equal(restored.adjacency, tiny_network.adjacency)


class TestGenerators:
    def test_grid_city_segment_count(self):
        network = grid_city(3, 3, seed=0)
        # 3 rows x 2 horizontal + 3 cols x 2 vertical, each bidirectional.
        assert network.num_segments == (3 * 2 + 3 * 2) * 2

    def test_grid_city_requires_minimum_size(self):
        with pytest.raises(ValueError):
            grid_city(1, 5)

    def test_radial_city_strongly_connected(self):
        network = radial_city(num_rings=2, spokes=6, seed=0)
        assert network.is_strongly_connected()

    def test_radial_city_validates_arguments(self):
        with pytest.raises(ValueError):
            radial_city(num_rings=0, spokes=6)

    def test_random_city_reproducible_with_seed(self):
        a = random_city(num_intersections=15, seed=3)
        b = random_city(num_intersections=15, seed=3)
        assert a.num_segments == b.num_segments
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_random_city_minimum_size(self):
        with pytest.raises(ValueError):
            random_city(num_intersections=2)

    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=2, max_value=5))
    @settings(max_examples=10, deadline=None)
    def test_grid_city_always_has_connected_core(self, rows, cols):
        network = grid_city(rows, cols, seed=0)
        core = network.largest_strongly_connected_component()
        assert len(core) == network.num_segments
