"""Tests for repro.nn.functional helpers and initialisers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor


class TestMasks:
    def test_causal_mask_upper_triangle(self):
        mask = F.causal_mask(4)
        assert mask.shape == (4, 4)
        assert not mask[2, 1] and mask[1, 2]
        assert not mask.diagonal().any()

    def test_padding_mask_from_lengths(self):
        mask = F.padding_mask([2, 4], max_length=4)
        assert mask.tolist() == [[False, False, True, True], [False, False, False, False]]

    def test_padding_mask_defaults_to_max_length(self):
        assert F.padding_mask([1, 3]).shape == (2, 3)

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.allclose(out, [[1, 0, 0], [0, 0, 1]])


class TestPoolingAndSimilarity:
    def test_masked_mean_ignores_padding(self):
        x = Tensor(np.array([[[1.0], [100.0]], [[2.0], [4.0]]]))
        mask = np.array([[False, True], [False, False]])
        pooled = F.masked_mean(x, mask, axis=1).data
        assert np.allclose(pooled, [[1.0], [3.0]])

    def test_cosine_similarity_identical_vectors(self):
        a = Tensor(np.array([[1.0, 2.0, 3.0]]))
        assert F.cosine_similarity(a, a).data[0] == pytest.approx(1.0)

    def test_cosine_similarity_orthogonal(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        assert F.cosine_similarity(a, b).data[0] == pytest.approx(0.0)

    def test_pairwise_cosine_similarity_shape_and_range(self):
        rng = np.random.default_rng(0)
        sims = F.pairwise_cosine_similarity(rng.standard_normal((4, 8)), rng.standard_normal((6, 8)))
        assert sims.shape == (4, 6)
        assert np.all(sims <= 1.0 + 1e-9) and np.all(sims >= -1.0 - 1e-9)

    def test_linear_functional_matches_layer_convention(self):
        x = Tensor(np.ones((2, 3)))
        weight = Tensor(np.ones((4, 3)))
        bias = Tensor(np.ones(4))
        assert np.allclose(F.linear(x, weight, bias).data, 4.0)


class TestInitialisers:
    @pytest.mark.parametrize("fn", [init.xavier_uniform, init.xavier_normal, init.kaiming_uniform])
    def test_shapes(self, fn):
        assert fn((5, 7)).shape == (5, 7)

    def test_xavier_uniform_bounds(self):
        values = init.xavier_uniform((100, 100), rng=np.random.default_rng(0))
        limit = np.sqrt(6.0 / 200)
        assert np.all(np.abs(values) <= limit + 1e-12)

    def test_normal_std(self):
        values = init.normal((200, 200), std=0.02, rng=np.random.default_rng(0))
        assert values.std() == pytest.approx(0.02, rel=0.1)

    def test_zeros_and_ones(self):
        assert np.all(init.zeros((3, 3)) == 0.0)
        assert np.all(init.ones((3,)) == 1.0)

    @given(st.integers(min_value=1, max_value=50), st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_xavier_variance_scales_with_fan(self, fan_in, fan_out):
        values = init.xavier_normal((fan_out, fan_in), rng=np.random.default_rng(fan_in * 100 + fan_out))
        expected_std = np.sqrt(2.0 / (fan_in + fan_out))
        assert values.std() < 4 * expected_std + 1e-6
