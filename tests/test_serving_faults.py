"""Chaos suite: every recovery path of the serving layer, deterministically.

Each test drives one fault-tolerance mechanism through the injectable
:class:`repro.serving.faults.FaultPlan` (`docs/resilience.md`):

* **deadline shedding** — expired requests are failed at dequeue time with
  :class:`DeadlineExceeded` instead of burning model time;
* **poison-batch isolation** — one poisoned request in a folded next-hop
  batch fails alone; the survivors' results are bit-identical to serial;
* **seeded retry/backoff** — transient failures are re-attempted under the
  deterministic :class:`RetryPolicy` schedule;
* **worker respawn** — a worker-loop crash outside ``run_tick`` fails its
  in-flight handles and the supervisor restarts the worker;
* **replica quarantine + reload** — consecutive failing leases retire a
  replica and reload it from the checkpoint archive; the circuit breaker
  rejects submissions when no healthy replica remains.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.checkpoints import save_bigcity
from repro.serving import (
    AdmissionQueue,
    AdmissionTimeout,
    CircuitOpen,
    DeadlineExceeded,
    FaultPlan,
    InjectedFault,
    ModelPool,
    NextHopRequest,
    QueueClosed,
    QueueFull,
    RequestFailed,
    ResultHandle,
    RetryPolicy,
    ServiceStopped,
    ServingConfig,
    ServingService,
    TransientInjectedFault,
    call_with_retries,
    execute_request,
    is_transient,
    results_equal,
)
from repro.serving.loadgen import run_open_loop
from repro.serving.scheduler import run_tick

pytestmark = [pytest.mark.serving, pytest.mark.faults]


@pytest.fixture(scope="module")
def trajectories(tiny_dataset):
    return [t for t in tiny_dataset.test_trajectories if len(t) >= 4][:4]


@pytest.fixture(scope="module")
def checkpoint(trained_model, tiny_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving_faults") / "model.npz"
    return save_bigcity(trained_model, path, dataset_name=tiny_dataset.name)


class TestDeadlineShedding:
    def test_expired_requests_shed_at_dequeue_not_executed(self, trained_model, trajectories):
        service = ServingService(ModelPool([trained_model]), ServingConfig(max_batch_size=8))
        # submit while the service is not yet running, so the deadline
        # deterministically passes before any scheduler tick sees the batch
        expired = [
            service.submit(NextHopRequest(trajectory=t, steps=2, deadline_s=0.005))
            for t in trajectories[:2]
        ]
        alive = service.submit(NextHopRequest(trajectory=trajectories[2], steps=2))
        time.sleep(0.05)
        service.start()
        try:
            # the deadline-less request is served normally...
            served = np.asarray(alive.result(timeout=10.0))
            # ...while every expired one is shed with the typed error
            for handle in expired:
                with pytest.raises(DeadlineExceeded):
                    handle.result(timeout=10.0)
        finally:
            service.stop()
        expected = trained_model.rollout_next_hops(trajectories[2], steps=2)
        np.testing.assert_array_equal(served, expected)
        summary = service.metrics.summary()
        assert summary["shed"] == 2.0
        assert summary["failed"] == 0.0  # shedding is not an execution failure

    def test_deadline_must_be_positive(self, trajectories):
        with pytest.raises(ValueError):
            NextHopRequest(trajectory=trajectories[0], deadline_s=0.0)


class TestPoisonBatchIsolation:
    def test_survivors_bit_identical_to_serial(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("poison")
        handles = [
            ResultHandle(
                request=NextHopRequest(trajectory=t, steps=2, tag="poison" if i == 1 else None)
            )
            for i, t in enumerate(trajectories)
        ]
        tick = run_tick(trained_model, handles, faults=plan)

        # the poisoned batch call was isolated: only the poison fails
        assert tick.failed == 1
        assert tick.isolated == 3
        assert tick.batched_requests == 0  # the fold itself did not complete
        with pytest.raises(RequestFailed):
            handles[1].result(timeout=1.0)
        for i, handle in enumerate(handles):
            if i == 1:
                continue
            serial = trained_model.rollout_next_hops(trajectories[i], steps=2)
            np.testing.assert_array_equal(np.asarray(handle.result(timeout=1.0)), serial)
        assert "error:poison" in plan.fired

    def test_end_to_end_through_service(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("poison")
        service = ServingService(
            ModelPool([trained_model]), ServingConfig(max_batch_size=4), faults=plan
        )
        handles = [
            service.submit(NextHopRequest(trajectory=t, steps=2, tag="poison" if i == 0 else None))
            for i, t in enumerate(trajectories)
        ]
        service.start()
        try:
            with pytest.raises(RequestFailed):
                handles[0].result(timeout=10.0)
            for handle, trajectory in zip(handles[1:], trajectories[1:]):
                serial = trained_model.rollout_next_hops(trajectory, steps=2)
                np.testing.assert_array_equal(np.asarray(handle.result(timeout=10.0)), serial)
        finally:
            service.stop()
        summary = service.metrics.summary()
        assert summary["failed"] == 1.0
        assert summary["isolated"] == 3.0

    def test_clean_batch_still_folds_with_fault_layer_installed(self, trained_model, trajectories):
        """An empty FaultPlan must not change the folding fast path."""
        plan = FaultPlan()
        handles = [ResultHandle(request=NextHopRequest(trajectory=t, steps=2)) for t in trajectories]
        tick = run_tick(trained_model, handles, faults=plan)
        assert tick.model_calls == 1
        assert tick.batched_requests == 4
        assert tick.failed == 0 and tick.isolated == 0 and tick.retried == 0
        assert plan.fired == []


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_exponential(self):
        first = RetryPolicy(max_attempts=5, backoff_base_s=0.01, seed=11).delays()
        second = RetryPolicy(max_attempts=5, backoff_base_s=0.01, seed=11).delays()
        other_seed = RetryPolicy(max_attempts=5, backoff_base_s=0.01, seed=12).delays()
        assert first == second
        assert first != other_seed
        assert len(first) == 4
        # exponential growth dominates the 10% jitter band
        assert all(later > earlier for earlier, later in zip(first, first[1:]))
        for attempt, delay in enumerate(first):
            base = 0.01 * 2.0**attempt
            assert base <= delay <= base * 1.1

    def test_transient_classification(self):
        assert is_transient(TransientInjectedFault("x"))
        assert not is_transient(InjectedFault("x"))
        assert not is_transient(ValueError("x"))

    def test_non_transient_error_is_not_retried(self):
        calls = []

        def always_bad():
            calls.append(1)
            raise InjectedFault("permanent")

        with pytest.raises(InjectedFault):
            call_with_retries(always_bad, RetryPolicy(max_attempts=5, backoff_base_s=0.0))
        assert len(calls) == 1

    def test_tick_retries_transient_failures_to_success(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("flaky", times=2, transient=True)
        policy = RetryPolicy(max_attempts=3, backoff_base_s=0.0)
        request = NextHopRequest(trajectory=trajectories[0], steps=2, tag="flaky")
        handle = ResultHandle(request=request)
        tick = run_tick(trained_model, [handle], retry_policy=policy, faults=plan)
        assert tick.retried == 2
        assert tick.failed == 0
        serial = trained_model.rollout_next_hops(trajectories[0], steps=2)
        np.testing.assert_array_equal(np.asarray(handle.result(timeout=1.0)), serial)
        assert plan.fired == ["transient:flaky", "transient:flaky"]

    def test_tick_fails_when_attempts_exhausted(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("flaky", transient=True)  # never heals
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.0)
        handle = ResultHandle(request=NextHopRequest(trajectory=trajectories[0], steps=2, tag="flaky"))
        tick = run_tick(trained_model, [handle], retry_policy=policy, faults=plan)
        assert tick.retried == 1
        assert tick.failed == 1
        with pytest.raises(RequestFailed) as excinfo:
            handle.result(timeout=1.0)
        assert isinstance(excinfo.value.__cause__, TransientInjectedFault)


class TestWorkerSupervision:
    def test_crashed_tick_fails_batch_and_respawns_worker(self, trained_model, trajectories):
        plan = FaultPlan().crash_tick(1)
        service = ServingService(
            ModelPool([trained_model]),
            ServingConfig(max_batch_size=8, max_worker_restarts=2),
            faults=plan,
        )
        doomed = [service.submit(NextHopRequest(trajectory=t, steps=2)) for t in trajectories[:3]]
        service.start()
        try:
            # the first tick crashes before leasing: every in-flight handle
            # fails instead of hanging forever
            for handle in doomed:
                with pytest.raises(RequestFailed) as excinfo:
                    handle.result(timeout=10.0)
                assert isinstance(excinfo.value.__cause__, InjectedFault)
            # the supervisor respawned the worker, so the service still serves
            survivor = service.submit(NextHopRequest(trajectory=trajectories[3], steps=2))
            serial = trained_model.rollout_next_hops(trajectories[3], steps=2)
            np.testing.assert_array_equal(np.asarray(survivor.result(timeout=10.0)), serial)
        finally:
            service.stop()
        summary = service.metrics.summary()
        assert summary["respawned"] == 1.0
        assert summary["failed"] == 3.0
        assert "tick:1" in plan.fired

    def test_lease_crash_exercises_same_path(self, trained_model, trajectories):
        """A crash *inside* pool.lease() (the PR-6 silent-death bug) recovers too."""
        plan = FaultPlan().fail_lease(1)
        pool = ModelPool([trained_model], faults=plan)
        service = ServingService(pool, ServingConfig(max_batch_size=8), faults=plan)
        doomed = service.submit(NextHopRequest(trajectory=trajectories[0], steps=2))
        service.start()
        try:
            with pytest.raises(RequestFailed):
                doomed.result(timeout=10.0)
            survivor = service.submit(NextHopRequest(trajectory=trajectories[1], steps=2))
            serial = trained_model.rollout_next_hops(trajectories[1], steps=2)
            np.testing.assert_array_equal(np.asarray(survivor.result(timeout=10.0)), serial)
        finally:
            service.stop()
        assert service.metrics.summary()["respawned"] == 1.0

    def test_restart_budget_bounds_respawns(self, trained_model, trajectories):
        plan = FaultPlan().crash_tick(1, 2)
        service = ServingService(
            ModelPool([trained_model]),
            ServingConfig(max_batch_size=1, max_worker_restarts=1),
            faults=plan,
        )
        first = service.submit(NextHopRequest(trajectory=trajectories[0], steps=2))
        second = service.submit(NextHopRequest(trajectory=trajectories[1], steps=2))
        service.start()
        try:
            with pytest.raises(RequestFailed):
                first.result(timeout=10.0)
            with pytest.raises(RequestFailed):
                second.result(timeout=10.0)
        finally:
            service.stop(drain=False, timeout_s=2.0)
        # two crashes, but only one respawn fit in the budget
        assert service.metrics.summary()["respawned"] == 1.0


class TestReplicaHealth:
    def test_quarantine_and_reload_from_checkpoint(self, checkpoint, tiny_dataset, trajectories, trained_model):
        plan = FaultPlan()
        pool = ModelPool.from_checkpoint(
            checkpoint, tiny_dataset, replicas=1, quarantine_after=2, faults=plan
        )
        broken = pool.acquire()
        pool.release(broken)
        plan.break_replica(broken)

        service = ServingService(pool, ServingConfig(max_batch_size=1), faults=plan)
        service.start()
        try:
            # two consecutive failing leases push the replica over the threshold
            for index in range(2):
                handle = service.submit(NextHopRequest(trajectory=trajectories[index], steps=2))
                with pytest.raises(RequestFailed):
                    handle.result(timeout=10.0)
            # the pool reloaded a fresh replica from the archive: traffic flows
            # again and the answers are bit-identical to the original model
            healed = service.submit(NextHopRequest(trajectory=trajectories[2], steps=2))
            serial = trained_model.rollout_next_hops(trajectories[2], steps=2)
            np.testing.assert_array_equal(np.asarray(healed.result(timeout=10.0)), serial)
        finally:
            service.stop()
        assert pool.quarantined == 1
        assert pool.reloaded == 1
        assert pool.healthy() == 1
        assert service.metrics.summary()["quarantined"] == 1.0

    def test_circuit_breaker_rejects_without_healthy_replicas(self, trained_model, trajectories):
        plan = FaultPlan().break_replica(trained_model)
        # no reloader: quarantining the only replica leaves the pool empty
        pool = ModelPool([trained_model], quarantine_after=1, faults=plan)
        service = ServingService(pool, ServingConfig(max_batch_size=1), faults=plan)
        service.start()
        try:
            doomed = service.submit(NextHopRequest(trajectory=trajectories[0], steps=2))
            with pytest.raises(RequestFailed):
                doomed.result(timeout=10.0)
            assert pool.healthy() == 0
            with pytest.raises(CircuitOpen):
                service.submit(NextHopRequest(trajectory=trajectories[1], steps=2))
        finally:
            service.stop(drain=False, timeout_s=2.0)
        assert service.metrics.summary()["rejected"] == 1.0

    def test_success_resets_consecutive_failures(self, trained_model):
        pool = ModelPool([trained_model], quarantine_after=2)
        assert pool.report_failure(trained_model) is None
        pool.report_success(trained_model)
        assert pool.report_failure(trained_model) is None  # streak was reset
        assert pool.quarantined == 0


class TestCorruptionAndLoadgen:
    def test_corrupted_result_diverges_from_serial(self, trained_model, trajectories):
        plan = FaultPlan().corrupt_request("bad", times=1)
        request = NextHopRequest(trajectory=trajectories[0], steps=2, tag="bad")
        corrupted = execute_request(trained_model, request, faults=plan)
        clean = execute_request(trained_model, request)
        assert not results_equal(corrupted, clean)
        assert np.all(np.asarray(corrupted) == -1)

    def test_open_loop_counts_failures_instead_of_aborting(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("poison")
        service = ServingService(
            ModelPool([trained_model]), ServingConfig(max_batch_size=4), faults=plan
        )
        trace = [
            NextHopRequest(trajectory=t, steps=2, tag="poison" if i == 0 else None)
            for i, t in enumerate(trajectories)
        ]
        service.start()
        try:
            results, summary = run_open_loop(service, trace, rate_hz=None, timeout_s=10.0)
        finally:
            service.stop()
        assert results[0] is None
        assert all(result is not None for result in results[1:])
        assert summary["loadgen_failed"] == 1.0
        assert summary["failure_rate"] == pytest.approx(0.25)
        for result, request in zip(results[1:], trace[1:]):
            assert results_equal(result, execute_request(trained_model, request))


class TestExistingErrorPaths:
    """Coverage for error paths that predate the fault layer."""

    def test_request_failed_preserves_cause_chain(self, trajectories):
        handle = ResultHandle(request=NextHopRequest(trajectory=trajectories[0]))
        original = ValueError("model exploded")
        handle.fail(original)
        with pytest.raises(RequestFailed) as excinfo:
            handle.result(timeout=1.0)
        assert excinfo.value.__cause__ is original

    def test_queue_full_under_reject_policy_at_service_level(self, trained_model, trajectories):
        service = ServingService(
            ModelPool([trained_model]),
            ServingConfig(max_queue_depth=2, admission_policy="reject"),
        )
        service.submit(NextHopRequest(trajectory=trajectories[0], steps=1))
        service.submit(NextHopRequest(trajectory=trajectories[1], steps=1))
        with pytest.raises(QueueFull):
            service.submit(NextHopRequest(trajectory=trajectories[2], steps=1))

    def test_admission_timeout_under_block_policy_at_service_level(self, trained_model, trajectories):
        service = ServingService(
            ModelPool([trained_model]),
            ServingConfig(max_queue_depth=1, admission_policy="block", admission_timeout_s=0.01),
        )
        service.submit(NextHopRequest(trajectory=trajectories[0], steps=1))
        with pytest.raises(AdmissionTimeout):
            service.submit(NextHopRequest(trajectory=trajectories[1], steps=1))

    def test_take_batch_after_close_returns_leftovers_then_empty(self):
        queue = AdmissionQueue(capacity=8)
        for item in range(3):
            queue.put(item)
        queue.close()
        assert queue.take_batch(2, timeout_s=0.0) == [0, 1]
        assert queue.take_batch(2, timeout_s=0.0) == [2]
        assert queue.take_batch(2, timeout_s=0.0) == []

    def test_submit_after_stop_raises_service_stopped(self, trained_model, trajectories):
        service = ServingService(ModelPool([trained_model]))
        service.start()
        service.stop()
        with pytest.raises(ServiceStopped):
            service.submit(NextHopRequest(trajectory=trajectories[0], steps=1))
        # backwards compatible: ServiceStopped IS a QueueClosed
        assert issubclass(ServiceStopped, QueueClosed)

    def test_invalid_serving_config_rejected_eagerly(self):
        with pytest.raises(ValueError):
            ServingConfig(max_queue_depth=0)
        with pytest.raises(ValueError):
            ServingConfig(idle_wait_s=0.0)
        with pytest.raises(ValueError):
            ServingConfig(admission_timeout_s=-1.0)
        with pytest.raises(ValueError):
            ServingConfig(admission_policy="drop-newest")
        with pytest.raises(ValueError):
            ServingConfig(max_worker_restarts=-1)
        with pytest.raises(ValueError):
            ServingConfig(min_healthy_replicas=-1)
