"""Tests for the traffic-state and trajectory-recovery baselines and classical similarity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.recovery import (
    DTHRHMMRecovery,
    LinearHMMRecovery,
    MTrajRec,
    RECOVERY_BASELINES,
    RNTrajRec,
    build_recovery_baseline,
)
from repro.baselines.similarity import (
    CLASSICAL_SIMILARITY_MEASURES,
    ClassicalSimilarity,
    dtw_distance,
    edr_distance,
    frechet_distance,
    lcss_distance,
)
from repro.baselines.traffic import TRAFFIC_BASELINES, build_traffic_baseline
from repro.data.trajectory import subsample_trajectory


class TestTrafficBaselines:
    def test_all_seven_registered(self):
        assert set(TRAFFIC_BASELINES) == {"dcrnn", "gwnet", "mtgnn", "trgnn", "stgode", "stnorm", "sstban"}

    def test_unknown_name_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_traffic_baseline("stgcn", tiny_dataset)

    def test_requires_traffic_states(self, tiny_dataset_no_traffic):
        with pytest.raises(ValueError):
            build_traffic_baseline("dcrnn", tiny_dataset_no_traffic)

    @pytest.mark.parametrize("name", sorted(TRAFFIC_BASELINES))
    def test_fit_and_predict_shapes(self, tiny_dataset, name):
        model = build_traffic_baseline(name, tiny_dataset, history=4, horizon=3, hidden_dim=12, seed=0)
        history = model.fit(num_windows=6, epochs=1, batch_size=3)
        assert len(history) == 1 and np.isfinite(history[0])
        prediction = model.predict(segment_id=2, start_slice=5, history=4, horizon=3)
        assert prediction.shape == (3, tiny_dataset.traffic_states.num_channels)
        assert np.all(np.isfinite(prediction))

    def test_training_reduces_forecast_loss(self, tiny_dataset):
        model = build_traffic_baseline("gwnet", tiny_dataset, history=4, horizon=2, hidden_dim=12, seed=0)
        history = model.fit(num_windows=12, epochs=4, batch_size=4)
        assert history[-1] < history[0]

    def test_history_mismatch_rejected(self, tiny_dataset):
        model = build_traffic_baseline("stnorm", tiny_dataset, history=4, horizon=2, hidden_dim=12, seed=0)
        with pytest.raises(ValueError):
            model.predict(0, 0, history=6, horizon=2)

    def test_imputation_roundtrip(self, tiny_dataset):
        model = build_traffic_baseline("dcrnn", tiny_dataset, history=4, horizon=2, hidden_dim=12, seed=0)
        model.fit_imputation(num_windows=6, epochs=1, batch_size=3)
        imputed = model.impute(1, 2, 8, [1, 6], traffic_override=None)
        assert imputed.shape == (2, tiny_dataset.traffic_states.num_channels)
        assert np.all(np.isfinite(imputed))

    def test_trgnn_uses_trajectory_transitions(self, tiny_dataset):
        model = build_traffic_baseline("trgnn", tiny_dataset, history=4, horizon=2, hidden_dim=12, seed=0)
        transitions = model._transition
        assert transitions.shape == (tiny_dataset.num_segments, tiny_dataset.num_segments)
        assert np.allclose(transitions.sum(axis=1), 1.0, atol=1e-6)

    def test_predictions_denormalised_to_physical_range(self, tiny_dataset):
        model = build_traffic_baseline("stgode", tiny_dataset, history=4, horizon=2, hidden_dim=12, seed=0)
        model.fit(num_windows=8, epochs=2, batch_size=4)
        prediction = model.predict(0, 5, 4, 2)
        speed = prediction[:, 0]
        assert np.all(speed > -50) and np.all(speed < 200)


class TestRecoveryBaselines:
    def test_all_four_registered(self):
        assert set(RECOVERY_BASELINES) == {"linear_hmm", "dthr_hmm", "mtrajrec", "rntrajrec"}

    def _case(self, dataset, rng):
        trajectory = max(dataset.test_trajectories, key=len)
        _, kept = subsample_trajectory(trajectory, keep_ratio=0.3, rng=rng)
        missing = np.setdiff1d(np.arange(len(trajectory)), kept)
        return trajectory, kept, missing

    @pytest.mark.parametrize("name", ["linear_hmm", "dthr_hmm"])
    def test_rule_based_recovery_output(self, tiny_dataset, rng, name):
        baseline = build_recovery_baseline(name, tiny_dataset)
        baseline.fit()
        trajectory, kept, missing = self._case(tiny_dataset, rng)
        recovered = baseline.recover(trajectory, kept)
        assert recovered.shape == (len(missing),)
        assert np.all((recovered >= 0) & (recovered < tiny_dataset.num_segments))

    @pytest.mark.parametrize("name", ["mtrajrec", "rntrajrec"])
    def test_learned_recovery_trains_and_predicts(self, tiny_dataset, rng, name):
        baseline = build_recovery_baseline(name, tiny_dataset, seed=0)
        history = baseline.fit(epochs=1, max_samples=15)
        assert history and np.isfinite(history[0])
        trajectory, kept, missing = self._case(tiny_dataset, rng)
        recovered = baseline.recover(trajectory, kept)
        assert recovered.shape == (len(missing),)

    def test_rule_based_beats_nothing_on_endpoint_heavy_masks(self, tiny_dataset, rng):
        """DTHR interpolation follows the road graph, so it recovers *some* segments."""
        baseline = DTHRHMMRecovery(tiny_dataset)
        hits = 0
        total = 0
        for trajectory in [t for t in tiny_dataset.trajectories if len(t) >= 6][:5]:
            _, kept = subsample_trajectory(trajectory, keep_ratio=0.3, rng=rng)
            missing = np.setdiff1d(np.arange(len(trajectory)), kept)
            recovered = baseline.recover(trajectory, kept)
            hits += sum(int(r == trajectory.segments[i]) for r, i in zip(recovered, missing))
            total += len(missing)
        assert total > 0
        assert hits / total > 0.05

    def test_unknown_recovery_name(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_recovery_baseline("kalman", tiny_dataset)


class TestClassicalSimilarity:
    def _coords(self, *points):
        return np.asarray(points, dtype=np.float64)

    def test_dtw_identical_is_zero(self):
        a = self._coords((0, 0), (1, 0), (2, 0))
        assert dtw_distance(a, a) == 0.0

    def test_dtw_increases_with_offset(self):
        a = self._coords((0, 0), (1, 0), (2, 0))
        b = self._coords((0, 1), (1, 1), (2, 1))
        c = self._coords((0, 3), (1, 3), (2, 3))
        assert dtw_distance(a, b) < dtw_distance(a, c)

    def test_lcss_bounds(self):
        a = self._coords((0, 0), (1, 0))
        b = self._coords((5, 5), (6, 5))
        assert lcss_distance(a, a) == 0.0
        assert lcss_distance(a, b) == 1.0

    def test_frechet_is_max_of_pointwise_for_aligned(self):
        a = self._coords((0, 0), (1, 0))
        b = self._coords((0, 1), (1, 2))
        assert frechet_distance(a, b) == pytest.approx(2.0)

    def test_edr_identical_and_disjoint(self):
        a = self._coords((0, 0), (1, 0), (2, 0))
        b = self._coords((9, 9), (10, 9), (11, 9))
        assert edr_distance(a, a) == 0.0
        assert edr_distance(a, b) == 1.0

    def test_all_measures_registered(self):
        assert set(CLASSICAL_SIMILARITY_MEASURES) == {"dtw", "lcss", "frechet", "edr"}

    def test_adapter_on_trajectories(self, tiny_dataset):
        adapter = ClassicalSimilarity(tiny_dataset.network, "dtw")
        a, b = tiny_dataset.trajectories[:2]
        assert adapter(a, a) == pytest.approx(0.0)
        assert adapter(a, b) >= 0.0

    def test_adapter_unknown_method(self, tiny_dataset):
        with pytest.raises(KeyError):
            ClassicalSimilarity(tiny_dataset.network, "hausdorff")
