"""Tests for trajectory augmentation (`repro.data.augmentation`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import augmentation
from repro.data.trajectory import Trajectory
from repro.roadnet.generators import grid_city


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=3, cols=3, block_km=0.5, seed=5)


@pytest.fixture(scope="module")
def walk_trajectory(network):
    rng = np.random.default_rng(11)
    segments = network.random_walk(0, length=10, rng=rng)
    timestamps = [float(1_000 + 60 * i) for i in range(len(segments))]
    return Trajectory(trajectory_id=1, user_id=4, segments=segments, timestamps=timestamps, label=1)


def _is_valid(trajectory: Trajectory) -> bool:
    increasing = all(b >= a for a, b in zip(trajectory.timestamps, trajectory.timestamps[1:]))
    return len(trajectory) >= 2 and increasing


class TestDropSamples:
    def test_endpoints_preserved(self, walk_trajectory):
        rng = np.random.default_rng(0)
        dropped = augmentation.drop_samples(walk_trajectory, 0.5, rng)
        assert dropped.segments[0] == walk_trajectory.segments[0]
        assert dropped.segments[-1] == walk_trajectory.segments[-1]
        assert len(dropped) <= len(walk_trajectory)
        assert _is_valid(dropped)

    def test_zero_ratio_keeps_everything(self, walk_trajectory):
        rng = np.random.default_rng(0)
        kept = augmentation.drop_samples(walk_trajectory, 0.0, rng)
        assert kept.segments == walk_trajectory.segments

    def test_original_untouched(self, walk_trajectory):
        before = list(walk_trajectory.segments)
        augmentation.drop_samples(walk_trajectory, 0.5, np.random.default_rng(0))
        assert walk_trajectory.segments == before

    def test_invalid_ratio_raises(self, walk_trajectory):
        with pytest.raises(ValueError):
            augmentation.drop_samples(walk_trajectory, 1.0, np.random.default_rng(0))

    @given(ratio=st.floats(min_value=0.0, max_value=0.95), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_result_always_valid(self, walk_trajectory, ratio, seed):
        dropped = augmentation.drop_samples(walk_trajectory, ratio, np.random.default_rng(seed))
        assert _is_valid(dropped)
        assert dropped.user_id == walk_trajectory.user_id
        assert dropped.label == walk_trajectory.label


class TestCropWindow:
    def test_window_length(self, walk_trajectory):
        cropped = augmentation.crop_window(walk_trajectory, 4, np.random.default_rng(0))
        assert len(cropped) == 4
        assert _is_valid(cropped)

    def test_window_is_contiguous_subsequence(self, walk_trajectory):
        cropped = augmentation.crop_window(walk_trajectory, 5, np.random.default_rng(1))
        joined = ",".join(str(s) for s in walk_trajectory.segments)
        assert ",".join(str(s) for s in cropped.segments) in joined

    def test_short_trajectory_unchanged(self, walk_trajectory):
        cropped = augmentation.crop_window(walk_trajectory, 100, np.random.default_rng(0))
        assert cropped.segments == walk_trajectory.segments

    def test_invalid_window_raises(self, walk_trajectory):
        with pytest.raises(ValueError):
            augmentation.crop_window(walk_trajectory, 1, np.random.default_rng(0))


class TestJitterTimestamps:
    def test_order_preserved(self, walk_trajectory):
        jittered = augmentation.jitter_timestamps(walk_trajectory, 30.0, np.random.default_rng(0))
        assert _is_valid(jittered)
        assert jittered.segments == walk_trajectory.segments

    def test_endpoints_unchanged(self, walk_trajectory):
        jittered = augmentation.jitter_timestamps(walk_trajectory, 30.0, np.random.default_rng(0))
        assert jittered.timestamps[0] == walk_trajectory.timestamps[0]
        assert jittered.timestamps[-1] == walk_trajectory.timestamps[-1]

    def test_zero_jitter_is_identity(self, walk_trajectory):
        jittered = augmentation.jitter_timestamps(walk_trajectory, 0.0, np.random.default_rng(0))
        assert jittered.timestamps == walk_trajectory.timestamps

    def test_negative_jitter_raises(self, walk_trajectory):
        with pytest.raises(ValueError):
            augmentation.jitter_timestamps(walk_trajectory, -1.0, np.random.default_rng(0))

    @given(shift=st.floats(min_value=0.0, max_value=600.0), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_always_non_decreasing(self, walk_trajectory, shift, seed):
        jittered = augmentation.jitter_timestamps(walk_trajectory, shift, np.random.default_rng(seed))
        assert _is_valid(jittered)


class TestPerturbSegments:
    def test_endpoints_never_perturbed(self, walk_trajectory, network):
        perturbed = augmentation.perturb_segments(walk_trajectory, network, 1.0, np.random.default_rng(0))
        assert perturbed.segments[0] == walk_trajectory.segments[0]
        assert perturbed.segments[-1] == walk_trajectory.segments[-1]

    def test_replacements_are_graph_neighbours(self, walk_trajectory, network):
        perturbed = augmentation.perturb_segments(walk_trajectory, network, 1.0, np.random.default_rng(0))
        for original, replaced in zip(walk_trajectory.segments[1:-1], perturbed.segments[1:-1]):
            if original == replaced:
                continue
            neighbours = set(network.successors(original)) | set(network.predecessors(original))
            assert replaced in neighbours

    def test_zero_ratio_is_identity(self, walk_trajectory, network):
        perturbed = augmentation.perturb_segments(walk_trajectory, network, 0.0, np.random.default_rng(0))
        assert perturbed.segments == walk_trajectory.segments

    def test_invalid_ratio_raises(self, walk_trajectory, network):
        with pytest.raises(ValueError):
            augmentation.perturb_segments(walk_trajectory, network, 1.5, np.random.default_rng(0))


class TestDetour:
    def test_detour_inserts_segments(self, walk_trajectory, network):
        detoured = augmentation.detour(walk_trajectory, network, np.random.default_rng(2), max_extra_hops=2)
        assert len(detoured) >= len(walk_trajectory)
        assert _is_valid(detoured)

    def test_detour_preserves_endpoints(self, walk_trajectory, network):
        detoured = augmentation.detour(walk_trajectory, network, np.random.default_rng(2))
        assert detoured.segments[0] == walk_trajectory.segments[0]
        assert detoured.segments[-1] == walk_trajectory.segments[-1]

    def test_detour_inserts_a_bounded_number_of_segments(self, walk_trajectory, network):
        rng = np.random.default_rng(3)
        max_extra = 3
        detoured = augmentation.detour(walk_trajectory, network, rng, max_extra_hops=max_extra)
        inserted = len(detoured) - len(walk_trajectory)
        assert 0 <= inserted <= max_extra

    def test_invalid_hops_raise(self, walk_trajectory, network):
        with pytest.raises(ValueError):
            augmentation.detour(walk_trajectory, network, np.random.default_rng(0), max_extra_hops=0)


class TestAugmentDataset:
    def test_copies_count(self, walk_trajectory, network):
        augmented = augmentation.augment_dataset([walk_trajectory] * 3, network, copies=2, seed=0)
        assert len(augmented) == 6
        assert all(_is_valid(t) for t in augmented)

    def test_zero_copies(self, walk_trajectory, network):
        assert augmentation.augment_dataset([walk_trajectory], network, copies=0) == []

    def test_deterministic_given_seed(self, walk_trajectory, network):
        first = augmentation.augment_dataset([walk_trajectory], network, copies=2, seed=9)
        second = augmentation.augment_dataset([walk_trajectory], network, copies=2, seed=9)
        assert [t.segments for t in first] == [t.segments for t in second]
        assert [t.timestamps for t in first] == [t.timestamps for t in second]

    def test_negative_copies_raise(self, walk_trajectory, network):
        with pytest.raises(ValueError):
            augmentation.augment_dataset([walk_trajectory], network, copies=-1)

    def test_labels_and_users_preserved(self, walk_trajectory, network):
        augmented = augmentation.augment_dataset([walk_trajectory], network, copies=3, seed=1)
        assert all(t.user_id == walk_trajectory.user_id for t in augmented)
        assert all(t.label == walk_trajectory.label for t in augmented)
