"""Tests for the command-line interface (`repro.cli`)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.core.training import TrainingConfig
from repro.eval.results import ResultTable
from repro.nn.serialization import save_state_dict


class TestParser:
    def test_all_subcommands_registered(self):
        parser = cli.build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"
        for command in ("train", "evaluate", "experiment", "radar"):
            assert parser.parse_args([command]).command == command

    def test_no_command_prints_help_and_returns_2(self, capsys):
        assert cli.main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_train_defaults(self):
        parser = cli.build_parser()
        args = parser.parse_args(["train"])
        assert args.dataset == "xa_like"
        assert args.size == "tiny"
        assert args.stage1_epochs == 1

    def test_unknown_dataset_rejected(self):
        parser = cli.build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--dataset", "nowhere"])


class TestDatasetsCommand:
    def test_prints_table_for_requested_presets(self, capsys, monkeypatch, tiny_dataset):
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        exit_code = cli.main(["datasets", "--names", "xa_like"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "xa_like" in output
        assert "trajectories" in output

    def test_json_output(self, capsys, monkeypatch, tiny_dataset):
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        exit_code = cli.main(["datasets", "--names", "xa_like", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "rows" in payload
        assert "xa_like" in payload["rows"]


class TestTrainCommand:
    def test_train_glue_saves_checkpoint(self, capsys, monkeypatch, tmp_path, tiny_dataset, trained_model):
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        monkeypatch.setattr(
            cli, "train_bigcity", lambda dataset, model_config=None, training_config=None: (trained_model, {"stage1": [], "stage2": []})
        )
        output = tmp_path / "model.npz"
        exit_code = cli.main(["train", "--dataset", "xa_like", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        printed = capsys.readouterr().out
        assert "trained BIGCity" in printed
        assert "saved model weights" in printed


class TestEvaluateCommand:
    def test_evaluate_from_checkpoint(self, capsys, monkeypatch, tmp_path, tiny_dataset, trained_model):
        checkpoint = tmp_path / "weights.npz"
        save_state_dict(trained_model, checkpoint)
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        exit_code = cli.main(
            [
                "evaluate",
                "--dataset",
                "xa_like",
                "--checkpoint",
                str(checkpoint),
                "--max-samples",
                "6",
                "--json",
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        row = payload["rows"]["bigcity"]
        assert "tte_mae" in row and "next_acc" in row and "simi_hr@5" in row
        assert row["tte_mae"] >= 0.0


class TestExperimentCommand:
    def test_list_experiments(self, capsys):
        exit_code = cli.main(["experiment", "--list"])
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "table3" in output
        assert "fig1" in output

    def test_missing_name_is_an_error(self, capsys):
        assert cli.main(["experiment"]) == 2

    def test_unknown_experiment_raises_key_error(self):
        with pytest.raises(KeyError):
            cli.main(["experiment", "table99"])

    def test_experiment_runner_output_saved(self, capsys, monkeypatch, tmp_path):
        table = ResultTable(title="fake table")
        table.add_row("bigcity", {"metric": 1.0})

        class FakeSpec:
            runner = staticmethod(lambda context: {"only": table})

        monkeypatch.setattr(cli, "get_experiment", lambda name: FakeSpec)
        monkeypatch.setattr(cli, "ExperimentContext", lambda profile: object())
        output = tmp_path / "result.json"
        exit_code = cli.main(["experiment", "table2", "--output", str(output)])
        assert exit_code == 0
        assert "fake table" in capsys.readouterr().out
        payload = json.loads(output.read_text())
        assert payload[0]["rows"]["bigcity"]["metric"] == 1.0


class TestHelpers:
    def test_tables_from_result_flattens_nested_dicts(self):
        table_a = ResultTable(title="a")
        table_b = ResultTable(title="b")
        result = {"x": table_a, "nested": {"y": table_b}}
        tables = cli._tables_from_result(result)
        assert tables == [table_a, table_b]

    def test_tables_from_result_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            cli._tables_from_result(42)

    def test_model_config_sizes(self):
        assert cli._model_config("tiny", seed=1).seed == 1
        assert cli._model_config("small", seed=2).seed == 2
        assert cli._model_config("default", seed=3).seed == 3
        with pytest.raises(ValueError):
            cli._model_config("huge", seed=0)


@pytest.fixture()
def serving_checkpoint(tmp_path, tiny_dataset, trained_model):
    from repro.core.checkpoints import save_bigcity

    return save_bigcity(trained_model, tmp_path / "serving.npz", dataset_name=tiny_dataset.name)


@pytest.mark.serving
class TestServeCommand:
    def test_subcommands_registered(self):
        parser = cli.build_parser()
        assert parser.parse_args(["serve"]).command == "serve"
        args = parser.parse_args(["loadgen", "--num-requests", "5"])
        assert args.command == "loadgen"
        assert args.num_requests == 5

    def test_serve_answers_request_file_in_order(self, capsys, monkeypatch, tmp_path, tiny_dataset, serving_checkpoint):
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            "\n".join(
                [
                    json.dumps({"task": "next_hop", "trajectory": 0, "steps": 2}),
                    json.dumps({"task": "next_hop", "trajectory": 1, "steps": 2}),
                    json.dumps({"task": "recovery", "trajectory": 2}),
                    "not json at all",
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        exit_code = cli.main(
            [
                "serve",
                "--checkpoint",
                str(serving_checkpoint),
                "--input",
                str(requests),
                "--max-batch-size",
                "4",
            ]
        )
        assert exit_code == 0
        lines = [json.loads(line) for line in capsys.readouterr().out.strip().splitlines()]
        answers = [line for line in lines if "result" in line]
        errors = [line for line in lines if "error" in line]
        assert [a["task"] for a in answers] == ["next_hop", "next_hop", "recovery"]
        assert all(len(a["result"]) >= 1 for a in answers)
        assert len(errors) == 1  # the malformed line is reported, not fatal

    def test_loadgen_json_output(self, capsys, monkeypatch, tmp_path, tiny_dataset, serving_checkpoint):
        monkeypatch.setattr(cli, "load_dataset", lambda name, seed=0: tiny_dataset)
        output = tmp_path / "serving.json"
        exit_code = cli.main(
            [
                "loadgen",
                "--checkpoint",
                str(serving_checkpoint),
                "--num-requests",
                "8",
                "--rate",
                "0",
                "--max-batch-size",
                "4",
                "--json",
                "--output",
                str(output),
            ]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] == 1.0
        assert payload["requests"] == 8.0
        assert payload["requests_per_s"] > 0.0
        saved = json.loads(output.read_text())
        assert saved["requests"] == payload["requests"]
