"""Tests for GPS traces and map matching round trips (`repro.data.gps`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.gps import GPSPoint, GPSTrace, map_match_trace, trajectory_to_gps
from repro.data.mapmatch import HMMMapMatcher
from repro.data.trajectory import Trajectory
from repro.roadnet.generators import grid_city


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=4, cols=4, block_km=0.6, seed=9)


@pytest.fixture(scope="module")
def walk(network):
    rng = np.random.default_rng(3)
    segments = network.random_walk(0, length=9, rng=rng)
    timestamps = [float(500 + 45 * i) for i in range(len(segments))]
    return Trajectory(trajectory_id=7, user_id=2, segments=segments, timestamps=timestamps)


class TestGPSTrace:
    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            GPSTrace(trace_id=0, user_id=0, points=[GPSPoint(0.0, 0.0, 1.0)])

    def test_requires_time_order(self):
        points = [GPSPoint(0.0, 0.0, 2.0), GPSPoint(1.0, 0.0, 1.0)]
        with pytest.raises(ValueError):
            GPSTrace(trace_id=0, user_id=0, points=points)

    def test_duration_and_arrays(self):
        points = [GPSPoint(0.0, 0.0, 0.0), GPSPoint(1.0, 1.0, 30.0), GPSPoint(2.0, 0.5, 90.0)]
        trace = GPSTrace(trace_id=1, user_id=3, points=points)
        assert trace.duration == 90.0
        assert trace.positions().shape == (3, 2)
        assert trace.timestamps().tolist() == [0.0, 30.0, 90.0]

    def test_bounding_box(self):
        points = [GPSPoint(0.0, -1.0, 0.0), GPSPoint(2.0, 3.0, 10.0)]
        trace = GPSTrace(trace_id=1, user_id=0, points=points)
        assert trace.bounding_box() == ((0.0, -1.0), (2.0, 3.0))


class TestTrajectoryToGps:
    def test_point_count_and_order(self, walk, network):
        trace = trajectory_to_gps(walk, network, points_per_segment=3, noise_sigma_km=0.0, seed=0)
        assert len(trace) == 3 * len(walk)
        times = trace.timestamps()
        assert np.all(np.diff(times) >= 0)

    def test_noise_free_points_lie_on_segments(self, walk, network):
        trace = trajectory_to_gps(walk, network, points_per_segment=2, noise_sigma_km=0.0, seed=0)
        # each noise-free fix must lie within the bounding box of some visited segment
        visited = [network.segment(s) for s in walk.segments]
        for point in trace.points:
            inside_any = False
            for segment in visited:
                xs = sorted([segment.start[0], segment.end[0]])
                ys = sorted([segment.start[1], segment.end[1]])
                if xs[0] - 1e-9 <= point.x <= xs[1] + 1e-9 and ys[0] - 1e-9 <= point.y <= ys[1] + 1e-9:
                    inside_any = True
                    break
            assert inside_any

    def test_noise_changes_positions_deterministically(self, walk, network):
        noisy_a = trajectory_to_gps(walk, network, noise_sigma_km=0.05, seed=4)
        noisy_b = trajectory_to_gps(walk, network, noise_sigma_km=0.05, seed=4)
        clean = trajectory_to_gps(walk, network, noise_sigma_km=0.0, seed=4)
        np.testing.assert_allclose(noisy_a.positions(), noisy_b.positions())
        assert not np.allclose(noisy_a.positions(), clean.positions())

    def test_preserves_ids(self, walk, network):
        trace = trajectory_to_gps(walk, network, seed=0)
        assert trace.trace_id == walk.trajectory_id
        assert trace.user_id == walk.user_id

    def test_invalid_parameters_raise(self, walk, network):
        with pytest.raises(ValueError):
            trajectory_to_gps(walk, network, points_per_segment=0)
        with pytest.raises(ValueError):
            trajectory_to_gps(walk, network, noise_sigma_km=-0.1)


class TestMapMatchRoundTrip:
    def test_clean_trace_recovers_most_segments(self, walk, network):
        trace = trajectory_to_gps(walk, network, points_per_segment=2, noise_sigma_km=0.0, seed=0)
        recovered = map_match_trace(trace, network)
        # the matcher works on midpoints, so adjacent parallel segments can be
        # confused; require a clear majority of the original path to reappear
        overlap = len(set(recovered.segments) & set(walk.segments)) / len(set(walk.segments))
        assert overlap >= 0.5
        assert recovered.trajectory_id == walk.trajectory_id
        assert recovered.user_id == walk.user_id

    def test_recovered_trajectory_is_valid(self, walk, network):
        trace = trajectory_to_gps(walk, network, points_per_segment=2, noise_sigma_km=0.03, seed=1)
        recovered = map_match_trace(trace, network)
        assert len(recovered) >= 2
        assert all(0 <= s < network.num_segments for s in recovered.segments)
        assert all(b >= a for a, b in zip(recovered.timestamps, recovered.timestamps[1:]))

    def test_no_consecutive_duplicates(self, walk, network):
        trace = trajectory_to_gps(walk, network, points_per_segment=3, noise_sigma_km=0.0, seed=0)
        recovered = map_match_trace(trace, network)
        duplicates = [a for a, b in zip(recovered.segments, recovered.segments[1:]) if a == b]
        assert not duplicates

    def test_degenerate_trace_still_yields_two_samples(self, network):
        segment = network.segment(0)
        mid = segment.midpoint
        points = [GPSPoint(mid[0], mid[1], float(t)) for t in (0.0, 10.0, 20.0)]
        trace = GPSTrace(trace_id=5, user_id=1, points=points)
        recovered = map_match_trace(trace, network)
        assert len(recovered) == 2

    def test_custom_matcher_is_used(self, walk, network):
        trace = trajectory_to_gps(walk, network, noise_sigma_km=0.0, seed=0)
        matcher = HMMMapMatcher(network, num_candidates=3)
        recovered = map_match_trace(trace, network, matcher=matcher)
        assert len(recovered) >= 2

    @given(seed=st.integers(0, 200))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_never_crashes(self, network, seed):
        rng = np.random.default_rng(seed)
        segments = network.random_walk(int(rng.integers(0, network.num_segments)), length=6, rng=rng)
        timestamps = [float(100 + 30 * i) for i in range(len(segments))]
        trajectory = Trajectory(trajectory_id=seed, user_id=0, segments=segments, timestamps=timestamps)
        trace = trajectory_to_gps(trajectory, network, noise_sigma_km=0.05, seed=seed)
        recovered = map_match_trace(trace, network)
        assert len(recovered) >= 2
