"""Tests for the assembled BIGCity model, heads and backbone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backbone import BIGCityBackbone
from repro.core.config import BIGCityConfig
from repro.core.heads import GeneralTaskHeads, LabelSpace
from repro.core.model import BIGCity
from repro.core.prompts import TaskType
from repro.nn.lora import LoRALinear
from repro.nn.tensor import Tensor


class TestConfig:
    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            BIGCityConfig(d_model=30, num_heads=4)
        with pytest.raises(ValueError):
            BIGCityConfig(lora_coverage=0.0)
        with pytest.raises(ValueError):
            BIGCityConfig(history_window=0)

    def test_named_presets(self):
        assert BIGCityConfig.tiny().d_model < BIGCityConfig.small().d_model


class TestBackbone:
    def test_lora_attached_and_base_frozen(self):
        backbone = BIGCityBackbone(BIGCityConfig.tiny(), text_vocab_size=20)
        assert backbone.lora_module_names
        assert isinstance(backbone.llm.blocks[0].attn.q_proj, LoRALinear)
        trainable = backbone.trainable_parameter_count()
        total = backbone.total_parameter_count()
        assert 0 < trainable < total

    def test_text_embedding_and_forward(self):
        backbone = BIGCityBackbone(BIGCityConfig.tiny(), text_vocab_size=20)
        emb = backbone.embed_text(np.array([1, 2, 3]))
        assert emb.shape == (3, backbone.d_model)
        out = backbone(emb.reshape(1, 3, backbone.d_model))
        assert out.shape == (1, 3, backbone.d_model)

    def test_coverage_reduces_adapted_modules(self):
        full = BIGCityBackbone(BIGCityConfig.tiny(), text_vocab_size=10)
        half = BIGCityBackbone(BIGCityConfig(
            hidden_dim=16, d_model=32, num_layers=2, num_heads=2, lora_coverage=0.5, seed=0
        ), text_vocab_size=10)
        assert len(half.lora_module_names) < len(full.lora_module_names)


class TestGeneralTaskHeads:
    def test_three_decoders_shapes(self):
        space = LabelSpace(num_segments=20, num_users=5, num_patterns=2)
        heads = GeneralTaskHeads(d_model=16, label_space=space, regression_dim=3)
        tokens = Tensor(np.random.default_rng(0).standard_normal((4, 16)))
        logits, timestamps, regression = heads(tokens)
        assert logits.shape == (4, space.size)
        assert timestamps.shape == (4, 1)
        assert regression.shape == (4, 3)

    def test_family_restriction(self):
        space = LabelSpace(num_segments=20, num_users=5, num_patterns=2)
        heads = GeneralTaskHeads(d_model=16, label_space=space, regression_dim=3)
        tokens = Tensor(np.zeros((2, 16)))
        assert heads.classification_logits(tokens, family="segment").shape == (2, 20)
        assert heads.classification_logits(tokens, family="user").shape == (2, 5)
        assert heads.classification_logits(tokens, family="pattern").shape == (2, 2)


class TestBIGCityForward:
    def test_from_dataset_sizes_label_space(self, untrained_model, tiny_dataset):
        assert untrained_model.label_space.num_segments == tiny_dataset.network.num_segments
        assert untrained_model.label_space.num_users >= tiny_dataset.num_users

    def test_forward_prompts_aligns_outputs_with_placeholders(self, untrained_model, tiny_dataset):
        trajectory = tiny_dataset.trajectories[0]
        sequence = untrained_model.sequence_from_trajectory(trajectory)
        prompts = [
            untrained_model.prompt_builder.next_hop(sequence),
            untrained_model.prompt_builder.travel_time(sequence),
        ]
        outputs = untrained_model.forward_prompts(prompts)
        assert len(outputs) == 2
        assert outputs[0].task_outputs.shape == (1, untrained_model.config.d_model)
        assert outputs[1].task_outputs.shape == (len(sequence) - 1, untrained_model.config.d_model)
        assert outputs[0].pooled.shape == (untrained_model.config.d_model,)

    def test_forward_prompts_empty_list(self, untrained_model):
        assert untrained_model.forward_prompts([]) == []

    def test_prompt_length_limit_enforced(self, tiny_dataset):
        config = BIGCityConfig.tiny()
        config.max_position = 8
        model = BIGCity.from_dataset(tiny_dataset, config=config)
        long_trajectory = max(tiny_dataset.trajectories, key=len)
        prompt = model.prompt_builder.travel_time(model.sequence_from_trajectory(long_trajectory))
        with pytest.raises(ValueError):
            model.forward_prompts([prompt])

    def test_prompt_loss_is_finite_and_differentiable(self, untrained_model, tiny_dataset):
        sequence = untrained_model.sequence_from_trajectory(tiny_dataset.trajectories[0])
        prompts = [
            untrained_model.prompt_builder.next_hop(sequence),
            untrained_model.prompt_builder.classification(sequence, target="user"),
        ]
        loss, breakdown = untrained_model.prompt_loss(prompts)
        assert np.isfinite(loss.item())
        assert breakdown["count"] >= 2
        loss.backward()
        grads = [p.grad for p in untrained_model.trainable_parameters() if p.grad is not None]
        assert grads

    def test_masked_reconstruction_loss_components(self, untrained_model, tiny_dataset):
        sequence = untrained_model.sequence_from_trajectory(tiny_dataset.trajectories[2])
        prompt = untrained_model.prompt_builder.masked_reconstruction(sequence, 0.4, rng=np.random.default_rng(0))
        _, breakdown = untrained_model.prompt_loss([prompt])
        assert breakdown["clas"] > 0
        assert breakdown["reg"] > 0
        assert breakdown["tim"] > 0

    def test_without_prompts_config_omits_text_tokens(self, tiny_dataset):
        config = BIGCityConfig.tiny()
        config.use_prompts = False
        model = BIGCity.from_dataset(tiny_dataset, config=config)
        sequence = model.sequence_from_trajectory(tiny_dataset.trajectories[0])
        prompt = model.prompt_builder.next_hop(sequence)
        rows, task_positions, span = model._assemble_prompt(prompt, model.tokenizer.encode_sequence(prompt.sequence))
        assert span[0] == 0  # no instruction prefix
        assert task_positions == [len(prompt.sequence)]

    def test_traffic_normalisation_roundtrip(self, untrained_model):
        values = np.array([[30.0, 2.0, 1.0], [60.0, 0.0, 5.0]])
        restored = untrained_model.denormalise_traffic(untrained_model.normalise_traffic(values))
        assert np.allclose(restored, values)


class TestBIGCityInference:
    def test_predict_next_hop_returns_segment_ids(self, trained_model, tiny_dataset):
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:4]
        rankings = trained_model.predict_next_hop(trajectories, top_k=5)
        assert len(rankings) == 4
        for ranking in rankings:
            assert len(ranking) == 5
            assert all(0 <= s < tiny_dataset.network.num_segments for s in ranking)

    def test_estimate_travel_time_positive(self, trained_model, tiny_dataset):
        estimates = trained_model.estimate_travel_time(tiny_dataset.test_trajectories[:4])
        assert estimates.shape == (4,)
        assert np.all(estimates >= 0)

    def test_classify_trajectory_user_range(self, trained_model, tiny_dataset):
        predictions = trained_model.classify_trajectory(tiny_dataset.test_trajectories[:4], target="user")
        assert np.all((predictions >= 0) & (predictions < trained_model.label_space.num_users))

    def test_classification_scores_sum_to_one(self, trained_model, tiny_dataset):
        scores = trained_model.classification_scores(tiny_dataset.test_trajectories[:3], target="pattern")
        assert scores.shape == (3, 2)
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_trajectory_embeddings_shape_and_determinism(self, trained_model, tiny_dataset):
        trajectories = tiny_dataset.test_trajectories[:5]
        a = trained_model.trajectory_embeddings(trajectories)
        b = trained_model.trajectory_embeddings(trajectories)
        assert a.shape == (5, trained_model.config.d_model)
        assert np.allclose(a, b)

    def test_recover_trajectory_output_length(self, trained_model, tiny_dataset):
        trajectory = max(tiny_dataset.test_trajectories, key=len)
        kept = [0, len(trajectory) // 2, len(trajectory) - 1]
        recovered = trained_model.recover_trajectory(trajectory, kept)
        assert recovered.shape == (len(trajectory) - len(kept),)
        assert np.all((recovered >= 0) & (recovered < tiny_dataset.network.num_segments))

    def test_predict_traffic_state_shape(self, trained_model):
        prediction = trained_model.predict_traffic_state(segment_id=1, start_slice=4, history=4, horizon=3)
        assert prediction.shape == (3, 3)

    def test_impute_traffic_state_shape(self, trained_model):
        imputed = trained_model.impute_traffic_state(2, 4, 8, [1, 5], traffic_override=None)
        assert imputed.shape == (2, 3)

    def test_parameter_summary_consistency(self, trained_model):
        summary = trained_model.parameter_summary()
        assert summary["trainable"] <= summary["total"]
        assert summary["backbone_trainable"] <= summary["backbone_total"]

    def test_model_without_traffic_states(self, tiny_dataset_no_traffic):
        model = BIGCity.from_dataset(tiny_dataset_no_traffic, config=BIGCityConfig.tiny())
        trajectory = tiny_dataset_no_traffic.trajectories[0]
        prompt = model.prompt_builder.classification(model.sequence_from_trajectory(trajectory), target="pattern")
        loss, _ = model.prompt_loss([prompt])
        assert np.isfinite(loss.item())
        with pytest.raises(RuntimeError):
            model.sequence_from_traffic(0, 0, 4)
