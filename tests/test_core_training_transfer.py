"""Tests for the two-stage training procedure and cross-city transfer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.core.prompts import TaskType
from repro.core.training import (
    EpochLog,
    MaskedReconstructionTrainer,
    PromptTuningTrainer,
    TrainingConfig,
    train_bigcity,
)
from repro.core.transfer import transfer_backbone


@pytest.fixture()
def tiny_training_config():
    return TrainingConfig(
        stage1_epochs=1,
        stage2_epochs=1,
        batch_size=8,
        max_trajectories=12,
        traffic_sequences_per_epoch=3,
        seed=0,
    )


class TestTrainingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainingConfig(mask_ratio=0.0)

    def test_default_tasks_cover_both_modalities(self):
        tasks = TrainingConfig().tasks
        assert TaskType.NEXT_HOP in tasks
        assert TaskType.TRAFFIC_MULTI_STEP in tasks


class TestMaskedReconstruction:
    def test_prompt_pool_mixes_modalities(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        trainer = MaskedReconstructionTrainer(model, tiny_dataset, tiny_training_config)
        prompts = trainer.build_prompts()
        kinds = {p.sequence.kind for p in prompts}
        assert kinds == {"trajectory", "traffic_state"}
        assert all(p.task is TaskType.MASKED_RECONSTRUCTION for p in prompts)

    def test_training_reduces_loss(self, tiny_dataset, tiny_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        config = TrainingConfig(
            stage1_epochs=3, batch_size=8, max_trajectories=12, traffic_sequences_per_epoch=2, seed=0
        )
        logs = MaskedReconstructionTrainer(model, tiny_dataset, config).train()
        assert len(logs) == 3
        assert logs[-1].loss < logs[0].loss

    def test_backbone_refrozen_after_stage1(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        MaskedReconstructionTrainer(model, tiny_dataset, tiny_training_config).train()
        base_params = [
            p for name, p in model.backbone.llm.named_parameters() if "lora" not in name
        ]
        assert all(not p.requires_grad for p in base_params)
        lora_params = [p for name, p in model.backbone.llm.named_parameters() if "lora" in name]
        assert all(p.requires_grad for p in lora_params)

    def test_epoch_logs_record_time_and_breakdown(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        logs = MaskedReconstructionTrainer(model, tiny_dataset, tiny_training_config).train()
        assert isinstance(logs[0], EpochLog)
        assert logs[0].seconds > 0
        assert "clas" in logs[0].breakdown


class TestPromptTuning:
    def test_full_training_set_contains_requested_tasks(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        trainer = PromptTuningTrainer(model, tiny_dataset, tiny_training_config)
        tasks = {p.task for p in trainer.build_prompts()}
        assert TaskType.NEXT_HOP in tasks
        assert TaskType.TRAVEL_TIME in tasks
        assert TaskType.CLASSIFICATION in tasks
        assert TaskType.TRAFFIC_MULTI_STEP in tasks

    def test_task_subset_restricts_prompts(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        trainer = PromptTuningTrainer(
            model, tiny_dataset, tiny_training_config, tasks=(TaskType.TRAVEL_TIME,)
        )
        tasks = {p.task for p in trainer.build_prompts()}
        assert tasks == {TaskType.TRAVEL_TIME}

    def test_tokenizer_frozen_during_stage2(self, tiny_dataset, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        trainer = PromptTuningTrainer(model, tiny_dataset, tiny_training_config, tasks=(TaskType.CLASSIFICATION,))
        trainer.train(epochs=1)
        assert all(not p.requires_grad for p in model.tokenizer.parameters())
        assert any(p.requires_grad for p in model.heads.parameters())

    def test_next_hop_augmentation_adds_prompts(self, tiny_dataset, tiny_config):
        model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
        base = TrainingConfig(
            stage2_epochs=1, batch_size=8, max_trajectories=12, traffic_sequences_per_epoch=0,
            next_hop_augmentation=0, seed=0,
        )
        augmented = TrainingConfig(
            stage2_epochs=1, batch_size=8, max_trajectories=12, traffic_sequences_per_epoch=0,
            next_hop_augmentation=2, seed=0,
        )
        count_base = len(
            [p for p in PromptTuningTrainer(model, tiny_dataset, base, tasks=(TaskType.NEXT_HOP,)).build_prompts()]
        )
        count_augmented = len(
            [p for p in PromptTuningTrainer(model, tiny_dataset, augmented, tasks=(TaskType.NEXT_HOP,)).build_prompts()]
        )
        assert count_augmented > count_base

    def test_bj_like_dataset_uses_pattern_classification(self, tiny_dataset_no_traffic, tiny_config, tiny_training_config):
        model = BIGCity.from_dataset(tiny_dataset_no_traffic, config=tiny_config)
        trainer = PromptTuningTrainer(
            model, tiny_dataset_no_traffic, tiny_training_config, tasks=(TaskType.CLASSIFICATION,)
        )
        prompts = trainer.build_prompts()
        assert prompts
        assert all(p.metadata["target"] == "pattern" for p in prompts)

    def test_train_bigcity_end_to_end(self, tiny_dataset, tiny_config, tiny_training_config):
        model, logs = train_bigcity(tiny_dataset, tiny_config, tiny_training_config)
        assert logs["stage1"] and logs["stage2"]
        assert not model.training  # left in eval mode


class TestTransfer:
    def test_backbone_weights_are_copied(self, trained_model, tiny_dataset, tiny_training_config):
        transferred, logs = transfer_backbone(
            trained_model, tiny_dataset, training_config=tiny_training_config, finetune_epochs=1
        )
        assert logs
        source_state = trained_model.backbone.state_dict()
        target_state = transferred.backbone.state_dict()
        # Frozen base weights must be identical after transfer fine-tuning.
        base_keys = [k for k in source_state if "lora" not in k and "token_embedding" not in k]
        for key in base_keys[:10]:
            assert np.allclose(source_state[key], target_state[key])

    def test_transferred_model_predicts(self, trained_model, tiny_dataset, tiny_training_config):
        transferred, _ = transfer_backbone(
            trained_model, tiny_dataset, training_config=tiny_training_config, finetune_epochs=1
        )
        trajectories = tiny_dataset.test_trajectories[:3]
        assert transferred.estimate_travel_time(trajectories).shape == (3,)
