"""Shared fixtures: tiny road networks, datasets and models.

Heavy objects (datasets, trained models) are session-scoped so the whole
suite builds them once; they are intentionally tiny so the entire test run
stays in the minutes range on a CPU.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.core.training import MaskedReconstructionTrainer, PromptTuningTrainer, TrainingConfig
from repro.data.datasets import CityDataset, make_splits
from repro.data.synthetic import SyntheticCity, SyntheticCityConfig
from repro.roadnet.generators import grid_city


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_network():
    """A small but non-trivial grid road network (strongly connected)."""
    return grid_city(rows=4, cols=4, block_km=0.5, seed=0)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_network) -> CityDataset:
    """A miniature city dataset with trajectories and traffic states."""
    config = SyntheticCityConfig(
        num_users=8,
        trajectories_per_user=6,
        num_days=1,
        min_route_hops=4,
        max_route_hops=12,
        seed=0,
    )
    city = SyntheticCity(tiny_network, config)
    trajectories, traffic = city.simulate()
    splits = make_splits(len(trajectories), (0.6, 0.2, 0.2), seed=0)
    return CityDataset(
        name="tiny",
        network=tiny_network,
        trajectories=trajectories,
        traffic_states=traffic,
        splits=splits,
        time_axis=city.time_axis,
    )


@pytest.fixture(scope="session")
def tiny_dataset_no_traffic(tiny_dataset) -> CityDataset:
    """The same dataset but without dynamic features (BJ-like situation)."""
    return CityDataset(
        name="tiny_no_traffic",
        network=tiny_dataset.network,
        trajectories=tiny_dataset.trajectories,
        traffic_states=None,
        splits=tiny_dataset.splits,
        time_axis=tiny_dataset.time_axis,
    )


@pytest.fixture(scope="session")
def tiny_config() -> BIGCityConfig:
    return BIGCityConfig.tiny()


@pytest.fixture(scope="session")
def untrained_model(tiny_dataset, tiny_config) -> BIGCity:
    """A freshly initialised BIGCity model (no training)."""
    return BIGCity.from_dataset(tiny_dataset, config=tiny_config)


@pytest.fixture(scope="session")
def trained_model(tiny_dataset, tiny_config) -> BIGCity:
    """A BIGCity model after one very short pass of both training stages."""
    model = BIGCity.from_dataset(tiny_dataset, config=tiny_config)
    training = TrainingConfig(
        stage1_epochs=1,
        stage2_epochs=1,
        batch_size=8,
        max_trajectories=16,
        traffic_sequences_per_epoch=4,
        seed=0,
    )
    MaskedReconstructionTrainer(model, tiny_dataset, training).train()
    PromptTuningTrainer(model, tiny_dataset, training).train()
    model.eval()
    return model
