"""Smoke tests for the experiment runners (tiny profile, single baseline).

The full regeneration of every table/figure lives in ``benchmarks/``; these
tests only verify that the runners execute end to end and produce tables of
the right structure, using the ``smoke`` profile and a minimal baseline set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import (
    BIGCITY_NAME,
    run_table2_dataset_statistics,
    run_table3_trajectory_tasks,
    run_table4_recovery,
    run_table5_traffic_state,
)
from repro.eval.harness import SMOKE_PROFILE, ExperimentContext


@pytest.fixture(scope="module")
def smoke_context():
    return ExperimentContext(SMOKE_PROFILE)


class TestExperimentRunners:
    def test_table2_lists_all_datasets(self, smoke_context):
        table = run_table2_dataset_statistics(smoke_context, dataset_names=("xa_like",))
        assert "xa_like" in table.rows
        assert table.rows["xa_like"]["road_segments"] > 0

    def test_table3_structure(self, smoke_context):
        tables = run_table3_trajectory_tasks(smoke_context, "xa_like", baselines=["traj2vec"])
        assert set(tables) == {"travel_time", "classification", "next_hop", "similarity"}
        for table in tables.values():
            assert set(table.rows) == {"traj2vec", BIGCITY_NAME}
            for row in table.rows.values():
                assert all(np.isfinite(value) for value in row.values())

    def test_table4_structure(self, smoke_context):
        table = run_table4_recovery(smoke_context, "xa_like", mask_ratios=(0.85,), baselines=["linear_hmm"])
        assert set(table.rows) == {"linear_hmm", BIGCITY_NAME}
        assert "acc@85" in table.rows[BIGCITY_NAME]

    def test_table5_structure(self, smoke_context):
        tables = run_table5_traffic_state(smoke_context, "xa_like", baselines=["dcrnn"])
        assert set(tables) == {"one_step", "multi_step", "imputation"}
        for table in tables.values():
            assert set(table.rows) == {"dcrnn", BIGCITY_NAME}
            for row in table.rows.values():
                assert row["mae"] >= 0
