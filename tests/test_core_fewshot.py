"""Tests for few-shot / zero-shot cross-city adaptation (`repro.core.fewshot`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fewshot import (
    AdaptationResult,
    evaluate_adaptation,
    few_shot_transfer,
    limit_training_trajectories,
    zero_shot_transfer,
)
from repro.core.training import TrainingConfig


class TestLimitTrainingTrajectories:
    def test_limits_train_split_only(self, tiny_dataset):
        limited = limit_training_trajectories(tiny_dataset, shots=5, seed=0)
        assert len(limited.splits.train) == 5
        assert limited.splits.validation == tiny_dataset.splits.validation
        assert limited.splits.test == tiny_dataset.splits.test

    def test_selected_indices_come_from_original_train_split(self, tiny_dataset):
        limited = limit_training_trajectories(tiny_dataset, shots=6, seed=1)
        assert set(limited.splits.train) <= set(tiny_dataset.splits.train)

    def test_more_shots_than_available_returns_original(self, tiny_dataset):
        limited = limit_training_trajectories(tiny_dataset, shots=10_000)
        assert limited.splits.train == tiny_dataset.splits.train

    def test_balanced_selection_spreads_users(self, tiny_dataset):
        shots = 6
        limited = limit_training_trajectories(tiny_dataset, shots=shots, seed=0, balance_users=True)
        users = {tiny_dataset.trajectories[i].user_id for i in limited.splits.train}
        # with round-robin selection the number of distinct users is as large
        # as possible given the shot count
        available_users = {tiny_dataset.trajectories[i].user_id for i in tiny_dataset.splits.train}
        assert len(users) == min(shots, len(available_users))

    def test_unbalanced_selection_is_reproducible(self, tiny_dataset):
        first = limit_training_trajectories(tiny_dataset, shots=4, seed=3, balance_users=False)
        second = limit_training_trajectories(tiny_dataset, shots=4, seed=3, balance_users=False)
        assert first.splits.train == second.splits.train

    def test_invalid_shots_raise(self, tiny_dataset):
        with pytest.raises(ValueError):
            limit_training_trajectories(tiny_dataset, shots=0)

    def test_original_dataset_untouched(self, tiny_dataset):
        before = tuple(tiny_dataset.splits.train)
        limit_training_trajectories(tiny_dataset, shots=3)
        assert tiny_dataset.splits.train == before


@pytest.fixture(scope="module")
def adaptation(trained_model, tiny_dataset):
    """A few-shot adaptation of the trained model onto (a limited copy of) the tiny city."""
    config = TrainingConfig(
        stage2_epochs=1,
        batch_size=4,
        max_trajectories=8,
        traffic_sequences_per_epoch=2,
        seed=0,
    )
    return few_shot_transfer(
        trained_model,
        tiny_dataset,
        shots=6,
        finetune_epochs=1,
        training_config=config,
    )


class TestFewShotTransfer:
    def test_returns_adaptation_result(self, adaptation, tiny_dataset):
        assert isinstance(adaptation, AdaptationResult)
        assert adaptation.shots == 6
        assert adaptation.dataset_name == tiny_dataset.name
        assert len(adaptation.finetune_logs) == 1

    def test_backbone_weights_are_transferred(self, adaptation, trained_model):
        source_state = trained_model.backbone.state_dict()
        target_state = adaptation.model.backbone.state_dict()
        shared = [key for key in source_state if key in target_state]
        assert shared
        # at least the frozen base weights are bit-identical after transfer
        identical = sum(
            1 for key in shared if np.allclose(source_state[key], target_state[key])
        )
        assert identical >= len(shared) // 2

    def test_evaluate_adaptation_reports_core_metrics(self, adaptation, tiny_dataset):
        report = evaluate_adaptation(adaptation, tiny_dataset, max_eval_samples=6)
        assert {"shots", "tte_mae", "tte_rmse", "next_acc", "next_mrr@5"} <= set(report)
        assert report["shots"] == 6.0
        assert report["tte_mae"] >= 0.0
        assert 0.0 <= report["next_acc"] <= 1.0


class TestZeroShotTransfer:
    def test_zero_shot_runs_without_finetuning(self, trained_model, tiny_dataset):
        result = zero_shot_transfer(trained_model, tiny_dataset)
        assert result.shots == 0
        assert result.finetune_logs == []
        # the transferred model can run inference on the target city
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:2]
        rankings = result.model.predict_next_hop(trajectories, top_k=3)
        assert len(rankings) == 2
        assert all(len(r) == 3 for r in rankings)
