"""Tests for temporal elements, trajectories and traffic states."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.timeutils import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    TIMESTAMP_FEATURE_DIM,
    TimeAxis,
    timestamp_features,
    timestamp_features_batch,
)
from repro.data.traffic_state import TRAFFIC_CHANNELS, TrafficStateSeries
from repro.data.trajectory import Trajectory, subsample_trajectory


class TestTimestampFeatures:
    def test_dimension(self):
        assert timestamp_features(0.0).shape == (TIMESTAMP_FEATURE_DIM,)

    def test_midnight_values(self):
        features = timestamp_features(0.0)
        assert features[0] == pytest.approx(0.0)  # fraction of the day
        assert features[2] == pytest.approx(1.0)  # cos(0)

    def test_weekend_flag(self):
        saturday = 5 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        tuesday = 1 * SECONDS_PER_DAY + 10 * SECONDS_PER_HOUR
        assert timestamp_features(saturday)[5] == 1.0
        assert timestamp_features(tuesday)[5] == 0.0

    def test_daily_periodicity(self):
        morning = 9 * SECONDS_PER_HOUR
        next_day = morning + SECONDS_PER_DAY
        a, b = timestamp_features(morning), timestamp_features(next_day)
        assert np.allclose(a[:3], b[:3])

    def test_batch_matches_single(self):
        times = [0.0, 3600.0, 7200.0]
        batch = timestamp_features_batch(times)
        assert np.allclose(batch[1], timestamp_features(3600.0))

    @given(st.floats(min_value=0, max_value=7 * SECONDS_PER_DAY, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_features_bounded(self, timestamp):
        features = timestamp_features(timestamp)
        assert np.all(features <= 1.0 + 1e-9) and np.all(features >= -1.0 - 1e-9)


class TestTimeAxis:
    def test_slice_of_and_start_are_inverse(self):
        axis = TimeAxis(num_slices=48, slice_seconds=1800.0)
        for index in (0, 10, 47):
            assert axis.slice_of(axis.slice_start(index)) == index

    def test_slice_of_clamps_out_of_range(self):
        axis = TimeAxis(num_slices=10)
        assert axis.slice_of(-100.0) == 0
        assert axis.slice_of(1e9) == 9

    def test_slice_start_out_of_range_raises(self):
        axis = TimeAxis(num_slices=10)
        with pytest.raises(IndexError):
            axis.slice_start(10)

    def test_total_seconds_and_contains(self):
        axis = TimeAxis(num_slices=4, slice_seconds=100.0, origin=50.0)
        assert axis.total_seconds == 400.0
        assert axis.contains(51.0) and not axis.contains(451.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TimeAxis(num_slices=0)
        with pytest.raises(ValueError):
            TimeAxis(num_slices=5, slice_seconds=0.0)

    def test_all_slice_features_shape(self):
        axis = TimeAxis(num_slices=6)
        assert axis.all_slice_features().shape == (6, TIMESTAMP_FEATURE_DIM)


class TestTrajectory:
    def _make(self, length=5):
        return Trajectory(0, 7, list(range(length)), [i * 30.0 for i in range(length)], label=1)

    def test_basic_properties(self):
        trajectory = self._make()
        assert len(trajectory) == 5
        assert trajectory.origin == 0 and trajectory.destination == 4
        assert trajectory.duration == pytest.approx(120.0)

    def test_travel_intervals(self):
        assert np.allclose(self._make().travel_intervals(), 30.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(0, 0, [1, 2], [0.0])

    def test_decreasing_timestamps_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(0, 0, [1, 2], [10.0, 5.0])

    def test_single_point_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(0, 0, [1], [0.0])

    def test_slice_preserves_metadata(self):
        trajectory = self._make()
        part = trajectory.slice(1, 4)
        assert part.segments == [1, 2, 3]
        assert part.user_id == 7 and part.label == 1

    def test_dict_roundtrip(self):
        trajectory = self._make()
        restored = Trajectory.from_dict(trajectory.to_dict())
        assert restored.segments == trajectory.segments
        assert restored.timestamps == trajectory.timestamps

    def test_subsample_keeps_endpoints_and_ratio(self, rng):
        trajectory = self._make(length=20)
        sparse, kept = subsample_trajectory(trajectory, keep_ratio=0.3, rng=rng)
        assert kept[0] == 0 and kept[-1] == 19
        assert len(sparse) == len(kept)
        assert 2 <= len(kept) <= 8

    def test_subsample_invalid_ratio(self):
        with pytest.raises(ValueError):
            subsample_trajectory(self._make(), keep_ratio=0.0)

    @given(st.integers(min_value=6, max_value=30), st.floats(min_value=0.05, max_value=0.9))
    @settings(max_examples=30, deadline=None)
    def test_subsample_indices_sorted_and_unique(self, length, keep_ratio):
        trajectory = Trajectory(0, 0, list(range(length)), [float(i) for i in range(length)])
        _, kept = subsample_trajectory(trajectory, keep_ratio, rng=np.random.default_rng(length))
        assert np.all(np.diff(kept) > 0)
        assert kept[0] == 0 and kept[-1] == length - 1


class TestTrafficState:
    def _make(self, segments=4, slices=10):
        axis = TimeAxis(num_slices=slices)
        values = np.random.default_rng(0).random((segments, slices, len(TRAFFIC_CHANNELS)))
        return TrafficStateSeries(values, axis)

    def test_shape_validation(self):
        axis = TimeAxis(num_slices=5)
        with pytest.raises(ValueError):
            TrafficStateSeries(np.zeros((3, 4, 3)), axis)
        with pytest.raises(ValueError):
            TrafficStateSeries(np.zeros((3, 5)), axis)

    def test_at_uses_containing_slice(self):
        series = self._make()
        timestamp = series.time_axis.slice_start(3) + 10.0
        assert np.allclose(series.at(1, timestamp), series.values[1, 3])

    def test_window_zero_pads_before_origin(self):
        series = self._make()
        window = series.window(0, slice_index=1, history=3)
        assert window.shape == (4 * len(TRAFFIC_CHANNELS),)
        assert np.allclose(window[: 2 * len(TRAFFIC_CHANNELS)], 0.0)

    def test_normalised_has_zero_mean_unit_std(self):
        series = self._make(segments=6, slices=20)
        normalised, mean, std = series.normalised()
        flat = normalised.values.reshape(-1, series.num_channels)
        assert np.allclose(flat.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(flat.std(axis=0), 1.0, atol=1e-9)

    def test_from_trajectories_counts_flows(self):
        axis = TimeAxis(num_slices=4, slice_seconds=100.0)
        trajectory = Trajectory(0, 0, [0, 1, 2], [0.0, 50.0, 150.0])
        series = TrafficStateSeries.from_trajectories([trajectory], num_segments=3, time_axis=axis)
        inflow = series.channel_index("inflow")
        outflow = series.channel_index("outflow")
        assert series.values[0, 0, inflow] == 1.0
        assert series.values[1, 0, inflow] == 1.0
        assert series.values[0, 0, outflow] == 1.0  # left segment 0 within slice 0
        assert series.values[1, 1, outflow] == 1.0  # left segment 1 during slice 1

    def test_from_trajectories_speed_uses_lengths(self):
        axis = TimeAxis(num_slices=2, slice_seconds=1000.0)
        trajectory = Trajectory(0, 0, [0, 1], [0.0, 100.0])
        lengths = np.array([1.0, 1.0])  # km
        series = TrafficStateSeries.from_trajectories(
            [trajectory], num_segments=2, time_axis=axis, segment_lengths=lengths
        )
        speed = series.channel_index("speed")
        assert series.values[0, 0, speed] == pytest.approx(36.0)  # 1km in 100s = 36 km/h

    def test_copy_is_independent(self):
        series = self._make()
        clone = series.copy()
        clone.values[0, 0, 0] = 123.0
        assert series.values[0, 0, 0] != 123.0
