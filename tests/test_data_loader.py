"""Tests for batching utilities (`repro.data.loader`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.loader import TrafficWindowSampler, TrajectoryLoader, collate_trajectories
from repro.data.trajectory import Trajectory


def _trajectory(trajectory_id: int, length: int, user_id: int = 0, label=None) -> Trajectory:
    return Trajectory(
        trajectory_id=trajectory_id,
        user_id=user_id,
        segments=list(range(length)),
        timestamps=[float(60 * i) for i in range(length)],
        label=label,
    )


class TestCollateTrajectories:
    def test_padding_and_mask(self):
        batch = collate_trajectories([_trajectory(0, 3), _trajectory(1, 5)])
        assert batch.batch_size == 2
        assert batch.max_length == 5
        assert batch.lengths.tolist() == [3, 5]
        # padded positions are masked and filled with the pad segment
        assert batch.padding_mask[0, 3:].all()
        assert not batch.padding_mask[1].any()
        assert (batch.segments[0, 3:] == 0).all()

    def test_labels_default_to_minus_one(self):
        batch = collate_trajectories([_trajectory(0, 3), _trajectory(1, 3, label=2)])
        assert batch.labels.tolist() == [-1, 2]

    def test_user_and_trajectory_ids_preserved(self):
        batch = collate_trajectories([_trajectory(7, 3, user_id=4), _trajectory(9, 4, user_id=1)])
        assert batch.user_ids.tolist() == [4, 1]
        assert batch.trajectory_ids.tolist() == [7, 9]

    def test_empty_batch_raises(self):
        with pytest.raises(ValueError):
            collate_trajectories([])

    def test_custom_pad_segment(self):
        batch = collate_trajectories([_trajectory(0, 2), _trajectory(1, 4)], pad_segment=99)
        assert (batch.segments[0, 2:] == 99).all()

    @given(lengths=st.lists(st.integers(min_value=2, max_value=12), min_size=1, max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_unpadded_content_round_trips(self, lengths):
        trajectories = [_trajectory(i, length) for i, length in enumerate(lengths)]
        batch = collate_trajectories(trajectories)
        for row, trajectory in enumerate(trajectories):
            length = len(trajectory)
            assert batch.segments[row, :length].tolist() == trajectory.segments
            np.testing.assert_allclose(batch.timestamps[row, :length], trajectory.timestamps)
            assert (~batch.padding_mask[row, :length]).all()


class TestTrajectoryLoader:
    def test_batches_cover_every_trajectory_once(self):
        trajectories = [_trajectory(i, 3) for i in range(10)]
        loader = TrajectoryLoader(trajectories, batch_size=3, shuffle=True, seed=0)
        seen = []
        for batch in loader:
            seen.extend(batch.trajectory_ids.tolist())
        assert sorted(seen) == list(range(10))

    def test_len_matches_iteration(self):
        trajectories = [_trajectory(i, 3) for i in range(10)]
        loader = TrajectoryLoader(trajectories, batch_size=4, shuffle=False)
        assert len(loader) == len(list(loader))

    def test_drop_last(self):
        trajectories = [_trajectory(i, 3) for i in range(10)]
        loader = TrajectoryLoader(trajectories, batch_size=4, drop_last=True, shuffle=False)
        batches = list(loader)
        assert all(batch.batch_size == 4 for batch in batches)
        assert len(batches) == 2

    def test_invalid_batch_size_raises(self):
        with pytest.raises(ValueError):
            TrajectoryLoader([_trajectory(0, 3)], batch_size=0)

    def test_shuffling_is_seeded(self):
        trajectories = [_trajectory(i, 3) for i in range(12)]
        first = [b.trajectory_ids.tolist() for b in TrajectoryLoader(trajectories, batch_size=4, seed=5)]
        second = [b.trajectory_ids.tolist() for b in TrajectoryLoader(trajectories, batch_size=4, seed=5)]
        assert first == second


class TestTrafficWindowSampler:
    def test_windows_have_requested_shapes(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2)
        window = sampler.window(segment_id=0, start_slice=0)
        assert window.history.shape[0] == 4
        assert window.target.shape[0] == 2

    def test_train_and_test_ranges_do_not_overlap(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2)
        train_range = sampler.valid_start_range("train")
        test_range = sampler.valid_start_range("test")
        assert train_range[1] <= test_range[0]

    def test_unknown_split_raises(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2)
        with pytest.raises(ValueError):
            sampler.valid_start_range("holdout")

    def test_sample_returns_requested_count(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2)
        windows = sampler.sample(8, split="train")
        assert len(windows) == 8

    def test_window_longer_than_axis_raises(self, tiny_dataset):
        slices = tiny_dataset.traffic_states.num_slices
        with pytest.raises(ValueError):
            TrafficWindowSampler(tiny_dataset.traffic_states, history=slices, horizon=slices)

    def test_invalid_history_raises(self, tiny_dataset):
        with pytest.raises(ValueError):
            TrafficWindowSampler(tiny_dataset.traffic_states, history=0, horizon=1)
