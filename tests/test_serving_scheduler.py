"""Serving equality and scheduler behaviour (`repro.serving`).

The load-bearing claim of the serving layer: for a fixed request trace,
continuous-batched execution returns **bit-for-bit** what serial
per-request execution returns, while actually folding compatible requests
into shared batches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    AdmissionQueue,
    AdmissionTimeout,
    LoadGenConfig,
    ModelPool,
    NextHopRequest,
    QueueClosed,
    QueueFull,
    RecoveryRequest,
    ResultHandle,
    ServingConfig,
    ServingService,
    build_request_trace,
    execute_request,
    results_equal,
    run_serial_trace,
)
from repro.serving.scheduler import run_tick

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def trace(tiny_dataset):
    """A fixed mixed-task request trace (next-hop heavy, all four kinds)."""
    return build_request_trace(tiny_dataset, LoadGenConfig(num_requests=20, seed=7, steps=2))


class TestServingEquality:
    def test_batched_results_equal_serial_bit_for_bit(self, trained_model, trace):
        serial = run_serial_trace(trained_model, trace)

        service = ServingService(ModelPool([trained_model]), ServingConfig(max_batch_size=6))
        service.start()
        try:
            # submit the whole trace as a backlog so batches actually fold
            handles = [service.submit(request) for request in trace]
            batched = [handle.result(timeout=30.0) for handle in handles]
        finally:
            service.stop()

        assert len(batched) == len(serial)
        for index, (serial_result, batched_result) in enumerate(zip(serial, batched)):
            assert results_equal(serial_result, batched_result), (index, trace[index])
        # the scheduler must have folded requests into real batches, not
        # degenerated into serial batch-of-one ticks
        summary = service.metrics.summary()
        assert summary["batch_occupancy_max"] > 1.0, summary
        assert summary["requests"] == float(len(trace))

    def test_tick_folds_compatible_next_hops_into_one_model_call(self, trained_model, tiny_dataset):
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 4][:4]
        handles = [
            ResultHandle(request=NextHopRequest(trajectory=t, steps=2)) for t in trajectories
        ]
        tick = run_tick(trained_model, handles)
        assert tick.batch_size == 4
        assert tick.batched_requests == 4
        assert tick.model_calls == 1  # ONE rollout_next_hops_batch call
        for handle, trajectory in zip(handles, trajectories):
            expected = trained_model.rollout_next_hops(trajectory, steps=2)
            np.testing.assert_array_equal(np.asarray(handle.result(timeout=1.0)), expected)

    def test_mixed_tick_answers_every_handle(self, trained_model, trace):
        handles = [ResultHandle(request=request) for request in trace[:8]]
        tick = run_tick(trained_model, handles)
        assert all(handle.done() for handle in handles)
        assert tick.batch_size == 8
        for handle in handles:
            expected = execute_request(trained_model, handle.request)
            assert results_equal(handle.result(timeout=1.0), expected)

    def test_failed_request_is_reported_not_wedged(self, trained_model, tiny_dataset):
        good = [t for t in tiny_dataset.test_trajectories if len(t) >= 4][0]
        handles = [
            ResultHandle(request=NextHopRequest(trajectory=good, steps=2)),
            # recovery with no kept indices at all raises inside the model;
            # the error must land on this handle only.
            ResultHandle(request=RecoveryRequest(trajectory=good, kept_indices=())),
        ]
        run_tick(trained_model, handles)
        assert all(handle.done() for handle in handles)
        np.testing.assert_array_equal(
            np.asarray(handles[0].result(timeout=1.0)),
            trained_model.rollout_next_hops(good, steps=2),
        )
        with pytest.raises(Exception):
            handles[1].result(timeout=1.0)


class TestAdmissionQueue:
    def test_reject_policy_raises_at_capacity(self):
        queue = AdmissionQueue(capacity=2, policy="reject")
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFull):
            queue.put("c")
        assert queue.depth() == 2

    def test_block_policy_times_out(self):
        queue = AdmissionQueue(capacity=1, policy="block")
        queue.put("a")
        with pytest.raises(AdmissionTimeout):
            queue.put("b", timeout_s=0.01)

    def test_take_batch_fifo_and_bounded(self):
        queue = AdmissionQueue(capacity=8)
        for item in range(5):
            queue.put(item)
        assert queue.take_batch(3, timeout_s=0.0) == [0, 1, 2]
        assert queue.take_batch(3, timeout_s=0.0) == [3, 4]
        assert queue.take_batch(3, timeout_s=0.0) == []

    def test_put_after_close_raises(self):
        queue = AdmissionQueue(capacity=2)
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put("a")

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            AdmissionQueue(capacity=0)
        with pytest.raises(ValueError):
            AdmissionQueue(policy="drop-newest")


class TestServiceLifecycle:
    def test_handle_times_out_before_completion(self, trace):
        handle = ResultHandle(request=trace[0])
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.01)
        assert not handle.done()

    def test_submit_after_stop_is_rejected(self, trained_model, trace):
        service = ServingService(ModelPool([trained_model]))
        service.start()
        service.stop()
        with pytest.raises(QueueClosed):
            service.submit(trace[0])

    def test_context_manager_serves_and_drains(self, trained_model, trace):
        with ServingService(ModelPool([trained_model]), ServingConfig(max_batch_size=4)) as service:
            handles = [service.submit(request) for request in trace[:6]]
        # stop() drains: every handle completed even though we never waited
        assert all(handle.done() for handle in handles)
        for handle, request in zip(handles, trace[:6]):
            assert results_equal(handle.result(timeout=0.0), execute_request(trained_model, request))

    def test_double_start_rejected(self, trained_model):
        service = ServingService(ModelPool([trained_model]))
        service.start()
        try:
            with pytest.raises(RuntimeError):
                service.start()
        finally:
            service.stop()
