"""Tests for LoRA adapters, optimisers, schedulers and loss functions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (
    Adam,
    AdamW,
    CosineAnnealingLR,
    GPT2Config,
    GPT2Model,
    Linear,
    LoRALinear,
    SGD,
    StepLR,
    attach_lora,
    binary_cross_entropy_with_logits,
    cross_entropy,
    huber_loss,
    info_nce,
    lora_parameters,
    mae_loss,
    mark_only_lora_trainable,
    mse_loss,
)
from repro.nn.losses import masked_mse_loss
from repro.nn.module import Parameter
from repro.nn.optim import clip_grad_norm
from repro.nn.tensor import Tensor


class TestLoRA:
    def test_wrapped_layer_starts_identical_to_base(self):
        base = Linear(6, 4, rng=np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).standard_normal((3, 6)))
        expected = base(x).data.copy()
        wrapped = LoRALinear(base, rank=2)
        assert np.allclose(wrapped(x).data, expected)

    def test_base_is_frozen_and_lora_trainable(self):
        wrapped = LoRALinear(Linear(6, 4), rank=2)
        assert not wrapped.base.weight.requires_grad
        assert wrapped.lora_a.requires_grad and wrapped.lora_b.requires_grad

    def test_training_changes_output_through_lora_only(self):
        wrapped = LoRALinear(Linear(4, 2, rng=np.random.default_rng(0)), rank=2)
        x = Tensor(np.random.default_rng(1).standard_normal((8, 4)))
        target = np.random.default_rng(2).standard_normal((8, 2))
        base_weight = wrapped.base.weight.data.copy()
        optimizer = Adam(wrapped.trainable_parameters(), lr=1e-2)
        for _ in range(30):
            optimizer.zero_grad()
            loss = mse_loss(wrapped(x), target)
            loss.backward()
            optimizer.step()
        assert np.allclose(wrapped.base.weight.data, base_weight)
        assert not np.allclose(wrapped.lora_b.data, 0.0)

    def test_merged_weight_matches_forward(self):
        wrapped = LoRALinear(Linear(4, 3, rng=np.random.default_rng(0)), rank=2)
        wrapped.lora_b.data = np.random.default_rng(1).standard_normal(wrapped.lora_b.shape)
        x = np.random.default_rng(2).standard_normal((5, 4))
        merged = x @ wrapped.merged_weight().T + wrapped.base.bias.data
        assert np.allclose(wrapped(Tensor(x)).data, merged, atol=1e-9)

    def test_invalid_rank_rejected(self):
        with pytest.raises(ValueError):
            LoRALinear(Linear(4, 4), rank=0)

    def test_attach_lora_wraps_attention_and_ffn(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=2, num_heads=2, seed=0))
        wrapped = attach_lora(model, rank=2)
        # q/k/v + fc_in/fc_out per block, 2 blocks
        assert len(wrapped) == 10
        assert all(isinstance(m, LoRALinear) for m in [model.blocks[0].attn.q_proj, model.blocks[1].mlp.fc_in])

    def test_attach_lora_coverage_limits_blocks(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=4, num_heads=2, seed=0))
        wrapped = attach_lora(model, rank=2, coverage=0.5)
        assert len(wrapped) == 10  # only 2 of 4 blocks adapted
        assert isinstance(model.blocks[3].attn.q_proj, LoRALinear)
        assert not isinstance(model.blocks[0].attn.q_proj, LoRALinear)

    def test_attach_lora_is_idempotent(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=1, num_heads=2, seed=0))
        attach_lora(model, rank=2)
        assert attach_lora(model, rank=2) == []

    def test_mark_only_lora_trainable(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=2, num_heads=2, vocab_size=11, seed=0))
        attach_lora(model, rank=2)
        trainable, total = mark_only_lora_trainable(model)
        assert 0 < trainable < total
        assert all("lora" in name for name, p in model.named_parameters() if p.requires_grad)

    def test_lora_parameters_helper_finds_all(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=2, num_heads=2, seed=0))
        names = attach_lora(model, rank=2)
        assert len(lora_parameters(model)) == 2 * len(names)

    def test_coverage_out_of_range_rejected(self):
        model = GPT2Model(GPT2Config(d_model=16, num_layers=1, num_heads=2, seed=0))
        with pytest.raises(ValueError):
            attach_lora(model, coverage=0.0)


class TestOptimisers:
    def _quadratic_problem(self):
        target = np.array([1.0, -2.0, 0.5])
        param = Parameter(np.zeros(3))
        return param, target

    @pytest.mark.parametrize("optimizer_cls, lr", [(SGD, 0.1), (Adam, 0.1), (AdamW, 0.1)])
    def test_converges_on_quadratic(self, optimizer_cls, lr):
        param, target = self._quadratic_problem()
        optimizer = optimizer_cls([param], lr=lr)
        for _ in range(200):
            optimizer.zero_grad()
            loss = mse_loss(param, target)
            loss.backward()
            optimizer.step()
        assert np.allclose(param.data, target, atol=1e-2)

    def test_sgd_momentum_accelerates(self):
        param_plain, target = self._quadratic_problem()
        param_momentum = Parameter(np.zeros(3))
        plain = SGD([param_plain], lr=0.05)
        momentum = SGD([param_momentum], lr=0.05, momentum=0.9)
        for _ in range(30):
            for optimizer, param in ((plain, param_plain), (momentum, param_momentum)):
                optimizer.zero_grad()
                loss = mse_loss(param, target)
                loss.backward()
                optimizer.step()
        assert mse_loss(Tensor(param_momentum.data), target).item() < mse_loss(Tensor(param_plain.data), target).item()

    def test_frozen_parameters_are_not_updated(self):
        param = Parameter(np.ones(3))
        param.requires_grad = False
        other = Parameter(np.ones(3))
        optimizer = Adam([param, other], lr=0.1)
        optimizer.zero_grad()
        loss = mse_loss(other, np.zeros(3))
        loss.backward()
        param.grad = np.ones(3)  # even with a stale grad, frozen params stay put
        optimizer.step()
        assert np.allclose(param.data, 1.0)

    def test_weight_decay_shrinks_parameters(self):
        param = Parameter(np.full(3, 10.0))
        optimizer = AdamW([param], lr=0.1, weight_decay=0.1)
        for _ in range(50):
            optimizer.zero_grad()
            loss = (Tensor(np.zeros(3)) * param).sum()  # zero gradient signal
            param.grad = np.zeros(3)
            optimizer.step()
        assert np.all(np.abs(param.data) < 10.0)

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            Adam([], lr=0.1)

    def test_invalid_learning_rate_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(2))], lr=0.0)

    def test_step_lr_schedule(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=1.0)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        learning_rates = []
        for _ in range(4):
            scheduler.step()
            learning_rates.append(optimizer.lr)
        assert learning_rates == [1.0, 0.5, 0.5, 0.25]

    def test_cosine_schedule_reaches_min(self):
        param = Parameter(np.zeros(2))
        optimizer = SGD([param], lr=1.0)
        scheduler = CosineAnnealingLR(optimizer, total_epochs=10, min_lr=0.1)
        for _ in range(10):
            scheduler.step()
        assert optimizer.lr == pytest.approx(0.1, abs=1e-9)

    def test_clip_grad_norm_scales_down(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_grad_norm_no_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(3))], 1.0) == 0.0


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = np.array([[2.0, 1.0, 0.1]])
        manual = -np.log(np.exp(2.0) / np.exp([2.0, 1.0, 0.1]).sum())
        assert cross_entropy(Tensor(logits), np.array([0])).item() == pytest.approx(manual)

    def test_cross_entropy_batched_sequence(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((2, 5, 7)))
        targets = np.random.default_rng(1).integers(0, 7, size=(2, 5))
        loss = cross_entropy(logits, targets)
        assert np.isfinite(loss.item())

    def test_cross_entropy_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(np.array([[0.2, -0.3, 0.5]]), requires_grad=True)
        cross_entropy(logits, np.array([2])).backward()
        softmax = np.exp(logits.data) / np.exp(logits.data).sum()
        expected = softmax.copy()
        expected[0, 2] -= 1.0
        assert np.allclose(logits.grad, expected, atol=1e-9)

    def test_mse_and_mae(self):
        prediction = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(prediction, np.array([0.0, 0.0])).item() == pytest.approx(2.5)
        assert mae_loss(prediction, np.array([0.0, 0.0])).item() == pytest.approx(1.5)

    def test_huber_is_quadratic_then_linear(self):
        small = huber_loss(Tensor(np.array([0.5])), np.array([0.0]), delta=1.0).item()
        large = huber_loss(Tensor(np.array([10.0])), np.array([0.0]), delta=1.0).item()
        assert small == pytest.approx(0.125)
        assert large == pytest.approx(10.0 - 0.5)

    def test_bce_with_logits_matches_formula(self):
        logits = np.array([0.3, -1.2])
        targets = np.array([1.0, 0.0])
        probabilities = 1 / (1 + np.exp(-logits))
        manual = -(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)).mean()
        assert binary_cross_entropy_with_logits(Tensor(logits), targets).item() == pytest.approx(manual)

    def test_info_nce_prefers_aligned_pairs(self):
        rng = np.random.default_rng(0)
        anchor = Tensor(rng.standard_normal((6, 8)))
        aligned = info_nce(anchor, anchor * 1.0).item()
        shuffled = info_nce(anchor, Tensor(rng.standard_normal((6, 8)))).item()
        assert aligned < shuffled

    def test_info_nce_shape_mismatch(self):
        with pytest.raises(ValueError):
            info_nce(Tensor(np.zeros((3, 4))), Tensor(np.zeros((2, 4))))

    def test_masked_mse_only_counts_masked_cells(self):
        prediction = Tensor(np.zeros((2, 2)))
        target = np.array([[1.0, 100.0], [1.0, 100.0]])
        mask = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert masked_mse_loss(prediction, target, mask).item() == pytest.approx(1.0)

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.zeros(2)), np.zeros(2), reduction="median")

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_cross_entropy_lower_bound(self, classes, seed):
        """Cross entropy is non-negative and at most log(C) for the uniform prediction."""
        rng = np.random.default_rng(seed)
        logits = Tensor(np.zeros((4, classes)))
        targets = rng.integers(0, classes, size=4)
        loss = cross_entropy(logits, targets).item()
        assert loss == pytest.approx(np.log(classes), abs=1e-9)
        sharp = Tensor(np.eye(classes)[targets] * 50.0)
        assert cross_entropy(sharp, targets).item() < loss
