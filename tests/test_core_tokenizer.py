"""Tests for the spatiotemporal tokenizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BIGCityConfig
from repro.core.st_unit import traffic_series_to_units, trajectory_to_units
from repro.core.tokenizer import SpatioTemporalTokenizer


@pytest.fixture(scope="module")
def tokenizer_config():
    return BIGCityConfig.tiny()


@pytest.fixture(scope="module")
def tokenizer(tiny_dataset, tokenizer_config):
    return SpatioTemporalTokenizer(
        network=tiny_dataset.network,
        time_axis=tiny_dataset.time_axis,
        config=tokenizer_config,
        traffic_states=tiny_dataset.traffic_states,
    )


class TestConstruction:
    def test_has_both_encoders_with_traffic(self, tokenizer):
        assert tokenizer.has_static_encoder and tokenizer.has_dynamic_encoder
        assert tokenizer.fused_dim == 2 * tokenizer.config.hidden_dim

    def test_without_traffic_dynamic_encoder_is_dropped(self, tiny_dataset, tokenizer_config):
        tok = SpatioTemporalTokenizer(tiny_dataset.network, tiny_dataset.time_axis, tokenizer_config, None)
        assert tok.has_static_encoder and not tok.has_dynamic_encoder
        assert tok.fused_dim == tokenizer_config.hidden_dim

    def test_wo_static_config(self, tiny_dataset):
        config = BIGCityConfig.tiny()
        config.use_static_encoder = False
        tok = SpatioTemporalTokenizer(tiny_dataset.network, tiny_dataset.time_axis, config, tiny_dataset.traffic_states)
        assert not tok.has_static_encoder and tok.has_dynamic_encoder

    def test_both_encoders_disabled_rejected(self):
        with pytest.raises(ValueError):
            BIGCityConfig(use_static_encoder=False, use_dynamic_encoder=False)

    def test_wo_fusion_config(self, tiny_dataset):
        config = BIGCityConfig.tiny()
        config.use_fusion = False
        tok = SpatioTemporalTokenizer(tiny_dataset.network, tiny_dataset.time_axis, config, tiny_dataset.traffic_states)
        assert tok.fusion is None
        sequence = trajectory_to_units(tiny_dataset.trajectories[0], tiny_dataset.traffic_states)
        assert tok.encode_sequence(sequence).shape == (len(sequence), config.d_model)


class TestRepresentations:
    def test_static_representations_shape(self, tokenizer, tiny_dataset):
        static = tokenizer.static_representations()
        assert static.shape == (tiny_dataset.network.num_segments, tokenizer.config.hidden_dim)

    def test_static_representations_are_distinct_per_segment(self, tokenizer):
        static = tokenizer.static_representations().data
        # The road-ID embedding guarantees segments do not collapse to one vector.
        distances = np.linalg.norm(static - static.mean(axis=0), axis=1)
        assert np.median(distances) > 1e-3

    def test_dynamic_representations_depend_on_slice(self, tokenizer):
        early = tokenizer.dynamic_representations(5).data
        late = tokenizer.dynamic_representations(20).data
        assert early.shape == late.shape
        assert not np.allclose(early, late)

    def test_fused_cache_contains_requested_slices(self, tokenizer):
        fused = tokenizer.fused_representations([3, 7, 7, 9])
        assert set(fused) == {3, 7, 9}
        for tensor in fused.values():
            assert tensor.shape == (tokenizer.network.num_segments, tokenizer.fused_dim)


class TestEncoding:
    def test_trajectory_tokens_shape(self, tokenizer, tiny_dataset):
        sequence = trajectory_to_units(tiny_dataset.trajectories[0], tiny_dataset.traffic_states)
        tokens = tokenizer.encode_sequence(sequence)
        assert tokens.shape == (len(sequence), tokenizer.config.d_model)

    def test_traffic_tokens_shape(self, tokenizer, tiny_dataset):
        sequence = traffic_series_to_units(tiny_dataset.traffic_states, 1, 2, 8)
        assert tokenizer.encode_sequence(sequence).shape == (8, tokenizer.config.d_model)

    def test_time_feature_mask_changes_tokens(self, tokenizer, tiny_dataset):
        sequence = trajectory_to_units(tiny_dataset.trajectories[0], tiny_dataset.traffic_states)
        plain = tokenizer.encode_sequence(sequence).data
        mask = np.ones(len(sequence), dtype=bool)
        mask[0] = False
        hidden = tokenizer.encode_sequence(sequence, time_feature_mask=mask).data
        assert np.allclose(plain[0], hidden[0])
        assert not np.allclose(plain[1:], hidden[1:])

    def test_traffic_override_changes_tokens(self, tokenizer, tiny_dataset):
        sequence = traffic_series_to_units(tiny_dataset.traffic_states, 1, 2, 6)
        plain = tokenizer.encode_sequence(sequence).data
        override = tiny_dataset.traffic_states.values.copy()
        override[:, :, :] = override.mean()
        changed = tokenizer.encode_sequence(sequence, traffic_override=override).data
        assert not np.allclose(plain, changed)

    def test_encode_batch_matches_single(self, tokenizer, tiny_dataset):
        sequences = [
            trajectory_to_units(t, tiny_dataset.traffic_states) for t in tiny_dataset.trajectories[:3]
        ]
        batched = tokenizer.encode_batch(sequences)
        for sequence, tokens in zip(sequences, batched):
            alone = tokenizer.encode_sequence(sequence)
            assert np.allclose(tokens.data, alone.data, atol=1e-9)

    def test_gradients_reach_tokenizer_parameters(self, tokenizer, tiny_dataset):
        tokenizer.zero_grad()
        sequence = trajectory_to_units(tiny_dataset.trajectories[1], tiny_dataset.traffic_states)
        tokenizer.encode_sequence(sequence).sum().backward()
        grads = [p.grad for p in tokenizer.parameters() if p.grad is not None]
        assert grads, "no gradient reached the tokenizer"

    def test_tokens_differ_across_segments(self, tokenizer, tiny_dataset):
        a = traffic_series_to_units(tiny_dataset.traffic_states, 0, 0, 4)
        b = traffic_series_to_units(tiny_dataset.traffic_states, 5, 0, 4)
        assert not np.allclose(tokenizer.encode_sequence(a).data, tokenizer.encode_sequence(b).data)
