"""Tests of the engine-wide compute-dtype policy.

Covers the policy plumbing (construction-time downcasts, restoration), the
float32 flow through parameters/activations/gradients on both engine paths,
finite-difference gradient checks under float32 (looser tolerances than the
float64 checks in ``test_nn_functional.py``), the differentiable
``Tensor.astype`` and the optimiser's dtype discipline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    GPT2Config,
    GPT2Model,
    LayerNorm,
    Linear,
    MultiHeadAttention,
    Tensor,
    compute_dtype,
    fused_kernels,
    get_compute_dtype,
    losses,
    set_compute_dtype,
)
from repro.nn import functional as F

#: Float32 finite differences: wider step and looser tolerances than the
#: float64 grad checks (eps**2 rounding sits near 1e-3 relative).
FD_EPS = 1e-2
FD_RTOL = 5e-2
FD_ATOL = 5e-3


def finite_difference(fn, x: np.ndarray, eps: float = FD_EPS) -> np.ndarray:
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = fn()
        flat[i] = original - eps
        lower = fn()
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2 * eps)
    return grad


class TestPolicyPlumbing:
    def test_default_policy_is_float64(self):
        assert get_compute_dtype() == np.float64
        assert Tensor([1.0, 2.0]).dtype == np.float64

    def test_context_manager_switches_and_restores(self):
        with compute_dtype("float32"):
            assert get_compute_dtype() == np.float32
            assert Tensor([1.0]).dtype == np.float32
            with compute_dtype("float64"):
                assert Tensor([1.0]).dtype == np.float64
            assert get_compute_dtype() == np.float32
        assert get_compute_dtype() == np.float64

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with compute_dtype("float32"):
                raise RuntimeError("boom")
        assert get_compute_dtype() == np.float64

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            set_compute_dtype("float16")
        with pytest.raises(ValueError):
            set_compute_dtype(np.int64)

    def test_downcast_only(self):
        # float64 input downcasts under a float32 policy...
        with compute_dtype("float32"):
            assert Tensor(np.zeros(3, dtype=np.float64)).dtype == np.float32
        # ...but a float32 input is never upcast under the default policy.
        assert Tensor(np.zeros(3, dtype=np.float32)).dtype == np.float32
        # explicit dtype requests always win.
        with compute_dtype("float32"):
            assert Tensor(np.zeros(3), dtype=np.float64).dtype == np.float64

    def test_constructors_follow_policy(self):
        with compute_dtype("float32"):
            assert Tensor.zeros((2, 2)).dtype == np.float32
            assert Tensor.ones((2,)).dtype == np.float32
            assert Tensor.arange(4).dtype == np.float32
            assert Tensor.randn(3, rng=np.random.default_rng(0)).dtype == np.float32
        assert Tensor.zeros((2, 2)).dtype == np.float64

    def test_float32_sum_accumulates_in_float64(self):
        # 1 + 2**24 ulps: a naive float32 running sum would stall.
        with compute_dtype("float32"):
            big = Tensor(np.full(2**12, np.float32(1.0)) * np.float32(2048.0))
            tiny = Tensor(np.full(2**12, np.float32(2.0 ** -13)))
            total = Tensor.concat([big, tiny], axis=0).sum()
            assert total.dtype == np.float32
            expected = 2**12 * 2048.0 + 2**12 * 2.0 ** -13
            assert float(total.item()) == pytest.approx(expected, rel=1e-7)


class TestFloat32Flow:
    @pytest.mark.parametrize("fused", [True, False])
    def test_gpt2_step_stays_float32(self, fused):
        with compute_dtype("float32"), fused_kernels(fused):
            model = GPT2Model(GPT2Config(d_model=32, num_layers=2, num_heads=4, seed=0))
            model.train()
            assert all(p.dtype == np.float32 for p in model.parameters())
            rng = np.random.default_rng(0)
            x = Tensor(rng.standard_normal((2, 12, 32)), requires_grad=True)
            hidden = model(x)
            assert hidden.dtype == np.float32
            loss = losses.cross_entropy(hidden.reshape(-1, 32), rng.integers(0, 32, 24))
            assert loss.dtype == np.float32
            loss.backward()
            assert x.grad.dtype == np.float32
            grads = [p.grad for p in model.parameters() if p.grad is not None]
            assert grads and all(g.dtype == np.float32 for g in grads)

    def test_attention_with_padding_mask_float32(self):
        with compute_dtype("float32"):
            attention = MultiHeadAttention(16, 4, causal=True, rng=np.random.default_rng(1))
            attention.eval()
            x = Tensor(np.random.default_rng(2).standard_normal((2, 6, 16)))
            mask = np.zeros((2, 6), dtype=bool)
            mask[1, 4:] = True
            out = attention(x, padding_mask=mask)
            assert out.dtype == np.float32

    def test_fused_and_composed_agree_in_float32(self):
        rng = np.random.default_rng(3)
        data = rng.standard_normal((2, 8, 16))
        with compute_dtype("float32"):
            model = GPT2Model(GPT2Config(d_model=16, num_layers=2, num_heads=4, seed=0))
            model.eval()
            with fused_kernels(True):
                fused = model(Tensor(data)).data.copy()
            with fused_kernels(False):
                composed = model(Tensor(data)).data.copy()
        assert fused.dtype == composed.dtype == np.float32
        np.testing.assert_allclose(fused, composed, rtol=1e-4, atol=1e-5)

    def test_adam_preserves_param_dtype_and_keeps_float64_moments(self):
        with compute_dtype("float32"):
            layer = Linear(4, 4, rng=np.random.default_rng(4))
            optimizer = Adam(layer.parameters(), lr=1e-2)
            x = Tensor(np.random.default_rng(5).standard_normal((8, 4)))
            loss = losses.mse_loss(layer(x), np.zeros((8, 4)))
            loss.backward()
            optimizer.step()
        assert all(p.dtype == np.float32 for p in layer.parameters())
        assert all(m.dtype == np.float64 for m in optimizer._m.values())
        assert all(v.dtype == np.float64 for v in optimizer._v.values())


class TestFloat32GradChecks:
    """Finite-difference checks of the fused kernels under the float32 policy."""

    def test_linear_layer_norm_gelu_chain(self):
        rng = np.random.default_rng(7)
        x_data = rng.standard_normal((3, 8))
        with compute_dtype("float32"):
            layer = Linear(8, 8, rng=np.random.default_rng(8))
            norm = LayerNorm(8)

            def loss_from(x_arr):
                x = Tensor(x_arr, requires_grad=True)
                out = F.gelu(norm(layer(x)))
                return x, (out * out).mean()

            x, loss = loss_from(x_data)
            loss.backward()
            analytic = x.grad.astype(np.float64)
            numeric = finite_difference(lambda: float(loss_from(x_data)[1].item()), x_data)
        np.testing.assert_allclose(analytic, numeric, rtol=FD_RTOL, atol=FD_ATOL)

    def test_cross_entropy(self):
        rng = np.random.default_rng(9)
        logits_data = rng.standard_normal((6, 5))
        targets = rng.integers(0, 5, 6)
        with compute_dtype("float32"):

            def loss_from(arr):
                logits = Tensor(arr, requires_grad=True)
                return logits, losses.cross_entropy(logits, targets)

            logits, loss = loss_from(logits_data)
            loss.backward()
            analytic = logits.grad.astype(np.float64)
            numeric = finite_difference(lambda: float(loss_from(logits_data)[1].item()), logits_data)
        np.testing.assert_allclose(analytic, numeric, rtol=FD_RTOL, atol=FD_ATOL)

    def test_causal_attention(self):
        rng = np.random.default_rng(10)
        q_data = rng.standard_normal((1, 2, 5, 4))
        with compute_dtype("float32"):
            k = Tensor(rng.standard_normal((1, 2, 5, 4)))
            v = Tensor(rng.standard_normal((1, 2, 5, 4)))

            def loss_from(arr):
                q = Tensor(arr, requires_grad=True)
                out = F.scaled_dot_product_attention(q, k, v, is_causal=True)
                return q, (out * out).sum()

            q, loss = loss_from(q_data)
            loss.backward()
            analytic = q.grad.astype(np.float64)
            numeric = finite_difference(lambda: float(loss_from(q_data)[1].item()), q_data)
        np.testing.assert_allclose(analytic, numeric, rtol=FD_RTOL, atol=FD_ATOL)


class TestDifferentiableAstype:
    def test_cast_keeps_tape(self):
        x = Tensor(np.array([1.0, -2.0, 3.0]), requires_grad=True)
        y = x.astype(np.float32)
        assert y.requires_grad
        (y * Tensor(np.array([2.0, 3.0, 4.0], dtype=np.float32))).sum().backward()
        assert x.grad.dtype == np.float64
        np.testing.assert_allclose(x.grad, [2.0, 3.0, 4.0])

    def test_upcast_grad_returns_in_source_dtype(self):
        with compute_dtype("float32"):
            x = Tensor(np.ones(4), requires_grad=True)
            assert x.dtype == np.float32
            y = x.astype(np.float64)
            # The explicit upcast must survive the downcast-only policy.
            assert y.dtype == np.float64
            (y * 3.0).sum().backward()
            assert x.grad.dtype == np.float32
            np.testing.assert_allclose(x.grad, 3.0)

    def test_integer_cast_detaches(self):
        x = Tensor(np.array([1.5, 2.5]), requires_grad=True)
        y = x.astype(np.int64)
        assert not y.requires_grad
        assert y.dtype == np.int64

    def test_same_dtype_cast_still_differentiable(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x.astype(np.float64)
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 1.0)
