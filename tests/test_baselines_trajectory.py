"""Tests for the trajectory representation baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.trajectory import (
    JCLRNT,
    JGRM,
    START,
    T2Vec,
    TRAJECTORY_BASELINES,
    Toast,
    Trajectory2Vec,
    TremBR,
    build_trajectory_baseline,
)


@pytest.fixture(scope="module", params=["traj2vec", "toast", "jgrm"])
def fitted_baseline(request, tiny_dataset):
    """A small fitted baseline of each architectural family (GRU / transformer / dual-view)."""
    baseline = build_trajectory_baseline(request.param, tiny_dataset, hidden_dim=16, seed=0)
    baseline.pretrain(epochs=1)
    baseline.fit_next_hop(epochs=1)
    baseline.fit_travel_time(epochs=1)
    baseline.fit_classifier("user", epochs=1)
    return baseline


class TestRegistry:
    def test_all_seven_baselines_registered(self):
        assert set(TRAJECTORY_BASELINES) == {
            "traj2vec",
            "t2vec",
            "trembr",
            "toast",
            "jclrnt",
            "start",
            "jgrm",
        }

    def test_unknown_name_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            build_trajectory_baseline("bert4traj", tiny_dataset)

    def test_builder_returns_correct_class(self, tiny_dataset):
        assert isinstance(build_trajectory_baseline("start", tiny_dataset, hidden_dim=16), START)
        assert isinstance(build_trajectory_baseline("trembr", tiny_dataset, hidden_dim=16), TremBR)


class TestPretraining:
    @pytest.mark.parametrize("name", ["traj2vec", "t2vec", "trembr", "jclrnt", "start"])
    def test_pretraining_loss_is_finite_and_decreases(self, tiny_dataset, name):
        baseline = build_trajectory_baseline(name, tiny_dataset, hidden_dim=16, seed=0)
        history = baseline.pretrain(epochs=2, batch_size=16)
        assert len(history) == 2
        assert all(np.isfinite(history))
        assert history[1] <= history[0] * 1.2  # allow small noise, forbid divergence

    def test_toast_skipgram_warm_start_changes_embeddings(self, tiny_dataset):
        baseline = Toast(tiny_dataset, hidden_dim=16, seed=0)
        before = baseline.segment_embedding.weight.data.copy()
        baseline._skipgram_pretrain(num_walks=10, walk_length=5)
        assert not np.allclose(before, baseline.segment_embedding.weight.data)

    def test_jgrm_uses_coordinate_view(self, tiny_dataset):
        baseline = JGRM(tiny_dataset, hidden_dim=16, seed=0)
        _, pooled, _ = baseline.encode(tiny_dataset.trajectories[:2])
        assert pooled.shape == (2, 16)


class TestTaskHeads:
    def test_predict_before_fit_raises(self, tiny_dataset):
        baseline = Trajectory2Vec(tiny_dataset, hidden_dim=16, seed=0)
        with pytest.raises(RuntimeError):
            baseline.predict_next_hop(tiny_dataset.trajectories[:2])
        with pytest.raises(RuntimeError):
            baseline.predict_travel_time(tiny_dataset.trajectories[:2])
        with pytest.raises(RuntimeError):
            baseline.predict_class(tiny_dataset.trajectories[:2])

    def test_next_hop_rankings_are_valid_segments(self, fitted_baseline, tiny_dataset):
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:4]
        rankings = fitted_baseline.predict_next_hop(trajectories, top_k=5)
        assert len(rankings) == 4
        for ranking in rankings:
            assert all(0 <= s < tiny_dataset.num_segments for s in ranking)

    def test_travel_time_predictions_nonnegative(self, fitted_baseline, tiny_dataset):
        predictions = fitted_baseline.predict_travel_time(tiny_dataset.test_trajectories[:4])
        assert predictions.shape == (4,)
        assert np.all(predictions >= 0)

    def test_classifier_predictions_in_range(self, fitted_baseline, tiny_dataset):
        predictions = fitted_baseline.predict_class(tiny_dataset.test_trajectories[:4])
        assert np.all((0 <= predictions) & (predictions < fitted_baseline.num_users))

    def test_class_scores_are_distributions(self, fitted_baseline, tiny_dataset):
        scores = fitted_baseline.class_scores(tiny_dataset.test_trajectories[:3])
        assert np.allclose(scores.sum(axis=1), 1.0)

    def test_embeddings_shape_and_determinism(self, fitted_baseline, tiny_dataset):
        trajectories = tiny_dataset.test_trajectories[:5]
        a = fitted_baseline.embed(trajectories)
        b = fitted_baseline.embed(trajectories)
        assert a.shape == (5, fitted_baseline.hidden_dim)
        assert np.allclose(a, b)

    def test_binary_classifier_for_pattern_target(self, tiny_dataset):
        baseline = Trajectory2Vec(tiny_dataset, hidden_dim=16, seed=0)
        baseline.fit_classifier("pattern", epochs=1)
        predictions = baseline.predict_class(tiny_dataset.test_trajectories[:4])
        assert set(np.unique(predictions)) <= {0, 1}

    def test_next_hop_augmentation_increases_samples(self, tiny_dataset):
        baseline = Trajectory2Vec(tiny_dataset, hidden_dim=16, seed=0)
        # Training with augmentation should not error and should fit a head.
        baseline.fit_next_hop(epochs=1, augmentation=3)
        assert baseline.next_hop_head is not None
