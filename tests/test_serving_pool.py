"""Warm model pool: checkpoint round-trip and replica leasing (`repro.serving.pool`)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.checkpoints import load_bigcity, save_bigcity
from repro.serving.pool import ModelPool

pytestmark = pytest.mark.serving


@pytest.fixture(scope="module")
def checkpoint(trained_model, tiny_dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("serving_pool") / "model.npz"
    return save_bigcity(trained_model, path, dataset_name=tiny_dataset.name)


class TestWarmPoolRoundTrip:
    def test_replicas_bit_identical_to_fresh_model(self, checkpoint, tiny_dataset, trained_model):
        """N warm replicas from one checkpoint == a freshly constructed model, bit for bit."""
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=2)
        fresh, _ = load_bigcity(checkpoint, tiny_dataset)

        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 4][:4]
        reference_times = fresh.estimate_travel_time(trajectories)
        reference_rollouts = fresh.rollout_next_hops_batch(trajectories, steps=2)
        # the checkpoint already round-trips the original training run
        np.testing.assert_array_equal(reference_times, trained_model.estimate_travel_time(trajectories))

        for _ in range(pool.size):
            # drain replicas one by one so each is checked exactly once
            replica = pool.acquire(timeout_s=1.0)
            np.testing.assert_array_equal(replica.estimate_travel_time(trajectories), reference_times)
            rollouts = replica.rollout_next_hops_batch(trajectories, steps=2)
            for rolled, reference in zip(rollouts, reference_rollouts):
                np.testing.assert_array_equal(rolled, reference)

    def test_replicas_are_independent_objects(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=2)
        first = pool.acquire()
        second = pool.acquire()
        assert first is not second
        first_parameters = list(first.parameters())
        second_parameters = list(second.parameters())
        assert len(first_parameters) == len(second_parameters)
        assert all(p1 is not p2 for p1, p2 in zip(first_parameters, second_parameters))

    def test_warmup_time_recorded(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=1)
        assert pool.warmup_s > 0.0


class TestLeasing:
    def test_lease_checks_out_and_returns(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=2)
        assert pool.available() == 2
        with pool.lease() as first:
            assert pool.available() == 1
            with pool.lease() as second:
                assert pool.available() == 0
                assert first is not second
        assert pool.available() == 2

    def test_acquire_times_out_when_exhausted(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=1)
        with pool.lease():
            with pytest.raises(TimeoutError):
                pool.acquire(timeout_s=0.01)

    def test_acquire_blocks_until_release(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=1)
        model = pool.acquire()
        acquired = []

        def waiter():
            acquired.append(pool.acquire(timeout_s=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        pool.release(model)
        thread.join(timeout=5.0)
        assert acquired and acquired[0] is model

    def test_foreign_or_double_release_rejected(self, checkpoint, tiny_dataset):
        pool = ModelPool.from_checkpoint(checkpoint, tiny_dataset, replicas=1)
        with pytest.raises(ValueError):
            pool.release(object())
        model = pool.acquire()
        pool.release(model)
        with pytest.raises(ValueError):
            pool.release(model)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ModelPool([])
