"""Batched single-pass evaluation paths and the recovery boundary fix.

The load-bearing claims of the batch entry points
(``recover_trajectories_batch`` / ``predict_traffic_states_batch`` /
``impute_traffic_states_batch``):

* batched answers equal the serial per-case answers **bit-for-bit**, under
  the float64 AND the float32 compute policy;
* a masked position before the first (or after the last) kept sample no
  longer crashes constrained recovery — it falls back to the open-sided
  candidate set anchored on the nearest kept neighbour;
* empty inputs return correctly-shaped empty results instead of raising
  from a bare ``np.stack``;
* the evaluators' ``evaluate*_batch`` forms reproduce the serial metrics
  exactly, and the serving scheduler folds every request kind into one
  batch call whose results match serial execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.tensor import compute_dtype
from repro.serving import (
    FaultPlan,
    NextHopRequest,
    RecoveryRequest,
    RequestFailed,
    ResultHandle,
    TrafficImputationRequest,
    TrafficPredictionRequest,
    execute_request,
    results_equal,
)
from repro.serving.scheduler import run_tick
from repro.tasks.recovery import TrajectoryRecoveryEvaluator
from repro.tasks.traffic import TrafficStateEvaluator


@pytest.fixture(scope="module")
def trajectories(tiny_dataset):
    return [t for t in tiny_dataset.test_trajectories if len(t) >= 5][:4]


def _kept_lists(trajectories, rng_seed=3):
    """Deterministic per-trajectory kept indices, including masked endpoints."""
    rng = np.random.default_rng(rng_seed)
    kept_lists = []
    for trajectory in trajectories:
        keep = max(1, len(trajectory) // 3)
        kept_lists.append(np.sort(rng.choice(len(trajectory), size=keep, replace=False)))
    return kept_lists


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    @pytest.mark.parametrize("constrain", [True, False])
    def test_recovery_batch_matches_serial(self, trained_model, trajectories, dtype, constrain):
        kept_lists = _kept_lists(trajectories)
        with compute_dtype(dtype):
            serial = [
                trained_model.recover_trajectory(t, k, constrain_to_network=constrain)
                for t, k in zip(trajectories, kept_lists)
            ]
            batched = trained_model.recover_trajectories_batch(
                trajectories, kept_lists, constrain_to_network=constrain
            )
        assert len(batched) == len(serial)
        for serial_row, batched_row in zip(serial, batched):
            np.testing.assert_array_equal(batched_row, serial_row)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_prediction_batch_matches_serial(self, trained_model, tiny_dataset, dtype):
        traffic = tiny_dataset.traffic_states
        cases = [
            (i % traffic.num_segments, (2 * i) % max(traffic.num_slices - 8, 1), 4, 1 + i % 3)
            for i in range(5)
        ]
        with compute_dtype(dtype):
            serial = [trained_model.predict_traffic_state(*case) for case in cases]
            batched = trained_model.predict_traffic_states_batch(cases)
        assert len(batched) == len(serial)
        for serial_row, batched_row in zip(serial, batched):
            np.testing.assert_array_equal(batched_row, serial_row)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_imputation_batch_matches_serial(self, trained_model, tiny_dataset, dtype):
        traffic = tiny_dataset.traffic_states
        cases = [
            (i % traffic.num_segments, (3 * i) % max(traffic.num_slices - 6, 1), 6, (0, 2 + i % 3))
            for i in range(4)
        ]
        with compute_dtype(dtype):
            serial = [trained_model.impute_traffic_state(*case) for case in cases]
            batched = trained_model.impute_traffic_states_batch(cases)
        assert len(batched) == len(serial)
        for serial_row, batched_row in zip(serial, batched):
            np.testing.assert_array_equal(batched_row, serial_row)


class TestRecoveryBoundaries:
    """Regression: masked endpoints used to crash constrained decoding with
    ``ValueError: zero-size array to reduction operation``."""

    def test_masked_first_and_last_positions_decode(self, trained_model, trajectories):
        trajectory = trajectories[0]
        # keep only interior samples: both endpoints are masked
        kept = np.arange(1, len(trajectory) - 1)
        recovered = trained_model.recover_trajectory(trajectory, kept, constrain_to_network=True)
        assert recovered.shape == (2,)
        assert np.all(recovered >= 0)

    def test_single_kept_index_decodes_both_open_sides(self, trained_model, trajectories):
        trajectory = trajectories[0]
        middle = len(trajectory) // 2
        recovered = trained_model.recover_trajectory(trajectory, [middle], constrain_to_network=True)
        assert recovered.shape == (len(trajectory) - 1,)

    def test_last_index_only(self, trained_model, trajectories):
        trajectory = trajectories[0]
        recovered = trained_model.recover_trajectory(
            trajectory, [len(trajectory) - 1], constrain_to_network=True
        )
        assert recovered.shape == (len(trajectory) - 1,)

    def test_no_kept_indices_still_raises(self, trained_model, trajectories):
        with pytest.raises(ValueError):
            trained_model.recover_trajectory(trajectories[0], [])


class TestEmptyInputs:
    def test_trajectory_embeddings_empty(self, trained_model):
        embeddings = trained_model.trajectory_embeddings([])
        assert embeddings.shape == (0, trained_model.config.d_model)

    def test_classification_scores_empty(self, trained_model):
        scores = trained_model.classification_scores([], target="user")
        assert scores.ndim == 2 and scores.shape[0] == 0
        assert scores.shape[1] > 0

    def test_batch_entry_points_empty(self, trained_model):
        assert trained_model.recover_trajectories_batch([], []) == []
        assert trained_model.predict_traffic_states_batch([]) == []
        assert trained_model.impute_traffic_states_batch([]) == []

    def test_recovery_batch_length_mismatch(self, trained_model, trajectories):
        with pytest.raises(ValueError):
            trained_model.recover_trajectories_batch(trajectories, [[0]])


class TestEvaluatorBatchForms:
    def test_recovery_evaluator_metrics_identical(self, trained_model, tiny_dataset):
        evaluator = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.6, max_samples=6, seed=0)
        serial = evaluator.evaluate(trained_model.recover_trajectory)
        batched = evaluator.evaluate_batch(trained_model.recover_trajectories_batch)
        assert serial == batched

    def test_prediction_evaluator_metrics_identical(self, trained_model, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=3, max_windows=8, seed=0)
        serial = evaluator.evaluate_prediction(trained_model.predict_traffic_state, horizon=2)
        batched = evaluator.evaluate_prediction_batch(trained_model.predict_traffic_states_batch, horizon=2)
        assert serial == batched

    def test_imputation_evaluator_metrics_identical(self, trained_model, tiny_dataset):
        # imputation_cases() consumes the evaluator RNG, so each form gets a
        # fresh evaluator seeded identically — the cases (and therefore the
        # metrics) must then coincide exactly.
        serial = TrafficStateEvaluator(tiny_dataset, history=4, horizon=3, max_windows=8, seed=5).evaluate_imputation(
            trained_model.impute_traffic_state, max_cases=6
        )
        batched = TrafficStateEvaluator(
            tiny_dataset, history=4, horizon=3, max_windows=8, seed=5
        ).evaluate_imputation_batch(trained_model.impute_traffic_states_batch, max_cases=6)
        assert serial == batched


class TestSchedulerFoldsAllKinds:
    def _requests_by_kind(self, tiny_dataset, trajectories):
        traffic = tiny_dataset.traffic_states
        return {
            "recovery": [
                RecoveryRequest(trajectory=t, kept_indices=tuple(int(i) for i in k))
                for t, k in zip(trajectories, _kept_lists(trajectories))
            ],
            "traffic_prediction": [
                TrafficPredictionRequest(
                    segment_id=i % traffic.num_segments,
                    start_slice=(2 * i) % max(traffic.num_slices - 8, 1),
                    history=4,
                    horizon=1 + i % 3,
                )
                for i in range(4)
            ],
            "traffic_imputation": [
                TrafficImputationRequest(
                    segment_id=i % traffic.num_segments,
                    start_slice=(3 * i) % max(traffic.num_slices - 6, 1),
                    num_slices=6,
                    masked_positions=(0, 2 + i % 3),
                )
                for i in range(4)
            ],
        }

    @pytest.mark.parametrize("kind", ["recovery", "traffic_prediction", "traffic_imputation"])
    def test_tick_folds_each_kind_into_one_model_call(self, trained_model, tiny_dataset, trajectories, kind):
        requests = self._requests_by_kind(tiny_dataset, trajectories)[kind]
        serial = [execute_request(trained_model, request) for request in requests]
        handles = [ResultHandle(request=request) for request in requests]
        tick = run_tick(trained_model, handles)
        assert tick.model_calls == 1, tick
        assert tick.batched_requests == len(requests)
        assert tick.failed == 0
        for handle, expected in zip(handles, serial):
            assert results_equal(handle.result(timeout=1.0), expected)

    def test_mixed_tick_folds_every_group(self, trained_model, tiny_dataset, trajectories):
        by_kind = self._requests_by_kind(tiny_dataset, trajectories)
        requests = [request for group in by_kind.values() for request in group]
        requests += [NextHopRequest(trajectory=t, steps=2) for t in trajectories[:2]]
        serial = [execute_request(trained_model, request) for request in requests]
        handles = [ResultHandle(request=request) for request in requests]
        tick = run_tick(trained_model, handles)
        # one folded call per batch_key group: recovery, prediction,
        # imputation, next-hop
        assert tick.model_calls == 4, tick
        assert tick.batched_requests == len(requests)
        for handle, expected in zip(handles, serial):
            assert results_equal(handle.result(timeout=1.0), expected)

    def test_poisoned_recovery_fold_is_isolated(self, trained_model, trajectories):
        plan = FaultPlan().fail_request("poison")
        kept_lists = _kept_lists(trajectories)
        handles = [
            ResultHandle(
                request=RecoveryRequest(
                    trajectory=t,
                    kept_indices=tuple(int(i) for i in k),
                    tag="poison" if index == 1 else None,
                )
            )
            for index, (t, k) in enumerate(zip(trajectories, kept_lists))
        ]
        tick = run_tick(trained_model, handles, faults=plan)
        assert tick.failed == 1
        assert tick.isolated == len(handles) - 1
        assert tick.batched_requests == 0  # the fold itself did not complete
        with pytest.raises(RequestFailed):
            handles[1].result(timeout=1.0)
        for index, handle in enumerate(handles):
            if index == 1:
                continue
            expected = trained_model.recover_trajectory(trajectories[index], kept_lists[index])
            np.testing.assert_array_equal(np.asarray(handle.result(timeout=1.0)), expected)
