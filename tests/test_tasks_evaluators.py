"""Tests for the task evaluators (next hop, TTE, classification, similarity, recovery, traffic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.recovery import TrajectoryRecoveryEvaluator
from repro.tasks.similarity import SimilaritySearchEvaluator, _variant
from repro.tasks.traffic import TrafficStateEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator


class TestNextHopEvaluator:
    def test_targets_are_final_segments(self, tiny_dataset):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=10, seed=0)
        for trajectory, target in zip(evaluator.trajectories, evaluator.targets):
            assert trajectory.segments[-1] == target
            assert len(trajectory) >= 3

    def test_oracle_gets_perfect_scores(self, tiny_dataset):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=10, seed=0)

        def oracle(trajectories):
            return [[t.segments[-1], 0, 1] for t in trajectories]

        result = evaluator.evaluate(oracle)
        assert result["acc"] == 1.0
        assert result["mrr@5"] == 1.0
        assert result["ndcg@5"] == pytest.approx(1.0)

    def test_random_ranker_scores_low(self, tiny_dataset, rng):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=10, seed=0)

        def random_ranker(trajectories):
            return [rng.permutation(tiny_dataset.num_segments)[:5] for _ in trajectories]

        assert evaluator.evaluate(random_ranker)["acc"] <= 0.5

    def test_wrong_result_count_rejected(self, tiny_dataset):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=5, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate(lambda ts: [[0]])

    def test_prefix_mode_passes_shorter_inputs(self, tiny_dataset):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=5, seed=0)
        seen_lengths = []

        def recorder(trajectories):
            seen_lengths.extend(len(t) for t in trajectories)
            return [[0] for _ in trajectories]

        evaluator.evaluate(recorder, use_full_trajectory=False)
        assert all(
            length == len(full) - 1 for length, full in zip(seen_lengths, evaluator.trajectories)
        )


class TestTravelTimeEvaluator:
    def test_oracle_zero_error(self, tiny_dataset):
        evaluator = TravelTimeEvaluator(tiny_dataset, max_samples=10, seed=0)
        result = evaluator.evaluate(lambda ts: np.array([t.duration for t in ts]))
        assert result["mae"] == pytest.approx(0.0)
        assert result["mape"] == pytest.approx(0.0)

    def test_constant_predictor_has_positive_error(self, tiny_dataset):
        evaluator = TravelTimeEvaluator(tiny_dataset, max_samples=10, seed=0)
        result = evaluator.evaluate(lambda ts: np.zeros(len(ts)))
        assert result["mae"] > 0

    def test_errors_reported_in_minutes(self, tiny_dataset):
        evaluator = TravelTimeEvaluator(tiny_dataset, max_samples=10, seed=0)
        result = evaluator.evaluate(lambda ts: np.array([t.duration + 60.0 for t in ts]))
        assert result["mae"] == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self, tiny_dataset):
        evaluator = TravelTimeEvaluator(tiny_dataset, max_samples=5, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate(lambda ts: np.zeros(1))


class TestClassificationEvaluator:
    def test_user_target_filters_rare_users(self, tiny_dataset):
        evaluator = TrajectoryClassificationEvaluator(tiny_dataset, target="user", min_user_trajectories=3)
        counts = {}
        for trajectory in tiny_dataset.trajectories:
            counts[trajectory.user_id] = counts.get(trajectory.user_id, 0) + 1
        assert all(counts[t.user_id] >= 3 for t in evaluator.trajectories)

    def test_oracle_user_classifier(self, tiny_dataset):
        evaluator = TrajectoryClassificationEvaluator(tiny_dataset, target="user")
        result = evaluator.evaluate(lambda ts: np.array([t.user_id for t in ts]))
        assert result["micro_f1"] == pytest.approx(1.0)
        assert result["macro_f1"] == pytest.approx(1.0)

    def test_pattern_target_reports_binary_metrics(self, tiny_dataset):
        evaluator = TrajectoryClassificationEvaluator(tiny_dataset, target="pattern")
        result = evaluator.evaluate(
            lambda ts: np.array([int(t.label) for t in ts]),
            lambda ts: np.array([[0.0, 1.0] if t.label else [1.0, 0.0] for t in ts]),
        )
        assert result["acc"] == 1.0
        assert result["auc"] == pytest.approx(1.0)

    def test_invalid_target_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            TrajectoryClassificationEvaluator(tiny_dataset, target="vehicle")


class TestSimilarityEvaluator:
    def test_variants_are_disjoint_downsamplings(self, tiny_dataset):
        trajectory = max(tiny_dataset.trajectories, key=len)
        odd = _variant(trajectory, parity=1)
        even = _variant(trajectory, parity=0)
        assert len(odd) < len(trajectory) and len(even) < len(trajectory)
        assert odd.segments[0] == even.segments[0] == trajectory.segments[0]

    def test_oracle_embedding_gets_high_hit_rate(self, tiny_dataset):
        evaluator = SimilaritySearchEvaluator(tiny_dataset, num_queries=8, seed=0)

        def one_hot_route(trajectories):
            out = np.zeros((len(trajectories), tiny_dataset.num_segments))
            for row, trajectory in enumerate(trajectories):
                out[row, trajectory.segments] = 1.0
            return out

        result = evaluator.evaluate(embed_fn=one_hot_route)
        assert result["hr@5"] >= 0.75
        assert result["mean_rank"] < 5

    def test_distance_function_mode(self, tiny_dataset):
        evaluator = SimilaritySearchEvaluator(tiny_dataset, num_queries=6, seed=0)

        def overlap_distance(a, b):
            return -len(set(a.segments) & set(b.segments))

        result = evaluator.evaluate(distance_fn=overlap_distance)
        assert 0.0 <= result["hr@1"] <= 1.0
        assert result["search_time_s"] >= 0

    def test_exactly_one_method_required(self, tiny_dataset):
        evaluator = SimilaritySearchEvaluator(tiny_dataset, num_queries=4, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate()
        with pytest.raises(ValueError):
            evaluator.evaluate(embed_fn=lambda ts: np.zeros((len(ts), 2)), distance_fn=lambda a, b: 0.0)

    def test_extra_database_grows_search_space(self, tiny_dataset):
        base = SimilaritySearchEvaluator(tiny_dataset, num_queries=4, seed=0)
        extended = SimilaritySearchEvaluator(
            tiny_dataset, num_queries=4, seed=0, extra_database=tiny_dataset.trajectories[:10]
        )
        assert extended.database_size > base.database_size


class TestRecoveryEvaluator:
    def test_cases_have_consistent_masks(self, tiny_dataset):
        evaluator = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.85, max_samples=10, seed=0)
        for trajectory, kept, missing in evaluator.cases:
            assert set(kept) | set(missing) == set(range(len(trajectory)))
            assert not set(kept) & set(missing)

    def test_oracle_recovery_is_perfect(self, tiny_dataset):
        evaluator = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.85, max_samples=10, seed=0)

        def oracle(trajectory, kept):
            missing = np.setdiff1d(np.arange(len(trajectory)), kept)
            return np.array([trajectory.segments[i] for i in missing])

        result = evaluator.evaluate(oracle)
        assert result["accuracy"] == 1.0
        assert result["macro_f1"] == pytest.approx(1.0)

    def test_wrong_output_length_rejected(self, tiny_dataset):
        evaluator = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.85, max_samples=5, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate(lambda trajectory, kept: np.array([0]))

    def test_higher_mask_ratio_masks_more(self, tiny_dataset):
        low = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.5, max_samples=10, seed=0)
        high = TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=0.9, max_samples=10, seed=0)
        low_masked = np.mean([len(missing) / len(t) for t, _, missing in low.cases])
        high_masked = np.mean([len(missing) / len(t) for t, _, missing in high.cases])
        assert high_masked > low_masked

    def test_invalid_mask_ratio(self, tiny_dataset):
        with pytest.raises(ValueError):
            TrajectoryRecoveryEvaluator(tiny_dataset, mask_ratio=1.5)


class TestTrafficEvaluator:
    def test_requires_traffic_states(self, tiny_dataset_no_traffic):
        with pytest.raises(ValueError):
            TrafficStateEvaluator(tiny_dataset_no_traffic)

    def test_oracle_prediction_zero_error(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=3, max_windows=10, seed=0)
        values = tiny_dataset.traffic_states.values

        def oracle(segment, start, history, horizon):
            return values[segment, start + history : start + history + horizon]

        result = evaluator.evaluate_prediction(oracle)
        assert result["mae"] == pytest.approx(0.0)

    def test_persistence_baseline_has_finite_error(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=3, max_windows=10, seed=0)
        values = tiny_dataset.traffic_states.values

        def persistence(segment, start, history, horizon):
            last = values[segment, start + history - 1]
            return np.tile(last, (horizon, 1))

        result = evaluator.evaluate_prediction(persistence)
        assert np.isfinite(result["mae"]) and result["mae"] >= 0

    def test_windows_in_test_region(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=2, max_windows=20, train_fraction=0.7, seed=0)
        total = tiny_dataset.traffic_states.num_slices
        for window in evaluator.windows:
            assert window.history_slices[0] >= int((total - 4 - 2 + 1) * 0.7)

    def test_oracle_imputation_zero_error(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=2, max_windows=10, seed=0)
        values = tiny_dataset.traffic_states.values

        def oracle(segment, start, length, masked, override):
            return values[segment, start + np.asarray(masked)]

        result = evaluator.evaluate_imputation(oracle, max_cases=5)
        assert result["mae"] == pytest.approx(0.0)

    def test_masked_override_hides_values(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=2, max_windows=10, seed=0)
        cases = evaluator.imputation_cases(mask_ratio=0.25, sequence_length=8, max_cases=4)
        override = evaluator.masked_traffic_values(cases)
        segment, start, _, masked = cases[0]
        original = tiny_dataset.traffic_states.values[segment, start + masked[0]]
        assert not np.allclose(override[segment, start + masked[0]], original)

    def test_horizon_larger_than_prepared_rejected(self, tiny_dataset):
        evaluator = TrafficStateEvaluator(tiny_dataset, history=4, horizon=2, max_windows=5, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate_prediction(lambda *a: np.zeros((2, 3)), horizon=5)
