"""Open-loop load generator and serving metrics (`repro.serving.loadgen`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serving import (
    LoadGenConfig,
    ModelPool,
    NextHopRequest,
    ServingConfig,
    build_request_trace,
    poisson_arrivals,
)
from repro.serving.loadgen import run_loadgen
from repro.serving.metrics import ServingMetrics, latency_percentiles
from repro.serving.requests import ResultHandle

pytestmark = pytest.mark.serving


class TestTrace:
    def test_trace_is_deterministic(self, tiny_dataset):
        config = LoadGenConfig(num_requests=16, seed=3)
        first = build_request_trace(tiny_dataset, config)
        second = build_request_trace(tiny_dataset, config)
        assert len(first) == 16
        for a, b in zip(first, second):
            assert type(a) is type(b)
            assert a.batch_key()[0] == b.batch_key()[0]
        kinds = {request.kind for request in first}
        assert "next_hop" in kinds  # dominant mix component must appear

    def test_traffic_kinds_dropped_without_traffic_states(self, tiny_dataset_no_traffic):
        trace = build_request_trace(tiny_dataset_no_traffic, LoadGenConfig(num_requests=12, seed=0))
        assert all(request.kind in ("next_hop", "recovery") for request in trace)

    def test_next_hop_requests_use_configured_steps(self, tiny_dataset):
        trace = build_request_trace(
            tiny_dataset, LoadGenConfig(num_requests=8, seed=1, steps=3, mix=(("next_hop", 1.0),))
        )
        assert all(isinstance(request, NextHopRequest) and request.steps == 3 for request in trace)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LoadGenConfig(num_requests=0)
        with pytest.raises(ValueError):
            LoadGenConfig(rate_hz=-1.0)


class TestPoissonArrivals:
    def test_deterministic_and_monotone(self):
        first = poisson_arrivals(64, rate_hz=100.0, seed=5)
        second = poisson_arrivals(64, rate_hz=100.0, seed=5)
        np.testing.assert_array_equal(first, second)
        assert first[0] == 0.0
        assert np.all(np.diff(first) >= 0)

    def test_mean_gap_tracks_rate(self):
        arrivals = poisson_arrivals(4000, rate_hz=50.0, seed=0)
        mean_gap = float(np.diff(arrivals).mean())
        assert mean_gap == pytest.approx(1.0 / 50.0, rel=0.15)


class TestMetrics:
    def test_percentiles_ordered_and_summary_shape(self):
        metrics = ServingMetrics(max_batch_size=4)
        metrics.mark_started()
        for batch, depth in ((4, 6), (4, 2), (2, 0)):
            metrics.record_tick(batch, depth, duration_s=0.01)
        for latency in (0.01, 0.02, 0.03, 0.04, 0.05):
            handle = ResultHandle(request=None)
            handle.mark_started(batch_size=4)
            handle.complete(None)
            handle.submitted_at = handle.completed_at - latency
            metrics.record_completion(handle)
        metrics.mark_stopped()
        summary = metrics.summary()
        assert summary["requests"] == 5.0
        assert summary["latency_p50_s"] <= summary["latency_p95_s"] <= summary["latency_p99_s"]
        assert summary["batch_occupancy_max"] == 4.0
        assert summary["queue_depth_max"] == 6.0
        # fixed-width histogram: one bucket per batch size up to the max
        assert summary["batch_occ_4"] == 2.0
        assert summary["batch_occ_2"] == 1.0
        assert summary["batch_occ_1"] == 0.0

    def test_empty_percentiles_are_zero(self):
        assert latency_percentiles([]) == {
            "latency_p50_s": 0.0,
            "latency_p95_s": 0.0,
            "latency_p99_s": 0.0,
        }


class TestRunLoadgen:
    def test_backlog_run_is_identical_and_complete(self, trained_model, tiny_dataset):
        result = run_loadgen(
            trained_model,
            tiny_dataset,
            LoadGenConfig(num_requests=10, rate_hz=None, seed=2),
            ServingConfig(max_batch_size=4),
        )
        assert result["identical"] == 1.0
        assert result["requests"] == 10.0
        assert result["requests_per_s"] > 0.0
        assert result["latency_p50_s"] <= result["latency_p99_s"]
        histogram_total = sum(
            size * count
            for size in range(1, 5)
            for count in [result[f"batch_occ_{size}"]]
        )
        assert histogram_total == 10.0  # every request accounted to one tick

    def test_poisson_run_is_identical(self, trained_model, tiny_dataset):
        result = run_loadgen(
            trained_model,
            tiny_dataset,
            LoadGenConfig(num_requests=8, rate_hz=200.0, seed=4),
            ServingConfig(max_batch_size=4),
        )
        assert result["identical"] == 1.0
        assert result["requests"] == 8.0

    def test_pool_only_invocation(self, trained_model, tiny_dataset):
        result = run_loadgen(
            None,
            tiny_dataset,
            LoadGenConfig(num_requests=6, rate_hz=None, seed=5),
            ServingConfig(max_batch_size=4),
            pool=ModelPool([trained_model]),
        )
        assert result["identical"] == 1.0

    def test_requires_model_or_pool(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_loadgen(None, tiny_dataset)
