"""Equivalence tests for the batched KV-cached rollout.

``BIGCity.rollout_next_hops_batch`` decodes N trajectories through one
right-padded batch with per-row position ids; these tests pin the contract
that it chooses exactly the segments the per-trajectory
``rollout_next_hops`` would, on both the cached and the re-encoding path,
and that the next-hop evaluator's rollout metric runs on top of it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tasks.decoding import greedy_next_hop, greedy_next_hop_batch
from repro.tasks.next_hop import NextHopEvaluator


@pytest.fixture(scope="module")
def mixed_length_trajectories(tiny_dataset):
    """Trajectories of deliberately different lengths (forces padding)."""
    pool = sorted(tiny_dataset.train_trajectories, key=len)
    picks = [pool[0], pool[len(pool) // 2], pool[-1], pool[1], pool[-2]]
    assert len({len(t) for t in picks}) > 1, "fixture must mix lengths"
    return picks


class TestBatchedRolloutEquivalence:
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_matches_per_trajectory_rollout(self, untrained_model, mixed_length_trajectories, use_cache):
        untrained_model.eval()
        serial = [
            untrained_model.rollout_next_hops(t, steps=3, use_cache=use_cache)
            for t in mixed_length_trajectories
        ]
        batched = untrained_model.rollout_next_hops_batch(
            mixed_length_trajectories, steps=3, use_cache=use_cache
        )
        assert len(batched) == len(serial)
        for expected, actual in zip(serial, batched):
            assert np.array_equal(expected, actual)

    def test_cached_matches_uncached_batch(self, untrained_model, mixed_length_trajectories):
        untrained_model.eval()
        cached = untrained_model.rollout_next_hops_batch(mixed_length_trajectories, steps=4, use_cache=True)
        uncached = untrained_model.rollout_next_hops_batch(mixed_length_trajectories, steps=4, use_cache=False)
        for expected, actual in zip(uncached, cached):
            assert np.array_equal(expected, actual)

    def test_unconstrained_matches_too(self, untrained_model, mixed_length_trajectories):
        untrained_model.eval()
        serial = [
            untrained_model.rollout_next_hops(t, steps=2, constrain_to_network=False)
            for t in mixed_length_trajectories
        ]
        batched = untrained_model.rollout_next_hops_batch(
            mixed_length_trajectories, steps=2, constrain_to_network=False
        )
        for expected, actual in zip(serial, batched):
            assert np.array_equal(expected, actual)

    def test_single_trajectory_shape(self, untrained_model, tiny_dataset):
        untrained_model.eval()
        result = untrained_model.rollout_next_hops_batch([tiny_dataset.train_trajectories[0]], steps=3)
        assert len(result) == 1
        assert result[0].shape == (3,)
        assert result[0].dtype == np.int64

    def test_empty_batch(self, untrained_model):
        assert untrained_model.rollout_next_hops_batch([]) == []

    def test_rejects_nonpositive_steps(self, untrained_model, tiny_dataset):
        with pytest.raises(ValueError):
            untrained_model.rollout_next_hops_batch([tiny_dataset.train_trajectories[0]], steps=0)


class TestGreedyNextHopBatch:
    def test_matches_scalar_helper(self, tiny_network):
        rng = np.random.default_rng(0)
        scores = rng.standard_normal((5, tiny_network.num_segments))
        last = rng.integers(0, tiny_network.num_segments, size=5)
        batched = greedy_next_hop_batch(scores, last, tiny_network)
        expected = [greedy_next_hop(row, int(seg), tiny_network) for row, seg in zip(scores, last)]
        assert np.array_equal(batched, np.asarray(expected))

    def test_without_network_is_argmax(self):
        scores = np.array([[0.1, 0.9, 0.0], [0.5, 0.2, 0.3]])
        assert np.array_equal(greedy_next_hop_batch(scores, [0, 0], None), [1, 0])

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            greedy_next_hop_batch(np.zeros(3), [0], None)
        with pytest.raises(ValueError):
            greedy_next_hop_batch(np.zeros((2, 3)), [0], None)


class TestRolloutEvaluator:
    def test_evaluate_rollout_runs_batched(self, untrained_model, tiny_dataset):
        untrained_model.eval()
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=6, seed=0)
        calls = []

        def rollout_fn(prefixes):
            calls.append(len(prefixes))
            return untrained_model.rollout_next_hops_batch(prefixes, steps=1)

        metrics = evaluator.evaluate_rollout(rollout_fn)
        assert calls == [len(evaluator)]  # one batched call for all prefixes
        assert 0.0 <= metrics["rollout_acc"] <= 1.0

    def test_evaluate_rollout_validates_count(self, tiny_dataset):
        evaluator = NextHopEvaluator(tiny_dataset, max_samples=4, seed=0)
        with pytest.raises(ValueError):
            evaluator.evaluate_rollout(lambda prefixes: [])
