"""Tests for ST-units, the unified label space and task-oriented prompts."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heads import LabelSpace
from repro.core.prompts import CLAS, INSTRUCTION_BANK, Prompt, PromptBuilder, REG, TaskType, TextTokenizer
from repro.core.st_unit import STUnitSequence, traffic_series_to_units, trajectory_to_units
from repro.data.trajectory import Trajectory, subsample_trajectory


@pytest.fixture(scope="module")
def label_space():
    return LabelSpace(num_segments=50, num_users=10, num_patterns=2)


@pytest.fixture(scope="module")
def builder(label_space):
    return PromptBuilder(label_space)


def _sequence(length=8, with_dynamic=True, user=3, label=1):
    dynamic = np.random.default_rng(0).random((length, 3)) if with_dynamic else None
    return STUnitSequence(
        segment_ids=np.arange(length) % 50,
        timestamps=np.arange(length) * 60.0,
        dynamic_features=dynamic,
        kind="trajectory",
        source_id=11,
        user_id=user,
        label=label,
    )


class TestSTUnitSequence:
    def test_length_and_alignment_checks(self):
        with pytest.raises(ValueError):
            STUnitSequence(np.arange(3), np.arange(2), None, "trajectory")
        with pytest.raises(ValueError):
            STUnitSequence(np.arange(3), np.arange(3), np.zeros((2, 3)), "trajectory")
        with pytest.raises(ValueError):
            STUnitSequence(np.arange(3), np.arange(3), None, "other")

    def test_time_intervals_start_with_zero(self):
        sequence = _sequence()
        intervals = sequence.time_intervals()
        assert intervals[0] == 0.0
        assert np.allclose(intervals[1:], 60.0)

    def test_time_features_shape(self):
        assert _sequence(5).time_features().shape == (5, 8)

    def test_slice_and_take(self):
        sequence = _sequence(6)
        part = sequence.slice(1, 4)
        assert len(part) == 3
        taken = sequence.take([0, 5])
        assert list(taken.segment_ids) == [0, 5]
        assert taken.user_id == sequence.user_id

    def test_units_materialisation(self):
        sequence = _sequence(4)
        static = np.random.default_rng(1).random((50, 7))
        units = sequence.units(static)
        assert len(units) == 4
        assert units[2].segment_id == int(sequence.segment_ids[2])
        assert units[2].has_dynamic

    def test_trajectory_to_units_without_traffic(self):
        trajectory = Trajectory(5, 2, [1, 2, 3], [0.0, 30.0, 90.0], label=0)
        sequence = trajectory_to_units(trajectory, None)
        assert sequence.dynamic_features is None
        assert sequence.user_id == 2 and sequence.label == 0

    def test_trajectory_to_units_with_traffic(self, tiny_dataset):
        trajectory = tiny_dataset.trajectories[0]
        sequence = trajectory_to_units(trajectory, tiny_dataset.traffic_states)
        assert sequence.dynamic_features.shape == (len(trajectory), tiny_dataset.traffic_states.num_channels)

    def test_traffic_series_to_units(self, tiny_dataset):
        sequence = traffic_series_to_units(tiny_dataset.traffic_states, segment_id=2, start_slice=4, num_slices=6)
        assert len(sequence) == 6
        assert np.all(sequence.segment_ids == 2)
        assert sequence.kind == "traffic_state"
        axis = tiny_dataset.traffic_states.time_axis
        assert sequence.timestamps[0] == axis.slice_start(4)

    def test_traffic_series_range_check(self, tiny_dataset):
        with pytest.raises(ValueError):
            traffic_series_to_units(tiny_dataset.traffic_states, 0, start_slice=0, num_slices=10_000)


class TestLabelSpace:
    def test_offsets_partition_the_space(self, label_space):
        assert label_space.size == 62
        assert label_space.segment_label(0) == 0
        assert label_space.user_label(0) == 50
        assert label_space.pattern_label(0) == 60

    def test_out_of_range_rejected(self, label_space):
        with pytest.raises(ValueError):
            label_space.segment_label(50)
        with pytest.raises(ValueError):
            label_space.user_label(10)
        with pytest.raises(ValueError):
            label_space.pattern_label(2)

    def test_family_slices_cover_space(self, label_space):
        total = sum(
            s.stop - s.start
            for s in (label_space.segment_slice(), label_space.user_slice(), label_space.pattern_slice())
        )
        assert total == label_space.size

    def test_unknown_family_rejected(self, label_space):
        with pytest.raises(ValueError):
            label_space.family_slice("vehicle")

    @given(st.integers(min_value=0, max_value=49))
    @settings(max_examples=20, deadline=None)
    def test_segment_labels_are_identity(self, label_space, segment):
        assert label_space.segment_label(segment) == segment


class TestTextTokenizer:
    def test_vocabulary_covers_instruction_bank(self):
        tokenizer = TextTokenizer()
        for instruction in INSTRUCTION_BANK.values():
            ids = tokenizer.encode(instruction)
            assert len(ids) == len(instruction.split())
            assert 1 not in ids  # no <unk> for in-bank instructions

    def test_unknown_words_map_to_unk(self):
        tokenizer = TextTokenizer()
        ids = tokenizer.encode("completely unseen zorblax words")
        assert (ids == 1).any()

    def test_decode_roundtrip(self):
        tokenizer = TextTokenizer()
        sentence = INSTRUCTION_BANK[TaskType.NEXT_HOP]
        assert tokenizer.decode(tokenizer.encode(sentence)) == sentence


class TestPromptBuilder:
    def test_next_hop_prompt_strips_target(self, builder):
        sequence = _sequence(6)
        prompt = builder.next_hop(sequence)
        assert prompt.task is TaskType.NEXT_HOP
        assert len(prompt.sequence) == 5
        assert prompt.placeholders == (CLAS,)
        assert prompt.classification_targets == (int(sequence.segment_ids[-1]),)

    def test_next_hop_needs_three_samples(self, builder):
        with pytest.raises(ValueError):
            builder.next_hop(_sequence(2))

    def test_travel_time_prompt_hides_all_but_first_timestamp(self, builder):
        prompt = builder.travel_time(_sequence(5))
        assert prompt.task is TaskType.TRAVEL_TIME
        assert prompt.time_feature_mask.tolist() == [False, True, True, True, True]
        assert prompt.placeholders == tuple([REG] * 4)
        assert np.allclose(prompt.timestamp_targets, 60.0)

    def test_classification_prompt_user_and_pattern(self, builder, label_space):
        user_prompt = builder.classification(_sequence(), target="user")
        assert user_prompt.classification_targets == (label_space.user_label(3),)
        pattern_prompt = builder.classification(_sequence(), target="pattern")
        assert pattern_prompt.classification_targets == (label_space.pattern_label(1),)
        with pytest.raises(ValueError):
            builder.classification(_sequence(), target="vehicle")

    def test_similarity_prompt_has_no_supervision(self, builder):
        prompt = builder.similarity(_sequence())
        assert prompt.classification_targets == (-1,)

    def test_recovery_prompt_masks_missing_positions(self, builder):
        sequence = _sequence(10)
        kept = [0, 3, 9]
        prompt = builder.recovery(sequence, kept)
        assert prompt.task is TaskType.RECOVERY
        assert set(prompt.mask_positions) == set(range(10)) - set(kept)
        assert len(prompt.placeholders) == 7
        assert all(kind == CLAS for kind in prompt.placeholders)
        # Targets follow ascending masked position order.
        assert prompt.classification_targets[0] == int(sequence.segment_ids[1])

    def test_recovery_allows_masked_endpoints(self, builder):
        # Endpoints need not be kept: the anchor falls back to the nearest
        # kept neighbour on the open side.
        sequence = _sequence(6)
        prompt = builder.recovery(sequence, kept_indices=[1, 3])
        assert set(prompt.mask_positions) == {0, 2, 4, 5}
        # Position 0 anchors on the first kept sample (index 1); positions
        # after the last kept sample anchor on it (index 3).
        assert prompt.anchors[0].segment_id == int(sequence.segment_ids[1])
        assert prompt.anchors[-1].segment_id == int(sequence.segment_ids[3])

    def test_recovery_validates_kept_indices(self, builder):
        with pytest.raises(ValueError):
            builder.recovery(_sequence(6), kept_indices=[])
        with pytest.raises(ValueError):
            builder.recovery(_sequence(6), kept_indices=[0, 6])
        with pytest.raises(ValueError):
            builder.recovery(_sequence(6), kept_indices=[-1, 3])

    def test_traffic_prediction_prompt(self, builder, tiny_dataset):
        history = traffic_series_to_units(tiny_dataset.traffic_states, 1, 0, 6)
        target = tiny_dataset.traffic_states.segment_series(1)[6:12]
        prompt = builder.traffic_prediction(history, target, multi_step=True)
        assert prompt.task is TaskType.TRAFFIC_MULTI_STEP
        assert len(prompt.placeholders) == 6
        assert np.allclose(prompt.regression_targets[0], target[0])

    def test_one_step_requires_single_target(self, builder, tiny_dataset):
        history = traffic_series_to_units(tiny_dataset.traffic_states, 1, 0, 6)
        target = tiny_dataset.traffic_states.segment_series(1)[6:8]
        with pytest.raises(ValueError):
            builder.traffic_prediction(history, target, multi_step=False)

    def test_imputation_prompt_requires_dynamic_features(self, builder):
        with pytest.raises(ValueError):
            builder.traffic_imputation(_sequence(6, with_dynamic=False), [1, 2])

    def test_imputation_prompt_targets_masked_rows(self, builder, tiny_dataset):
        sequence = traffic_series_to_units(tiny_dataset.traffic_states, 0, 0, 8)
        prompt = builder.traffic_imputation(sequence, [2, 5])
        assert prompt.mask_positions == (2, 5)
        assert np.allclose(prompt.regression_targets[1], sequence.dynamic_features[5])

    def test_masked_reconstruction_prompt_pairs(self, builder):
        sequence = _sequence(10)
        prompt = builder.masked_reconstruction(sequence, mask_ratio=0.3, rng=np.random.default_rng(0))
        assert prompt.task is TaskType.MASKED_RECONSTRUCTION
        assert len(prompt.placeholders) == 2 * len(prompt.mask_positions)
        assert prompt.placeholders[::2] == tuple([CLAS] * len(prompt.mask_positions))
        assert prompt.placeholders[1::2] == tuple([REG] * len(prompt.mask_positions))
        assert len(prompt.timestamp_targets) == len(prompt.mask_positions)

    def test_prompt_validation(self, builder):
        sequence = _sequence(4)
        with pytest.raises(ValueError):
            Prompt(task=TaskType.NEXT_HOP, sequence=sequence, placeholders=("other",))
        with pytest.raises(ValueError):
            Prompt(task=TaskType.NEXT_HOP, sequence=sequence, mask_positions=(9,))

    def test_instruction_lookup(self, builder):
        prompt = builder.next_hop(_sequence(5))
        assert prompt.instruction == INSTRUCTION_BANK[TaskType.NEXT_HOP]

    @given(st.integers(min_value=6, max_value=20), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_recovery_targets_match_masked_segments(self, builder, length, seed):
        rng = np.random.default_rng(seed)
        trajectory = Trajectory(0, 1, list(rng.integers(0, 50, size=length)), sorted(rng.uniform(0, 1000, size=length)))
        sequence = trajectory_to_units(trajectory)
        _, kept = subsample_trajectory(trajectory, keep_ratio=0.3, rng=rng)
        prompt = builder.recovery(sequence, kept)
        missing = np.setdiff1d(np.arange(length), kept)
        expected = tuple(int(sequence.segment_ids[i]) for i in missing)
        assert prompt.classification_targets == expected
