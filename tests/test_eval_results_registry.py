"""Tests for result tables, benchmark profiles and the experiment registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.harness import (
    FULL_PROFILE,
    QUICK_PROFILE,
    SMOKE_PROFILE,
    BenchmarkProfile,
    ExperimentContext,
    get_profile,
)
from repro.eval.registry import EXPERIMENTS, get_experiment
from repro.eval.results import ResultTable


class TestResultTable:
    def _table(self):
        table = ResultTable(title="demo", higher_is_better={"acc": True, "mae": False})
        table.add_row("model_a", {"acc": 0.8, "mae": 2.0})
        table.add_row("model_b", {"acc": 0.6, "mae": 1.0})
        return table

    def test_metric_names_preserve_insertion_order(self):
        assert self._table().metric_names == ["acc", "mae"]

    def test_best_by_respects_direction(self):
        table = self._table()
        assert table.best_by("acc") == "model_a"
        assert table.best_by("mae") == "model_b"

    def test_best_by_missing_metric(self):
        assert self._table().best_by("rmse") is None

    def test_rank_of(self):
        table = self._table()
        assert table.rank_of("model_a", "acc") == 1
        assert table.rank_of("model_a", "mae") == 2
        assert table.rank_of("model_c", "acc") is None

    def test_winners_per_metric(self):
        winners = self._table().winners()
        assert winners == {"acc": "model_a", "mae": "model_b"}

    def test_add_row_extends_existing_model(self):
        table = self._table()
        table.add_row("model_a", {"rmse": 3.0})
        assert table.value("model_a", "rmse") == 3.0
        assert table.value("model_a", "acc") == 0.8

    def test_to_text_contains_rows_and_best_line(self):
        text = self._table().to_text()
        assert "model_a" in text and "model_b" in text
        assert "best" in text

    def test_to_dict_and_json(self):
        payload = self._table().to_dict()
        assert payload["rows"]["model_a"]["acc"] == 0.8
        assert "winners" in payload
        assert "model_a" in self._table().to_json()

    def test_missing_values_render_as_dash(self):
        table = ResultTable(title="sparse")
        table.add_row("a", {"x": 1.0})
        table.add_row("b", {"y": 2.0})
        assert "-" in table.to_text()


class TestProfiles:
    def test_named_profiles_resolve(self):
        assert get_profile("quick") is QUICK_PROFILE
        assert get_profile("full") is FULL_PROFILE
        assert get_profile("smoke") is SMOKE_PROFILE

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            get_profile("turbo")

    def test_env_variable_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROFILE", "smoke")
        assert get_profile() is SMOKE_PROFILE

    def test_full_profile_trains_longer_than_quick(self):
        assert FULL_PROFILE.stage2_epochs > QUICK_PROFILE.stage2_epochs
        assert FULL_PROFILE.max_eval_samples >= QUICK_PROFILE.max_eval_samples

    def test_baseline_name_defaults_cover_registries(self):
        assert len(QUICK_PROFILE.trajectory_baseline_names()) == 7
        assert len(QUICK_PROFILE.traffic_baseline_names()) == 7
        assert len(QUICK_PROFILE.recovery_baseline_names()) == 4
        assert set(SMOKE_PROFILE.trajectory_baseline_names()) == {"traj2vec", "start"}

    def test_profile_builds_configs(self):
        config = SMOKE_PROFILE.bigcity_config(lora_rank=4)
        assert config.lora_rank == 4
        training = SMOKE_PROFILE.training_config(stage2_epochs=1)
        assert training.stage2_epochs == 1

    def test_context_caches_datasets(self):
        context = ExperimentContext(SMOKE_PROFILE)
        assert context.dataset("xa_like") is context.dataset("xa_like")


class TestRegistry:
    def test_every_paper_artifact_is_registered(self):
        expected = {"table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9", "fig1", "fig5", "fig6"}
        assert set(EXPERIMENTS) == expected

    def test_specs_point_to_existing_benchmarks(self):
        import pathlib

        for spec in EXPERIMENTS.values():
            assert spec.benchmark_target.startswith("benchmarks/")
            assert spec.description

    def test_get_experiment(self):
        assert get_experiment("table3").paper_reference == "Table III"
        with pytest.raises(KeyError):
            get_experiment("table42")

    def test_runners_are_callable(self):
        assert all(callable(spec.runner) for spec in EXPERIMENTS.values())
