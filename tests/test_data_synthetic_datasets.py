"""Tests for the mobility simulator, dataset presets, loaders and map matching."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.datasets import DATASET_PRESETS, DatasetSplits, load_dataset, make_splits
from repro.data.loader import TrafficWindowSampler, TrajectoryLoader, collate_trajectories
from repro.data.mapmatch import HMMMapMatcher
from repro.data.synthetic import SyntheticCity, SyntheticCityConfig
from repro.data.timeutils import SECONDS_PER_HOUR
from repro.data.traffic_state import TRAFFIC_CHANNELS


class TestSyntheticCity:
    def test_trajectories_follow_road_connectivity(self, tiny_dataset):
        network = tiny_dataset.network
        for trajectory in tiny_dataset.trajectories[:30]:
            for a, b in zip(trajectory.segments[:-1], trajectory.segments[1:]):
                assert b in network.successors(a)

    def test_timestamps_strictly_increase(self, tiny_dataset):
        for trajectory in tiny_dataset.trajectories:
            assert np.all(np.diff(trajectory.timestamps) > 0)

    def test_each_user_has_trajectories(self, tiny_dataset):
        users = {t.user_id for t in tiny_dataset.trajectories}
        assert len(users) >= 6

    def test_trajectories_within_time_axis(self, tiny_dataset):
        axis = tiny_dataset.time_axis
        for trajectory in tiny_dataset.trajectories:
            assert trajectory.end_time < axis.end

    def test_labels_are_binary(self, tiny_dataset):
        labels = {t.label for t in tiny_dataset.trajectories}
        assert labels <= {0, 1}

    def test_rush_hour_congestion_slows_traffic(self, tiny_network):
        config = SyntheticCityConfig(num_users=4, trajectories_per_user=2, num_days=1, seed=1)
        city = SyntheticCity(tiny_network, config)
        axis = city.time_axis
        rush = axis.slice_of(8.5 * SECONDS_PER_HOUR)
        quiet = axis.slice_of(3.0 * SECONDS_PER_HOUR)
        traffic = city.generate_traffic_states([])
        speed = TRAFFIC_CHANNELS.index("speed")
        assert traffic.values[:, rush, speed].mean() < traffic.values[:, quiet, speed].mean()

    def test_traffic_states_match_network_and_axis(self, tiny_dataset):
        traffic = tiny_dataset.traffic_states
        assert traffic.num_segments == tiny_dataset.network.num_segments
        assert traffic.num_slices == tiny_dataset.time_axis.num_slices

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticCityConfig(num_users=0)
        with pytest.raises(ValueError):
            SyntheticCityConfig(commute_probability=1.5)

    def test_reproducible_with_seed(self, tiny_network):
        config = SyntheticCityConfig(num_users=4, trajectories_per_user=2, num_days=1, seed=42)
        a = SyntheticCity(tiny_network, config).generate_trajectories()
        b = SyntheticCity(tiny_network, config).generate_trajectories()
        assert len(a) == len(b)
        assert a[0].segments == b[0].segments


class TestDatasetPresets:
    def test_presets_exist(self):
        assert set(DATASET_PRESETS) == {"bj_like", "xa_like", "cd_like"}

    def test_unknown_dataset_rejected(self):
        with pytest.raises(KeyError):
            load_dataset("nyc_like")

    def test_make_splits_partition(self):
        splits = make_splits(100, (0.6, 0.2, 0.2), seed=0)
        assert sum(splits.sizes) == 100
        assert set(splits.train) | set(splits.validation) | set(splits.test) == set(range(100))

    def test_make_splits_rejects_bad_ratios(self):
        with pytest.raises(ValueError):
            make_splits(10, (0.5, 0.2, 0.2))

    def test_splits_reject_overlap(self):
        with pytest.raises(ValueError):
            DatasetSplits(train=(0, 1), validation=(1, 2), test=(3,))

    def test_dataset_split_accessors(self, tiny_dataset):
        assert len(tiny_dataset.train_trajectories) == len(tiny_dataset.splits.train)
        assert len(tiny_dataset.test_trajectories) == len(tiny_dataset.splits.test)

    def test_summary_fields(self, tiny_dataset):
        summary = tiny_dataset.summary()
        assert summary["road_segments"] == tiny_dataset.network.num_segments
        assert summary["has_dynamic_features"] == 1.0


class TestLoaders:
    def test_collate_pads_and_masks(self, tiny_dataset):
        batch = collate_trajectories(tiny_dataset.trajectories[:4])
        assert batch.segments.shape == batch.timestamps.shape == batch.padding_mask.shape
        for row in range(4):
            length = batch.lengths[row]
            assert not batch.padding_mask[row, :length].any()
            assert batch.padding_mask[row, length:].all()

    def test_collate_empty_rejected(self):
        with pytest.raises(ValueError):
            collate_trajectories([])

    def test_loader_covers_all_trajectories(self, tiny_dataset):
        loader = TrajectoryLoader(tiny_dataset.trajectories, batch_size=7, shuffle=True, seed=0)
        seen = []
        for batch in loader:
            seen.extend(batch.trajectory_ids.tolist())
        assert sorted(seen) == sorted(t.trajectory_id for t in tiny_dataset.trajectories)

    def test_loader_drop_last(self, tiny_dataset):
        loader = TrajectoryLoader(tiny_dataset.trajectories, batch_size=7, drop_last=True)
        assert all(batch.batch_size == 7 for batch in loader)

    def test_loader_len(self, tiny_dataset):
        loader = TrajectoryLoader(tiny_dataset.trajectories, batch_size=10)
        assert len(loader) == int(np.ceil(len(tiny_dataset.trajectories) / 10))

    def test_window_sampler_shapes(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2, seed=0)
        windows = sampler.sample(5, split="train")
        for window in windows:
            assert window.history.shape == (4, len(TRAFFIC_CHANNELS))
            assert window.target.shape == (2, len(TRAFFIC_CHANNELS))

    def test_window_sampler_temporal_split_disjoint(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=4, horizon=2, seed=0)
        train_low, train_high = sampler.valid_start_range("train")
        test_low, test_high = sampler.valid_start_range("test")
        assert train_high <= test_low + 1
        assert test_high > test_low

    def test_window_sampler_rejects_long_windows(self, tiny_dataset):
        slices = tiny_dataset.traffic_states.num_slices
        with pytest.raises(ValueError):
            TrafficWindowSampler(tiny_dataset.traffic_states, history=slices, horizon=1)

    def test_window_values_match_source(self, tiny_dataset):
        sampler = TrafficWindowSampler(tiny_dataset.traffic_states, history=3, horizon=2, seed=0)
        window = sampler.window(segment_id=1, start_slice=5)
        assert np.allclose(window.history, tiny_dataset.traffic_states.values[1, 5:8])
        assert np.allclose(window.target, tiny_dataset.traffic_states.values[1, 8:10])


class TestMapMatching:
    def test_exact_midpoints_recovered(self, tiny_dataset):
        matcher = HMMMapMatcher(tiny_dataset.network)
        trajectory = max(tiny_dataset.trajectories, key=len)
        points = [tiny_dataset.network.segments[s].midpoint for s in trajectory.segments]
        matched = matcher.match(points)
        # Bidirectional segments share midpoints, so direction is ambiguous for
        # the HMM; require the match to be the segment or its reverse twin.
        hops = [tiny_dataset.network.hop_distance(a, b) for a, b in zip(matched, trajectory.segments)]
        near = np.mean([(a == b) or (0 <= h <= 1) for (a, b), h in zip(zip(matched, trajectory.segments), hops)])
        assert near > 0.8

    def test_noisy_points_stay_near_truth(self, tiny_dataset, rng):
        matcher = HMMMapMatcher(tiny_dataset.network)
        trajectory = max(tiny_dataset.trajectories, key=len)
        points = [
            tuple(np.asarray(tiny_dataset.network.segments[s].midpoint) + rng.normal(0, 0.05, 2))
            for s in trajectory.segments
        ]
        matched = matcher.match(points)
        hops = [tiny_dataset.network.hop_distance(a, b) for a, b in zip(matched, trajectory.segments)]
        assert np.mean([0 <= h <= 2 for h in hops]) > 0.7

    def test_empty_input(self, tiny_dataset):
        assert HMMMapMatcher(tiny_dataset.network).match([]) == []

    def test_interpolation_counts(self, tiny_dataset):
        matcher = HMMMapMatcher(tiny_dataset.network)
        positions = matcher.interpolate_positions([0, 5], [3], mode="linear")
        assert len(positions) == 5

    def test_interpolation_mode_validation(self, tiny_dataset):
        matcher = HMMMapMatcher(tiny_dataset.network)
        with pytest.raises(ValueError):
            matcher.interpolate_positions([0, 1], [1], mode="spline")
        with pytest.raises(ValueError):
            matcher.interpolate_positions([0, 1], [1, 2])

    def test_invalid_parameters(self, tiny_dataset):
        with pytest.raises(ValueError):
            HMMMapMatcher(tiny_dataset.network, emission_sigma_km=0.0)
