"""Tests for the autograd engine (repro.nn.tensor)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import no_grad
from repro.nn.tensor import Tensor


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        plus = x.copy().reshape(-1)
        minus = x.copy().reshape(-1)
        plus[i] += eps
        minus[i] -= eps
        grad_flat[i] = (fn(plus.reshape(x.shape)) - fn(minus.reshape(x.shape))) / (2 * eps)
    return grad


def analytic_gradient(expr, x: np.ndarray) -> np.ndarray:
    t = Tensor(x, requires_grad=True)
    out = expr(t)
    out.backward()
    return t.grad


class TestConstruction:
    def test_wraps_lists_and_scalars(self):
        assert Tensor([1.0, 2.0]).shape == (2,)
        assert Tensor(3.0).shape == ()

    def test_dtype_preserved_for_floats(self):
        assert Tensor(np.ones(3, dtype=np.float32)).dtype == np.float32

    def test_rejects_object_dtype(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"], dtype=object))

    def test_repr_mentions_shape_and_grad_flag(self):
        text = repr(Tensor(np.zeros((2, 3)), requires_grad=True))
        assert "(2, 3)" in text and "requires_grad" in text

    def test_detach_shares_data_but_drops_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert np.shares_memory(d.data, t.data)

    def test_zeros_ones_arange_constructors(self):
        assert np.all(Tensor.zeros((2, 2)).data == 0)
        assert np.all(Tensor.ones((2, 2)).data == 1)
        assert np.array_equal(Tensor.arange(4).data, np.arange(4, dtype=np.float64))

    def test_item_returns_python_float(self):
        assert isinstance(Tensor(np.array([2.5])).item(), float)


class TestArithmetic:
    def test_add_and_radd(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((t + 1.0).data, [2.0, 3.0])
        assert np.allclose((1.0 + t).data, [2.0, 3.0])

    def test_subtract_and_rsub(self):
        t = Tensor([1.0, 2.0])
        assert np.allclose((t - 1.0).data, [0.0, 1.0])
        assert np.allclose((3.0 - t).data, [2.0, 1.0])

    def test_multiply_divide(self):
        t = Tensor([2.0, 4.0])
        assert np.allclose((t * 2.0).data, [4.0, 8.0])
        assert np.allclose((t / 2.0).data, [1.0, 2.0])
        assert np.allclose((8.0 / t).data, [4.0, 2.0])

    def test_pow_and_neg(self):
        t = Tensor([2.0, 3.0])
        assert np.allclose((t**2).data, [4.0, 9.0])
        assert np.allclose((-t).data, [-2.0, -3.0])

    def test_broadcast_add_gradients(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4,)), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        assert np.allclose(b.grad, 3.0)

    def test_add_gradient_accumulates_over_reuse(self):
        a = Tensor([1.0], requires_grad=True)
        out = a + a
        out.backward(np.array([1.0]))
        assert np.allclose(a.grad, [2.0])

    def test_matmul_2d(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        b = Tensor(np.arange(12, dtype=float).reshape(3, 4), requires_grad=True)
        out = a @ b
        out.sum().backward()
        assert out.shape == (2, 4)
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3, 4)

    def test_matmul_batched_against_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((2, 3, 4))
        b = rng.standard_normal((2, 4, 5))
        out = Tensor(a) @ Tensor(b)
        assert np.allclose(out.data, a @ b)

    def test_matmul_vector_rhs_gradient(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((3, 4))
        v = rng.standard_normal(4)

        def f(x):
            with no_grad():
                return float((Tensor(a) @ Tensor(x)).sum().data)

        g = analytic_gradient(lambda t: (Tensor(a) @ t).sum(), v)
        assert np.allclose(g, numeric_gradient(f, v), atol=1e-6)


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum().data == 6.0
        assert t.sum(axis=0).shape == (3,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_mean_and_var(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        t = Tensor(data)
        assert np.allclose(t.mean().data, data.mean())
        assert np.allclose(t.var(axis=1).data, data.var(axis=1))

    def test_sum_gradient_broadcasts_back(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.sum(axis=1).sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_max_gradient_flows_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_mean_axis_tuple(self):
        t = Tensor(np.ones((2, 3, 4)))
        assert t.mean(axis=(0, 2)).shape == (3,)


class TestElementwise:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "gelu", "abs"],
    )
    def test_unary_gradients_match_numerics(self, name):
        rng = np.random.default_rng(hash(name) % 2**31)
        x = rng.uniform(0.2, 1.5, size=(3, 3))  # positive domain works for log/sqrt

        def expr(t):
            return getattr(t, name)().sum()

        def f(arr):
            with no_grad():
                return float(getattr(Tensor(arr), name)().sum().data)

        assert np.allclose(analytic_gradient(expr, x), numeric_gradient(f, x), atol=1e-5)

    def test_relu_zeroes_negatives(self):
        assert np.allclose(Tensor([-1.0, 2.0]).relu().data, [0.0, 2.0])

    def test_leaky_relu_slope(self):
        out = Tensor([-2.0, 2.0]).leaky_relu(0.1)
        assert np.allclose(out.data, [-0.2, 2.0])

    def test_clip_gradient_masks_out_of_range(self):
        t = Tensor(np.array([-1.0, 0.5, 2.0]), requires_grad=True)
        t.clip(0.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_range(self):
        out = Tensor(np.linspace(-10, 10, 7)).sigmoid().data
        assert np.all((out > 0) & (out < 1))


class TestSoftmaxAndMasking:
    def test_softmax_rows_sum_to_one(self):
        out = Tensor(np.random.default_rng(0).standard_normal((4, 6))).softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_gradient_matches_numeric(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((2, 4))
        weights = rng.standard_normal((2, 4))

        def expr(t):
            return (t.softmax(axis=-1) * weights).sum()

        def f(arr):
            with no_grad():
                return float((Tensor(arr).softmax(axis=-1) * weights).sum().data)

        assert np.allclose(analytic_gradient(expr, x), numeric_gradient(f, x), atol=1e-6)

    def test_log_softmax_is_log_of_softmax(self):
        x = np.random.default_rng(4).standard_normal((3, 5))
        assert np.allclose(Tensor(x).log_softmax().data, np.log(Tensor(x).softmax().data))

    def test_masked_fill_blocks_gradient(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, False]])
        t.masked_fill(mask, -5.0).sum().backward()
        assert np.allclose(t.grad, (~mask).astype(float))

    def test_masked_fill_sets_value(self):
        out = Tensor(np.zeros((2, 2))).masked_fill(np.eye(2, dtype=bool), 9.0)
        assert np.allclose(np.diag(out.data), 9.0)


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t.reshape(2, 3).sum().backward()
        assert t.grad.shape == (6,)

    def test_transpose_default_reverses_axes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.T.shape == (4, 3, 2)

    def test_transpose_gradient(self):
        t = Tensor(np.random.default_rng(0).standard_normal((2, 3)), requires_grad=True)
        t.transpose().sum().backward()
        assert t.grad.shape == (2, 3)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(0, 1).shape == (3, 2, 4)

    def test_getitem_int_and_slice(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        t[1].sum().backward()
        expected = np.zeros((3, 4))
        expected[1] = 1.0
        assert np.allclose(t.grad, expected)

    def test_getitem_fancy_index_gradient_accumulates(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        assert np.allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_index_select_matches_take(self):
        t = Tensor(np.arange(12.0).reshape(4, 3))
        idx = np.array([[0, 1], [2, 3]])
        assert t.index_select(idx).shape == (2, 2, 3)

    def test_index_select_gradient(self):
        t = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        t.index_select(np.array([2, 2, 0])).sum().backward()
        assert np.allclose(t.grad, [[1.0, 1.0], [0.0, 0.0], [2.0, 2.0]])

    def test_concat_and_stack_gradients(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        Tensor.concat([a, b], axis=1).sum().backward()
        assert a.grad.shape == (2, 2) and b.grad.shape == (2, 3)
        c = Tensor(np.ones(3), requires_grad=True)
        Tensor.stack([c, c], axis=0).sum().backward()
        assert np.allclose(c.grad, 2.0)

    def test_pad_last_dims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        padded = t.pad_last_dims([(1, 2)])
        assert padded.shape == (2, 6)
        padded.sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))


class TestBackwardSemantics:
    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_no_grad_disables_graph(self):
        with no_grad():
            t = Tensor(np.ones(3), requires_grad=True)
            out = (t * 2).sum()
        assert not out.requires_grad

    def test_no_grad_is_thread_local(self):
        # A serving worker's no_grad() must not bleed into other threads:
        # while this thread holds grad off, a sibling thread still records
        # gradients, and its exit does not re-enable grad here.
        import threading

        from repro.nn import is_grad_enabled

        sibling_saw = {}

        def sibling():
            sibling_saw["enabled"] = is_grad_enabled()
            with no_grad():
                pass
            sibling_saw["after_exit"] = is_grad_enabled()

        with no_grad():
            worker = threading.Thread(target=sibling)
            worker.start()
            worker.join()
            assert not is_grad_enabled()  # sibling's exit did not flip us back
        assert sibling_saw == {"enabled": True, "after_exit": True}

    def test_zero_grad_resets(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_deep_chain_does_not_hit_recursion_limit(self):
        t = Tensor(np.ones(4), requires_grad=True)
        out = t
        for _ in range(2000):
            out = out + 1.0
        out.sum().backward()
        assert np.allclose(t.grad, 1.0)

    def test_diamond_graph_accumulates_once_per_path(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        a = t * 3.0
        b = t * 4.0
        (a + b).backward(np.array([1.0]))
        assert np.allclose(t.grad, [7.0])

    def test_dropout_eval_mode_is_identity(self):
        t = Tensor(np.ones((4, 4)))
        assert np.allclose(t.dropout(0.5, training=False).data, 1.0)

    def test_dropout_train_mode_scales_survivors(self):
        np.random.seed(0)
        t = Tensor(np.ones((200, 200)))
        out = t.dropout(0.5, training=True).data
        survivors = out[out > 0]
        assert np.allclose(survivors, 2.0)
        assert 0.4 < (out > 0).mean() < 0.6


class TestPropertyBased:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_composite_expression_gradient(self, rows, cols, seed):
        """Gradient of a random composite expression matches finite differences."""
        rng = np.random.default_rng(seed)
        x = rng.uniform(-1.0, 1.0, size=(rows, cols))
        w = rng.uniform(-1.0, 1.0, size=(cols, 3))

        def expr(t):
            return ((t @ Tensor(w)).tanh() * 2.0 + 0.5).sigmoid().sum()

        def f(arr):
            with no_grad():
                return float(((Tensor(arr) @ Tensor(w)).tanh() * 2.0 + 0.5).sigmoid().sum().data)

        assert np.allclose(analytic_gradient(expr, x), numeric_gradient(f, x), atol=1e-5)

    @given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_softmax_is_shift_invariant(self, cols, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, cols))
        shifted = x + rng.uniform(-100, 100)
        assert np.allclose(Tensor(x).softmax().data, Tensor(shifted).softmax().data, atol=1e-9)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_sum_rule(self, seed):
        """d/db sum(a + b) equals the number of broadcast copies of b."""
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 5))
        a = Tensor(rng.standard_normal((rows, 3)))
        b = Tensor(rng.standard_normal((3,)), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(b.grad, rows)
