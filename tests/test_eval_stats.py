"""Tests for the significance-testing helpers (`repro.eval.stats`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.stats import (
    ComparisonResult,
    bootstrap_difference,
    compare_models,
    paired_t_test,
    wilcoxon_test,
)


def _scores(offset: float, size: int = 30, seed: int = 0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=size)
    return base + offset, base


class TestPairedTests:
    def test_clear_difference_is_significant(self):
        better, worse = _scores(offset=1.0)
        _, p_value = paired_t_test(better, worse)
        assert p_value < 0.01
        _, wilcoxon_p = wilcoxon_test(better, worse)
        assert wilcoxon_p < 0.01

    def test_identical_scores_are_not_significant(self):
        scores = np.arange(10.0)
        assert paired_t_test(scores, scores) == (0.0, 1.0)
        assert wilcoxon_test(scores, scores) == (0.0, 1.0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0, 2.0], [1.0])

    def test_too_few_samples_raise(self):
        with pytest.raises(ValueError):
            paired_t_test([1.0], [2.0])

    def test_symmetry_of_t_statistic(self):
        a, b = _scores(offset=0.5)
        stat_ab, p_ab = paired_t_test(a, b)
        stat_ba, p_ba = paired_t_test(b, a)
        assert stat_ab == pytest.approx(-stat_ba)
        assert p_ab == pytest.approx(p_ba)


class TestBootstrap:
    def test_interval_contains_true_shift(self):
        better, worse = _scores(offset=0.8, size=60)
        mean_diff, (low, high) = bootstrap_difference(better, worse, seed=1)
        assert mean_diff == pytest.approx(0.8)
        assert low <= 0.8 + 1e-9
        assert high >= 0.8 - 1e-9

    def test_interval_excludes_zero_for_clear_difference(self):
        better, worse = _scores(offset=2.0, size=60)
        _, (low, high) = bootstrap_difference(better, worse, seed=2)
        assert low > 0.0

    def test_deterministic_given_seed(self):
        a, b = _scores(offset=0.3)
        assert bootstrap_difference(a, b, seed=5) == bootstrap_difference(a, b, seed=5)

    def test_invalid_confidence_raises(self):
        a, b = _scores(offset=0.1)
        with pytest.raises(ValueError):
            bootstrap_difference(a, b, confidence=1.5)

    def test_invalid_resamples_raise(self):
        a, b = _scores(offset=0.1)
        with pytest.raises(ValueError):
            bootstrap_difference(a, b, num_resamples=0)


class TestCompareModels:
    def test_full_summary(self):
        bigcity, baseline = _scores(offset=0.5, size=40)
        result = compare_models(bigcity, baseline, model_a="bigcity", model_b="start", metric="acc")
        assert isinstance(result, ComparisonResult)
        assert result.winner == "bigcity"
        assert result.significant()
        assert result.mean_difference == pytest.approx(0.5)
        assert set(result.to_dict()) >= {"mean_a", "t_p_value", "ci_low", "ci_high"}

    def test_lower_is_better_flips_winner(self):
        higher, lower = _scores(offset=0.5)
        result = compare_models(higher, lower, model_a="a", model_b="b", higher_is_better=False)
        assert result.winner == "b"

    def test_tie_goes_to_first_model(self):
        scores = np.linspace(0, 1, 20)
        result = compare_models(scores, scores, model_a="first", model_b="second")
        assert result.winner == "first"
        assert not result.significant()

    @given(offset=st.floats(min_value=-2.0, max_value=2.0), seed=st.integers(0, 100))
    @settings(max_examples=20, deadline=None)
    def test_winner_matches_means(self, offset, seed):
        a, b = _scores(offset=offset, seed=seed)
        result = compare_models(a, b, model_a="a", model_b="b")
        if result.mean_a >= result.mean_b:
            assert result.winner == "a"
        else:
            assert result.winner == "b"
