"""Tests for the evaluation utilities: radar rendering, reports, repeated runs."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.radar import radar_from_table, render_radar
from repro.eval.repeats import AggregatedTable, aggregate_tables, repeat_experiment
from repro.eval.report import PaperReference, ReproductionReport
from repro.eval.results import ResultTable


def _table(title="Table X", rows=None, higher=None) -> ResultTable:
    table = ResultTable(title=title, higher_is_better=higher or {"acc": True, "mae": False})
    for model, metrics in (rows or {"a": {"acc": 0.8, "mae": 1.2}, "b": {"acc": 0.6, "mae": 1.0}}).items():
        table.add_row(model, metrics)
    return table


class TestRenderRadar:
    def test_one_line_per_axis(self):
        text = render_radar({"tte": 1.1, "next_hop": 0.4}, width=20, title="radar")
        lines = text.splitlines()
        assert any(line.startswith("radar") for line in lines)
        assert sum(1 for line in lines if "[" in line and "]" in line) == 2

    def test_values_above_reference_are_marked(self):
        text = render_radar({"winning": 1.4, "losing": 0.2}, width=20)
        winning_line = next(line for line in text.splitlines() if line.strip().startswith("winning"))
        losing_line = next(line for line in text.splitlines() if line.strip().startswith("losing"))
        assert ">1x" in winning_line
        assert ">1x" not in losing_line

    def test_parity_tick_present(self):
        text = render_radar({"axis": 0.5}, width=30)
        assert "|" in text

    def test_empty_axes_raise(self):
        with pytest.raises(ValueError):
            render_radar({})

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            render_radar({"a": 1.0}, width=4)

    def test_bad_reference_raises(self):
        with pytest.raises(ValueError):
            render_radar({"a": 1.0}, reference=0.0)

    @given(values=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_never_crashes_on_non_negative_values(self, values):
        axes = {f"axis{i}": value for i, value in enumerate(values)}
        text = render_radar(axes, width=24)
        assert len(text.splitlines()) >= len(axes)

    def test_radar_from_table(self):
        table = ResultTable(title="Figure 1")
        table.add_row("bigcity", {"tte": 1.0, "next": 0.5})
        text = radar_from_table(table, model="bigcity", width=20)
        assert "tte" in text and "next" in text

    def test_radar_from_table_unknown_model(self):
        table = ResultTable(title="Figure 1")
        table.add_row("bigcity", {"tte": 1.0})
        with pytest.raises(KeyError):
            radar_from_table(table, model="missing")


class TestAggregateTables:
    def test_mean_and_std(self):
        runs = [
            _table(rows={"a": {"acc": 0.8}, "b": {"acc": 0.6}}),
            _table(rows={"a": {"acc": 0.6}, "b": {"acc": 0.4}}),
        ]
        aggregated = aggregate_tables(runs)
        assert aggregated.num_runs == 2
        mean_a, std_a = aggregated.cell("a", "acc")
        assert mean_a == pytest.approx(0.7)
        assert std_a == pytest.approx(0.1)

    def test_missing_cells_use_available_runs(self):
        runs = [
            _table(rows={"a": {"acc": 0.8}}),
            _table(rows={"a": {"acc": 0.6}, "b": {"acc": 0.4}}),
        ]
        aggregated = aggregate_tables(runs)
        mean_b, _ = aggregated.cell("b", "acc")
        assert mean_b == pytest.approx(0.4)

    def test_absent_cell_returns_none(self):
        aggregated = aggregate_tables([_table()])
        assert aggregated.cell("missing", "acc") == (None, None)

    def test_empty_input_raises(self):
        with pytest.raises(ValueError):
            aggregate_tables([])

    def test_to_text_contains_plus_minus(self):
        aggregated = aggregate_tables([_table(), _table()])
        text = aggregated.to_text()
        assert "±" in text
        assert "mean ± std over 2 runs" in text

    def test_repeat_experiment(self):
        def experiment(seed: int) -> ResultTable:
            table = ResultTable(title="toy")
            table.add_row("model", {"value": float(seed)})
            return table

        aggregated = repeat_experiment(experiment, seeds=(1, 2, 3))
        mean, std = aggregated.cell("model", "value")
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(np.std([1, 2, 3]))

    def test_repeat_experiment_requires_seeds(self):
        with pytest.raises(ValueError):
            repeat_experiment(lambda seed: _table(), seeds=())


class TestReproductionReport:
    def test_markdown_contains_measured_and_reference(self):
        report = ReproductionReport()
        measured = _table(title="Table III")
        reference = PaperReference(
            artefact="Table III",
            values={"a": {"acc": 0.85, "mae": 1.7}, "b": {"acc": 0.83, "mae": 1.8}},
            note="XA dataset",
        )
        report.add_table("Table III", measured, reference, commentary="trajectory tasks")
        markdown = report.to_markdown()
        assert "## Table III" in markdown
        assert "### Measured" in markdown
        assert "### Paper" in markdown
        assert "trajectory tasks" in markdown
        assert "XA dataset" in markdown

    def test_shape_agreement_detects_matching_winner(self):
        report = ReproductionReport()
        measured = _table(rows={"a": {"acc": 0.9}, "b": {"acc": 0.5}}, higher={"acc": True})
        agree_ref = PaperReference("T", values={"a": {"acc": 0.8}, "b": {"acc": 0.7}})
        report.add_table("T-agree", measured, agree_ref)
        disagree_ref = PaperReference("T", values={"a": {"acc": 0.6}, "b": {"acc": 0.7}})
        report.add_table("T-disagree", measured, disagree_ref)
        agreement = report.shape_agreement()
        assert agreement["T-agree"] is True
        assert agreement["T-disagree"] is False

    def test_sections_without_reference_are_skipped_in_agreement(self):
        report = ReproductionReport()
        report.add_table("T", _table())
        assert report.shape_agreement() == {}
        assert len(report) == 1

    def test_empty_artefact_raises(self):
        report = ReproductionReport()
        with pytest.raises(ValueError):
            report.add_table("", _table())

    def test_save_writes_markdown_and_json(self, tmp_path):
        report = ReproductionReport(title="run report")
        report.add_table("Table II", _table(title="Table II"))
        path = report.save(tmp_path / "report.md")
        assert path.exists()
        sidecar = path.with_suffix(".json")
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text())
        assert payload["title"] == "run report"
        assert payload["sections"][0]["artefact"] == "Table II"

    def test_missing_metrics_render_as_dash(self):
        report = ReproductionReport()
        table = ResultTable(title="sparse")
        table.add_row("a", {"acc": 0.5})
        table.add_row("b", {"mae": 1.0})
        report.add_table("sparse", table)
        markdown = report.to_markdown()
        assert "| -" in markdown
