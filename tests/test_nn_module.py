"""Tests for Module/Parameter containers and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, MLP, Sequential, ModuleList, save_state_dict, load_state_dict
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class _ToyModule(Module):
    def __init__(self):
        super().__init__()
        self.linear = Linear(3, 2, rng=np.random.default_rng(0))
        self.scale = Parameter(np.ones(2))
        self.register_buffer("running_mean", np.zeros(2))

    def forward(self, x):
        return self.linear(x) * self.scale


class TestRegistration:
    def test_parameters_are_collected_recursively(self):
        module = _ToyModule()
        names = dict(module.named_parameters())
        assert "scale" in names
        assert "linear.weight" in names and "linear.bias" in names

    def test_num_parameters_counts_elements(self):
        module = _ToyModule()
        assert module.num_parameters() == 3 * 2 + 2 + 2

    def test_buffers_included_in_state_dict_but_not_parameters(self):
        module = _ToyModule()
        state = module.state_dict()
        assert "running_mean" in state
        assert all(name != "running_mean" for name, _ in module.named_parameters())

    def test_named_modules_walks_tree(self):
        module = Sequential(Linear(2, 2), Linear(2, 2))
        names = [name for name, _ in module.named_modules()]
        assert "0" in names and "1" in names

    def test_children_returns_direct_submodules(self):
        module = _ToyModule()
        assert len(list(module.children())) == 1


class TestStateDict:
    def test_roundtrip_restores_values(self):
        source = _ToyModule()
        target = _ToyModule()
        source.scale.data = np.array([5.0, 7.0])
        target.load_state_dict(source.state_dict())
        assert np.allclose(target.scale.data, [5.0, 7.0])

    def test_strict_load_rejects_missing_keys(self):
        module = _ToyModule()
        state = module.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            module.load_state_dict(state)

    def test_non_strict_load_ignores_missing_keys(self):
        module = _ToyModule()
        state = module.state_dict()
        state.pop("scale")
        module.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        module = _ToyModule()
        state = module.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            module.load_state_dict(state)

    def test_save_and_load_npz(self, tmp_path):
        source = _ToyModule()
        source.scale.data = np.array([3.0, 4.0])
        path = tmp_path / "toy.npz"
        save_state_dict(source, path, metadata={"note": "test"})
        target = _ToyModule()
        metadata = load_state_dict(target, path)
        assert metadata == {"note": "test"}
        assert np.allclose(target.scale.data, [3.0, 4.0])

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_state_dict(_ToyModule(), tmp_path / "absent.npz")


class TestModesAndFreezing:
    def test_train_eval_propagates(self):
        module = Sequential(Linear(2, 2), Linear(2, 2))
        module.eval()
        assert all(not m.training for m in module.modules())
        module.train()
        assert all(m.training for m in module.modules())

    def test_freeze_and_unfreeze(self):
        module = _ToyModule()
        module.freeze()
        assert all(not p.requires_grad for p in module.parameters())
        module.unfreeze()
        assert all(p.requires_grad for p in module.parameters())

    def test_zero_grad_clears_gradients(self):
        module = _ToyModule()
        out = module(Tensor(np.ones((4, 3)))).sum()
        out.backward()
        assert any(p.grad is not None for p in module.parameters())
        module.zero_grad()
        assert all(p.grad is None for p in module.parameters())

    def test_trainable_parameters_respects_requires_grad(self):
        module = _ToyModule()
        module.linear.freeze()
        trainable = module.trainable_parameters()
        assert all(p.requires_grad for p in trainable)
        assert len(trainable) == 1  # only `scale`


class TestContainers:
    def test_sequential_applies_in_order(self):
        first = Linear(2, 2, rng=np.random.default_rng(0))
        second = Linear(2, 2, rng=np.random.default_rng(1))
        chained = Sequential(first, second)
        x = Tensor(np.ones((1, 2)))
        assert np.allclose(chained(x).data, second(first(x)).data)

    def test_sequential_indexing_and_len(self):
        chained = Sequential(Linear(2, 2), Linear(2, 2))
        assert len(chained) == 2
        assert isinstance(chained[0], Linear)

    def test_module_list_append_and_iterate(self):
        items = ModuleList([Linear(2, 2)])
        items.append(Linear(2, 3))
        assert len(items) == 2
        assert [m.out_features for m in items] == [2, 3]

    def test_module_list_is_not_callable(self):
        with pytest.raises(RuntimeError):
            ModuleList([Linear(2, 2)])(None)

    def test_mlp_is_registered_in_parent(self):
        class Parent(Module):
            def __init__(self):
                super().__init__()
                self.mlp = MLP(4, [8], 2)

        parent = Parent()
        assert parent.num_parameters() == parent.mlp.num_parameters()
