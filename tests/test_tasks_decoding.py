"""Tests for road-network-constrained decoding (`repro.tasks.decoding`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.roadnet.generators import grid_city
from repro.tasks.decoding import (
    backward_hop_distances,
    constrained_next_hop_ranking,
    constrained_recovery_choice,
    forward_hop_distances,
    gap_candidates,
)


@pytest.fixture(scope="module")
def network():
    return grid_city(rows=3, cols=3, block_km=0.5, seed=7)


class TestConstrainedNextHopRanking:
    def test_successors_come_first(self, network):
        rng = np.random.default_rng(0)
        scores = rng.normal(size=network.num_segments)
        last = 0
        ranking = constrained_next_hop_ranking(scores, last, network, top_k=network.num_segments)
        successors = set(network.successors(last))
        assert successors, "grid cities always have successors"
        head = [int(s) for s in ranking[: len(successors)]]
        assert set(head) == successors

    def test_successors_ranked_by_score(self, network):
        scores = np.zeros(network.num_segments)
        successors = network.successors(0)
        # give the *last* successor the highest score; it must be ranked first
        best = successors[-1]
        for rank, segment in enumerate(successors):
            scores[segment] = rank
        ranking = constrained_next_hop_ranking(scores, 0, network, top_k=3)
        assert int(ranking[0]) == best

    def test_top_k_respected(self, network):
        scores = np.arange(network.num_segments, dtype=float)
        ranking = constrained_next_hop_ranking(scores, 0, network, top_k=4)
        assert len(ranking) == 4
        assert len(set(int(s) for s in ranking)) == 4

    def test_wrong_score_length_raises(self, network):
        with pytest.raises(ValueError):
            constrained_next_hop_ranking(np.zeros(3), 0, network)

    def test_invalid_segment_raises(self, network):
        with pytest.raises(ValueError):
            constrained_next_hop_ranking(np.zeros(network.num_segments), network.num_segments + 5, network)

    def test_invalid_top_k_raises(self, network):
        with pytest.raises(ValueError):
            constrained_next_hop_ranking(np.zeros(network.num_segments), 0, network, top_k=0)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_ranking_is_always_valid_ids(self, network, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=network.num_segments)
        last = int(rng.integers(0, network.num_segments))
        ranking = constrained_next_hop_ranking(scores, last, network, top_k=5)
        assert len(ranking) == 5
        assert all(0 <= int(s) < network.num_segments for s in ranking)
        assert len(set(int(s) for s in ranking)) == len(ranking)


class TestHopDistances:
    def test_source_distance_is_zero(self, network):
        distances = forward_hop_distances(network, 0)
        assert distances[0] == 0

    def test_forward_matches_network_hop_distance(self, network):
        distances = forward_hop_distances(network, 0)
        for target, hops in list(distances.items())[:20]:
            assert hops == network.hop_distance(0, target)

    def test_backward_is_forward_on_reverse_graph(self, network):
        target = 5
        backward = backward_hop_distances(network, target)
        for source, hops in list(backward.items())[:20]:
            assert network.hop_distance(source, target) == hops

    def test_max_hops_limits_frontier(self, network):
        limited = forward_hop_distances(network, 0, max_hops=1)
        assert all(h <= 1 for h in limited.values())
        assert set(limited) == {0} | set(network.successors(0))

    def test_invalid_source_raises(self, network):
        with pytest.raises(ValueError):
            forward_hop_distances(network, -1)


class TestGapCandidates:
    def test_candidates_connect_prev_and_next(self, network):
        # pick an observed pair two hops apart and check the middle segment is a candidate
        start = 0
        middle = network.successors(start)[0]
        end = network.successors(middle)[0]
        candidates = gap_candidates(network, start, end, gap_length=1)
        assert middle in candidates

    def test_previous_segment_excluded(self, network):
        start = 0
        end = network.successors(network.successors(start)[0])[0]
        candidates = gap_candidates(network, start, end, gap_length=1)
        assert start not in candidates

    def test_open_ended_gap_uses_forward_reachability(self, network):
        candidates = gap_candidates(network, 0, None, gap_length=2, slack=0)
        forward = forward_hop_distances(network, 0, max_hops=2)
        assert candidates == {s for s, h in forward.items() if 1 <= h <= 2}

    def test_invalid_gap_length_raises(self, network):
        with pytest.raises(ValueError):
            gap_candidates(network, 0, 1, gap_length=0)

    @given(seed=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=20, deadline=None)
    def test_candidates_reachable_within_budget(self, network, seed):
        rng = np.random.default_rng(seed)
        previous = int(rng.integers(0, network.num_segments))
        nxt = int(rng.integers(0, network.num_segments))
        gap = int(rng.integers(1, 4))
        slack = 2
        candidates = gap_candidates(network, previous, nxt, gap_length=gap, slack=slack)
        budget = gap + slack
        for candidate in candidates:
            assert 1 <= network.hop_distance(previous, candidate) <= budget
            assert network.hop_distance(candidate, nxt) <= budget


class TestConstrainedRecoveryChoice:
    def test_picks_best_candidate(self):
        scores = np.array([0.1, 5.0, 2.0, 3.0])
        assert constrained_recovery_choice(scores, {2, 3}) == 3

    def test_empty_candidates_fall_back_to_argmax(self):
        scores = np.array([0.1, 5.0, 2.0])
        assert constrained_recovery_choice(scores, set()) == 1

    def test_out_of_range_candidates_ignored(self):
        scores = np.array([0.1, 5.0, 2.0])
        assert constrained_recovery_choice(scores, {17, 2}) == 2
        # all candidates invalid -> global argmax
        assert constrained_recovery_choice(scores, {17, 23}) == 1


class TestModelIntegration:
    """The model-level wrappers honour the constraint flag."""

    def test_bigcity_constrained_next_hop_returns_successor_first(self, trained_model, tiny_dataset):
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:4]
        rankings = trained_model.predict_next_hop(trajectories, top_k=5)
        for trajectory, ranking in zip(trajectories, rankings):
            anchor = int(trajectory.segments[-2])
            successors = set(tiny_dataset.network.successors(anchor))
            if successors:
                assert int(ranking[0]) in successors

    def test_bigcity_unconstrained_matches_raw_argsort_shape(self, trained_model, tiny_dataset):
        trajectories = [t for t in tiny_dataset.test_trajectories if len(t) >= 3][:2]
        rankings = trained_model.predict_next_hop(trajectories, top_k=5, constrain_to_network=False)
        assert all(len(r) == 5 for r in rankings)

    def test_bigcity_constrained_recovery_stays_near_gap(self, trained_model, tiny_dataset):
        trajectory = next(t for t in tiny_dataset.test_trajectories if len(t) >= 6)
        kept = [0, len(trajectory) - 1]
        recovered = trained_model.recover_trajectory(trajectory, kept)
        assert recovered.shape == (len(trajectory) - 2,)
        assert all(0 <= int(s) < tiny_dataset.num_segments for s in recovered)
