"""Tests for the temporal convolutional network layers (`repro.nn.tcn`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tcn import CausalConv1d, TemporalBlock, TemporalConvNet
from repro.nn.tensor import Tensor


def _sequence(batch: int, length: int, channels: int, seed: int = 0) -> Tensor:
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=(batch, length, channels)))


class TestCausalConv1d:
    def test_output_shape(self):
        conv = CausalConv1d(4, 6, kernel_size=3, dilation=2, rng=np.random.default_rng(0))
        out = conv(_sequence(2, 10, 4))
        assert out.shape == (2, 10, 6)

    def test_causality(self):
        """Changing a future input step never changes earlier outputs."""
        rng = np.random.default_rng(1)
        conv = CausalConv1d(3, 3, kernel_size=2, dilation=1, rng=rng)
        base = np.random.default_rng(2).normal(size=(1, 8, 3))
        modified = base.copy()
        modified[0, 5, :] += 10.0
        out_base = conv(Tensor(base)).data
        out_modified = conv(Tensor(modified)).data
        np.testing.assert_allclose(out_base[0, :5], out_modified[0, :5])
        assert not np.allclose(out_base[0, 5:], out_modified[0, 5:])

    def test_kernel_size_one_is_pointwise(self):
        conv = CausalConv1d(3, 5, kernel_size=1, rng=np.random.default_rng(0))
        x = _sequence(2, 7, 3)
        out = conv(x).data
        # a pointwise conv applied to a permuted sequence is the permuted output
        perm = np.random.default_rng(1).permutation(7)
        out_perm = conv(Tensor(x.data[:, perm, :])).data
        np.testing.assert_allclose(out_perm, out[:, perm, :])

    def test_receptive_field(self):
        conv = CausalConv1d(1, 1, kernel_size=3, dilation=4)
        assert conv.receptive_field == 9

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            CausalConv1d(2, 2, kernel_size=0)
        with pytest.raises(ValueError):
            CausalConv1d(2, 2, dilation=0)

    def test_wrong_rank_input_raises(self):
        conv = CausalConv1d(2, 2)
        with pytest.raises(ValueError):
            conv(Tensor(np.zeros((4, 2))))

    def test_wrong_channel_count_raises(self):
        conv = CausalConv1d(2, 2)
        with pytest.raises(ValueError):
            conv(_sequence(1, 5, 3))

    def test_gradients_flow_to_all_taps(self):
        conv = CausalConv1d(2, 2, kernel_size=3, rng=np.random.default_rng(0))
        out = conv(_sequence(1, 6, 2))
        out.sum().backward()
        for weight in conv.weights:
            assert weight.grad is not None
            assert np.any(weight.grad != 0.0)

    @given(
        length=st.integers(min_value=1, max_value=12),
        kernel=st.integers(min_value=1, max_value=4),
        dilation=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_shape_property(self, length, kernel, dilation):
        conv = CausalConv1d(2, 3, kernel_size=kernel, dilation=dilation, rng=np.random.default_rng(0))
        out = conv(_sequence(1, length, 2))
        assert out.shape == (1, length, 3)


class TestTemporalBlock:
    def test_output_shape_and_residual(self):
        block = TemporalBlock(4, 8, kernel_size=2, dilation=1, rng=np.random.default_rng(0))
        out = block(_sequence(2, 9, 4))
        assert out.shape == (2, 9, 8)
        assert block.downsample is not None

    def test_same_width_has_no_downsample(self):
        block = TemporalBlock(4, 4, rng=np.random.default_rng(0))
        assert block.downsample is None

    def test_output_is_non_negative(self):
        """The block ends with a ReLU."""
        block = TemporalBlock(3, 3, rng=np.random.default_rng(0))
        out = block(_sequence(1, 6, 3)).data
        assert np.all(out >= 0)


class TestTemporalConvNet:
    def test_stack_shapes(self):
        net = TemporalConvNet(4, [8, 8, 16], kernel_size=2, rng=np.random.default_rng(0))
        out = net(_sequence(3, 12, 4))
        assert out.shape == (3, 12, 16)
        assert net.out_channels == 16

    def test_receptive_field_grows_exponentially(self):
        shallow = TemporalConvNet(1, [4], kernel_size=2)
        deep = TemporalConvNet(1, [4, 4, 4], kernel_size=2)
        assert deep.receptive_field > shallow.receptive_field
        assert deep.receptive_field == 1 + 2 * (2 - 1) * (1 + 2 + 4)

    def test_last_step_matches_forward(self):
        net = TemporalConvNet(2, [4, 4], rng=np.random.default_rng(0))
        x = _sequence(2, 7, 2)
        np.testing.assert_allclose(net.last_step(x).data, net(x).data[:, -1, :])

    def test_empty_channel_sizes_raise(self):
        with pytest.raises(ValueError):
            TemporalConvNet(2, [])

    def test_network_is_causal_end_to_end(self):
        net = TemporalConvNet(2, [4, 4], kernel_size=2, rng=np.random.default_rng(3))
        base = np.random.default_rng(4).normal(size=(1, 10, 2))
        modified = base.copy()
        modified[0, 7, :] += 5.0
        out_base = net(Tensor(base)).data
        out_modified = net(Tensor(modified)).data
        np.testing.assert_allclose(out_base[0, :7], out_modified[0, :7])

    def test_trainable_with_adam(self):
        from repro.nn.optim import Adam

        rng = np.random.default_rng(5)
        net = TemporalConvNet(1, [4, 4], rng=rng)
        head_target = rng.normal(size=(4,))
        x = Tensor(rng.normal(size=(2, 6, 1)))
        optimizer = Adam(net.trainable_parameters(), lr=1e-2)
        first_loss = None
        for _ in range(15):
            optimizer.zero_grad()
            prediction = net.last_step(x)
            difference = prediction - head_target
            loss = (difference * difference).mean()
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = float(loss.item())
        assert float(loss.item()) < first_loss
