"""Tests of the process-parallel evaluation runner.

The contract under test: sharding evaluation units over worker processes is
purely a wall-clock optimisation — the merged results are bit-for-bit what
the inline serial loop produces, in the same order, for any worker count.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.eval.parallel as parallel
import repro.eval.registry as registry
from repro.eval.experiments import run_table2_dataset_statistics
from repro.eval.parallel import resolve_workers, run_experiments, run_sharded, unit_seed
from repro.eval.perfbench import _sharded_eval_unit
from repro.eval.registry import ExperimentSpec, run_registered


def _square_unit(value: int) -> dict:
    """Module-level so worker processes can resolve it by qualified name."""
    return {"value": value, "square": value * value}


class TestRunSharded:
    def test_inline_when_single_worker(self):
        assert run_sharded(_square_unit, [3, 1, 2], num_workers=1) == [
            {"value": 3, "square": 9},
            {"value": 1, "square": 1},
            {"value": 2, "square": 4},
        ]

    def test_worker_results_keep_unit_order(self):
        units = list(range(7))
        serial = run_sharded(_square_unit, units, num_workers=1)
        sharded = run_sharded(_square_unit, units, num_workers=3)
        assert sharded == serial

    def test_empty_units(self):
        assert run_sharded(_square_unit, [], num_workers=4) == []


class TestResolveWorkers:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "8")
        assert resolve_workers(2) == 2

    def test_env_variable_default(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "5")
        assert resolve_workers(None) == 5
        monkeypatch.delenv(parallel.WORKERS_ENV)
        assert resolve_workers(None) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "many")
        with pytest.raises(ValueError):
            resolve_workers(None)

    def test_floor_of_one(self):
        assert resolve_workers(0) == 1
        assert resolve_workers(-3) == 1


class TestDeterminism:
    def test_unit_seed_is_stable(self):
        assert unit_seed(0, "table3") == unit_seed(0, "table3")
        assert unit_seed(0, "table3") != unit_seed(0, "table4")
        assert unit_seed(1, "table3") != unit_seed(0, "table3")

    def test_sharded_eval_units_bit_for_bit(self):
        """The perfbench evaluation unit: serial == sharded, exactly."""
        seeds = [0, 1]
        serial = run_sharded(_sharded_eval_unit, seeds, num_workers=1)
        sharded = run_sharded(_sharded_eval_unit, seeds, num_workers=2)
        assert serial == sharded  # dict float equality — bit-for-bit

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method(allow_none=False) != "fork",
        reason="monkeypatched registry entries only reach workers under the fork start method",
    )
    def test_registered_experiment_serial_equals_sharded(self, monkeypatch):
        """A (cheap) registry experiment reproduces identically when sharded."""
        spec = ExperimentSpec(
            experiment_id="tiny_table2",
            paper_reference="Table II",
            description="xa_like statistics only (test fixture)",
            runner=lambda context: run_table2_dataset_statistics(context, dataset_names=("xa_like",)),
            benchmark_target="-",
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "tiny_table2", spec)
        serial = run_experiments(["tiny_table2"], profile_name="smoke", num_workers=1)
        sharded = run_experiments(["tiny_table2", "tiny_table2"], profile_name="smoke", num_workers=2)
        assert serial["tiny_table2"].to_dict() == sharded["tiny_table2"].to_dict()


class TestRegistryWiring:
    def test_run_registered_rejects_unknown_ids(self):
        with pytest.raises(KeyError):
            run_registered(["table99"])

    def test_run_registered_uses_env_workers(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "1")
        spec = ExperimentSpec(
            experiment_id="tiny_env",
            paper_reference="-",
            description="-",
            runner=lambda context: run_table2_dataset_statistics(context, dataset_names=("xa_like",)),
            benchmark_target="-",
        )
        monkeypatch.setitem(registry.EXPERIMENTS, "tiny_env", spec)
        result = run_registered(["tiny_env"], profile_name="smoke")
        assert "xa_like" in result["tiny_env"].rows
