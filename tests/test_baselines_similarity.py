"""Tests for the classical trajectory-similarity measures (`repro.baselines.similarity`)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.similarity import (
    CLASSICAL_SIMILARITY_MEASURES,
    ClassicalSimilarity,
    dtw_distance,
    edr_distance,
    frechet_distance,
    lcss_distance,
)
from repro.data.trajectory import Trajectory
from repro.roadnet.generators import grid_city


def _curve(seed: int, length: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.normal(scale=0.3, size=(length, 2)), axis=0)


curves = st.integers(min_value=0, max_value=500)


class TestDistanceAxioms:
    @pytest.mark.parametrize("name", sorted(CLASSICAL_SIMILARITY_MEASURES))
    def test_self_distance_is_minimal(self, name):
        measure = CLASSICAL_SIMILARITY_MEASURES[name]
        curve = _curve(0)
        assert measure(curve, curve) == pytest.approx(0.0, abs=1e-9)

    @pytest.mark.parametrize("name", sorted(CLASSICAL_SIMILARITY_MEASURES))
    def test_non_negative(self, name):
        measure = CLASSICAL_SIMILARITY_MEASURES[name]
        assert measure(_curve(1), _curve(2)) >= 0.0

    @given(seed_a=curves, seed_b=curves)
    @settings(max_examples=20, deadline=None)
    def test_dtw_and_frechet_symmetry(self, seed_a, seed_b):
        a, b = _curve(seed_a), _curve(seed_b)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))
        assert frechet_distance(a, b) == pytest.approx(frechet_distance(b, a))

    def test_dtw_detects_displacement(self):
        base = _curve(3)
        shifted = base + np.array([5.0, 0.0])
        assert dtw_distance(base, shifted) > dtw_distance(base, base + 0.01)

    def test_frechet_is_at_least_endpoint_gap(self):
        a = _curve(4)
        b = a.copy()
        b[-1] += np.array([2.0, 0.0])
        assert frechet_distance(a, b) >= 2.0 - 1e-9


class TestThresholdMeasures:
    def test_lcss_identical_is_zero_and_disjoint_is_one(self):
        curve = _curve(5)
        far = curve + 100.0
        assert lcss_distance(curve, curve) == pytest.approx(0.0)
        assert lcss_distance(curve, far) == pytest.approx(1.0)

    def test_edr_bounded_by_longest_length(self):
        a, b = _curve(6, length=6), _curve(7, length=10)
        value = edr_distance(a, b)
        assert 0.0 <= value <= 1.0 or value <= max(len(a), len(b))

    @given(seed_a=curves, seed_b=curves)
    @settings(max_examples=20, deadline=None)
    def test_lcss_stays_in_unit_interval(self, seed_a, seed_b):
        value = lcss_distance(_curve(seed_a), _curve(seed_b))
        assert 0.0 <= value <= 1.0


class TestClassicalSimilarityWrapper:
    @pytest.fixture(scope="class")
    def network(self):
        return grid_city(rows=3, cols=3, block_km=0.5, seed=0)

    @pytest.fixture(scope="class")
    def trajectories(self, network):
        rng = np.random.default_rng(1)
        result = []
        for index in range(3):
            segments = network.random_walk(index, length=6, rng=rng)
            timestamps = [float(60 * i) for i in range(len(segments))]
            result.append(Trajectory(trajectory_id=index, user_id=0, segments=segments, timestamps=timestamps))
        return result

    def test_known_methods_build(self, network):
        for name in CLASSICAL_SIMILARITY_MEASURES:
            ClassicalSimilarity(network, method=name)

    def test_unknown_method_raises(self, network):
        with pytest.raises((KeyError, ValueError)):
            ClassicalSimilarity(network, method="cosine")

    def test_self_similarity_is_best(self, network, trajectories):
        measure = ClassicalSimilarity(network, method="dtw")
        query = trajectories[0]
        self_distance = measure(query, query)
        other_distances = [measure(query, other) for other in trajectories[1:]]
        assert all(self_distance <= d + 1e-9 for d in other_distances)

    def test_coordinates_shape(self, network, trajectories):
        measure = ClassicalSimilarity(network, method="lcss")
        coords = measure.coordinates(trajectories[0])
        assert coords.shape == (len(trajectories[0]), 2)
