"""BIGCity reproduction library.

``repro`` implements the BIGCity universal spatiotemporal model (ICDE 2025)
together with every substrate it depends on:

* :mod:`repro.nn` — a NumPy neural-network runtime (autograd, transformer,
  GAT, LoRA, optimisers).
* :mod:`repro.roadnet` — road-network representation and synthetic city
  generators.
* :mod:`repro.data` — trajectories, traffic states, the mobility simulator
  that stands in for the BJ/XA/CD datasets, loaders and map matching.
* :mod:`repro.core` — the paper's contribution: ST-units, the spatiotemporal
  tokenizer, task-oriented prompts, the LoRA-adapted causal backbone, the
  general task heads and the two-stage training procedure.
* :mod:`repro.tasks` — the eight evaluation tasks and their metrics.
* :mod:`repro.baselines` — re-implementations of the 18+ comparison methods.
* :mod:`repro.eval` — the experiment harness regenerating every table and
  figure of the paper's evaluation section.
"""

__version__ = "1.0.0"

__all__ = [
    "nn",
    "roadnet",
    "data",
    "core",
    "tasks",
    "baselines",
    "eval",
]
