"""Synthetic open-loop load generator for the serving layer.

Open-loop means arrivals do not wait for responses: request ``i`` is
submitted at a Poisson arrival time drawn independently of how the service
is doing, which is how real user traffic behaves and what exposes queueing
delay (a closed-loop client can never build a backlog).  The generator is
deterministic given its seed — the *trace* (which requests, in which
order, at which offsets) is reproducible, so batched-vs-serial comparisons
run the exact same workload.

Three entry points:

* :func:`build_request_trace` — a seeded mixed-task request trace over a
  :class:`~repro.data.datasets.CityDataset` (synthetic presets included);
* :func:`run_open_loop` — submit a trace against a running
  :class:`~repro.serving.service.ServingService` at Poisson arrival times
  (or as an instantaneous backlog with ``rate_hz=None``) and gather the
  metrics summary plus per-request results;
* :func:`run_loadgen` — the packaged experiment: same trace executed
  serially (the offline baseline via the shared execution helper) and
  through the service, returning the ``serving`` metrics section used by
  :mod:`repro.eval.perfbench` and the ``repro loadgen`` CLI.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import CityDataset
from repro.serving.execution import results_equal, run_serial_trace
from repro.serving.pool import ModelPool
from repro.serving.queue import AdmissionTimeout, QueueClosed, QueueFull
from repro.serving.requests import (
    NextHopRequest,
    RecoveryRequest,
    RequestFailed,
    ResultHandle,
    ServingRequest,
    TrafficImputationRequest,
    TrafficPredictionRequest,
)
from repro.serving.resilience import CircuitOpen
from repro.serving.service import ServingConfig, ServingService

__all__ = [
    "LoadGenConfig",
    "build_request_trace",
    "poisson_arrivals",
    "run_open_loop",
    "run_loadgen",
]


@dataclass(frozen=True)
class LoadGenConfig:
    """Shape of the synthetic workload."""

    num_requests: int = 32
    #: mean arrival rate (Poisson); ``None`` submits everything at t=0
    #: (a pure backlog drain, the throughput-comparison mode).
    rate_hz: Optional[float] = 40.0
    #: relative frequency of each request kind; kinds a dataset cannot
    #: serve (traffic tasks without traffic states) are dropped and the
    #: remaining weights renormalised.
    mix: Tuple[Tuple[str, float], ...] = (
        ("next_hop", 0.7),
        ("recovery", 0.1),
        ("traffic_prediction", 0.1),
        ("traffic_imputation", 0.1),
    )
    #: rollout depth of generated next-hop requests.
    steps: int = 2
    #: history/horizon of generated traffic-prediction requests.
    history: int = 4
    horizon: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if self.rate_hz is not None and self.rate_hz <= 0:
            raise ValueError("rate_hz must be positive (or None for a backlog)")


def poisson_arrivals(num_requests: int, rate_hz: float, seed: int = 0) -> np.ndarray:
    """Cumulative arrival offsets (seconds) of a Poisson process at ``rate_hz``."""
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=1.0 / rate_hz, size=num_requests)
    arrivals = np.cumsum(gaps)
    arrivals[0] = 0.0  # first request fires immediately; only gaps matter
    return arrivals


def build_request_trace(dataset: CityDataset, config: Optional[LoadGenConfig] = None) -> List[ServingRequest]:
    """A seeded, reproducible mixed-task request trace over ``dataset``."""
    config = config or LoadGenConfig()
    rng = np.random.default_rng(config.seed)
    trajectories = [t for t in dataset.test_trajectories if len(t) >= 4]
    if not trajectories:
        trajectories = [t for t in dataset.trajectories if len(t) >= 4]
    if not trajectories:
        raise ValueError("dataset has no trajectory of length >= 4 to build requests from")

    mix = dict(config.mix)
    if dataset.traffic_states is None:
        mix.pop("traffic_prediction", None)
        mix.pop("traffic_imputation", None)
    kinds = sorted(mix)
    weights = np.asarray([mix[kind] for kind in kinds], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError("request mix has no positive weight")
    weights = weights / weights.sum()

    trace: List[ServingRequest] = []
    for _ in range(config.num_requests):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        if kind == "next_hop":
            trajectory = trajectories[int(rng.integers(len(trajectories)))]
            trace.append(NextHopRequest(trajectory=trajectory, steps=config.steps))
        elif kind == "recovery":
            trajectory = trajectories[int(rng.integers(len(trajectories)))]
            # keep both endpoints and every other interior sample, so each
            # gap is a single missing position between two observations.
            kept = tuple(range(0, len(trajectory), 2)) + (len(trajectory) - 1,)
            trace.append(RecoveryRequest(trajectory=trajectory, kept_indices=tuple(sorted(set(kept)))))
        elif kind == "traffic_prediction":
            states = dataset.traffic_states
            segment = int(rng.integers(states.num_segments))
            start = int(rng.integers(max(states.num_slices - config.history - config.horizon, 1)))
            trace.append(
                TrafficPredictionRequest(
                    segment_id=segment,
                    start_slice=start,
                    history=config.history,
                    horizon=config.horizon,
                )
            )
        elif kind == "traffic_imputation":
            states = dataset.traffic_states
            segment = int(rng.integers(states.num_segments))
            num_slices = min(config.history + 2, states.num_slices)
            start = int(rng.integers(max(states.num_slices - num_slices, 1)))
            masked = (int(rng.integers(1, max(num_slices - 1, 2))),)
            trace.append(
                TrafficImputationRequest(
                    segment_id=segment,
                    start_slice=start,
                    num_slices=num_slices,
                    masked_positions=masked,
                )
            )
        else:
            raise ValueError(f"unknown request kind {kind!r} in mix")
    return trace


def run_open_loop(
    service: ServingService,
    trace: Sequence[ServingRequest],
    rate_hz: Optional[float] = None,
    seed: int = 0,
    timeout_s: float = 60.0,
) -> Tuple[List, Dict[str, float]]:
    """Submit ``trace`` open-loop against a *running* service.

    With ``rate_hz`` set, request ``i`` is submitted at its Poisson arrival
    offset (submission never waits for earlier results); with ``None`` the
    whole trace is submitted instantly — a backlog drain that measures peak
    continuous-batching throughput.  Returns ``(results, metrics_summary)``
    with results in trace order.

    The run never aborts on a per-request failure: a request the service
    rejects at admission (``QueueFull``/``AdmissionTimeout``/
    ``CircuitOpen``), fails server-side (``RequestFailed``, including
    deadline sheds) or that never completes within ``timeout_s`` yields
    ``None`` in the results list and is counted in the summary's
    ``loadgen_rejected`` / ``loadgen_failed`` / ``loadgen_timeouts``
    fields; ``failure_rate`` is their combined fraction of the trace.
    """
    offsets = (
        poisson_arrivals(len(trace), rate_hz, seed=seed)
        if rate_hz is not None
        else np.zeros(len(trace))
    )
    handles: List[Optional[ResultHandle]] = []
    rejected = 0
    start = time.monotonic()
    for request, offset in zip(trace, offsets):
        delay = start + float(offset) - time.monotonic()
        if delay > 0:
            time.sleep(delay)
        try:
            handles.append(service.submit(request))
        except (QueueFull, AdmissionTimeout, QueueClosed, CircuitOpen):
            handles.append(None)
            rejected += 1
    results: List = []
    failed = 0
    timeouts = 0
    for handle in handles:
        if handle is None:
            results.append(None)
            continue
        try:
            results.append(handle.result(timeout=timeout_s))
        except RequestFailed:
            results.append(None)
            failed += 1
        except TimeoutError:
            results.append(None)
            timeouts += 1
    summary = service.metrics.summary()
    summary["loadgen_rejected"] = float(rejected)
    summary["loadgen_failed"] = float(failed)
    summary["loadgen_timeouts"] = float(timeouts)
    summary["failure_rate"] = (rejected + failed + timeouts) / max(len(trace), 1)
    return results, summary


def run_loadgen(
    model,
    dataset: CityDataset,
    config: Optional[LoadGenConfig] = None,
    serving_config: Optional[ServingConfig] = None,
    pool: Optional[ModelPool] = None,
    faults=None,
) -> Dict[str, float]:
    """Run one packaged load experiment: serial baseline vs continuous batching.

    The same seeded trace is executed twice — one request at a time through
    the shared serial helper, then open-loop through a fresh
    :class:`ServingService` (over ``pool`` when given, else a single-replica
    pool wrapping ``model``).  With only a pool given, the serial baseline
    borrows a replica and returns it before the service starts.  The
    returned flat dict is the ``serving`` perfbench section: serial/batched
    wall-clock and requests/s, latency percentiles, batch-occupancy
    histogram, queue depths, failure counters (all zero without an injected
    ``faults`` plan), and an ``identical`` flag asserting the two
    executions matched bit-for-bit over every request that completed.
    """
    if model is None and pool is None:
        raise ValueError("run_loadgen needs a model, a pool, or both")
    config = config or LoadGenConfig()
    serving_config = serving_config or ServingConfig()
    trace = build_request_trace(dataset, config)

    if model is not None:
        started = time.perf_counter()
        serial_results = run_serial_trace(model, trace)
        serial_s = time.perf_counter() - started
    else:
        with pool.lease() as replica:
            started = time.perf_counter()
            serial_results = run_serial_trace(replica, trace)
            serial_s = time.perf_counter() - started

    service = ServingService(pool or ModelPool([model]), serving_config, faults=faults)
    service.start()
    try:
        started = time.perf_counter()
        batched_results, summary = run_open_loop(
            service, trace, rate_hz=config.rate_hz, seed=config.seed
        )
        batched_s = time.perf_counter() - started
    finally:
        service.stop()

    # Equality is judged over requests that actually completed; failed or
    # rejected requests are accounted separately via failure_rate.
    identical = all(
        batched is None or results_equal(serial, batched)
        for serial, batched in zip(serial_results, batched_results)
    )
    out: Dict[str, float] = {
        "requests": float(len(trace)),
        "serial_s": serial_s,
        "batched_s": batched_s,
        "serial_requests_per_s": len(trace) / serial_s if serial_s > 0 else float("inf"),
        "requests_per_s": len(trace) / batched_s if batched_s > 0 else float("inf"),
        "speedup": serial_s / batched_s if batched_s > 0 else float("inf"),
        "identical": 1.0 if identical else 0.0,
    }
    for key, value in summary.items():
        # the open-loop summary's own requests/duration fields would
        # shadow the trace-level ones above; keep the detailed names.
        if key in ("requests", "requests_per_s", "duration_s"):
            continue
        out[key] = value
    return out
