"""Resilience primitives of the serving layer: typed failures and retries.

The serving stack distinguishes failure *classes* because clients and
recovery mechanisms react differently to each:

``DeadlineExceeded``
    the request's deadline passed before a scheduler tick executed it —
    the worker sheds it at dequeue time instead of burning model time on
    an answer nobody is waiting for;
``TransientError``
    a failure worth retrying (momentary resource pressure, an injected
    transient fault); :func:`call_with_retries` re-attempts these under a
    :class:`RetryPolicy`, every other exception propagates immediately;
``CircuitOpen``
    the service-level circuit breaker rejected the request at submission
    because too few healthy model replicas remain;
``ServiceStopped``
    ``submit()`` after ``stop()`` — a lifecycle error, not an overload
    signal (it subclasses :class:`~repro.serving.queue.QueueClosed` so
    callers written against the queue-internal exception keep working).

:class:`RetryPolicy` is deterministic: the backoff delays — exponential
with seeded jitter — are a pure function of the policy's fields, so a
chaos test can assert the exact retry schedule and two runs with the same
seed behave identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, TypeVar

import numpy as np

from repro.serving.queue import QueueClosed
from repro.serving.requests import RequestFailed

__all__ = [
    "CircuitOpen",
    "DeadlineExceeded",
    "RetryPolicy",
    "ServiceStopped",
    "TransientError",
    "call_with_retries",
    "is_transient",
]

T = TypeVar("T")


class DeadlineExceeded(RequestFailed):
    """The request's deadline passed before the service executed it."""


class CircuitOpen(RuntimeError):
    """Submission rejected: too few healthy replicas to serve reliably."""


class ServiceStopped(QueueClosed):
    """``submit()`` was called on a service that has been stopped."""


class TransientError(RuntimeError):
    """A failure that is expected to succeed on retry."""

    transient = True


def is_transient(error: BaseException) -> bool:
    """Whether ``error`` is retryable (``.transient`` truthy by convention)."""
    return bool(getattr(error, "transient", False))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delays()`` returns the full backoff schedule up front — delay ``i``
    is slept after failed attempt ``i`` — computed from a seeded generator
    so the schedule is reproducible and testable.  Only errors classified
    transient by :func:`is_transient` are retried.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    #: each delay is scaled by ``1 + jitter_frac * u`` with seeded ``u ∈ [0, 1)``.
    jitter_frac: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.jitter_frac < 0:
            raise ValueError("jitter_frac must be >= 0")

    def delays(self) -> List[float]:
        """The deterministic backoff schedule (``max_attempts - 1`` delays)."""
        rng = np.random.default_rng(self.seed)
        return [
            self.backoff_base_s
            * self.backoff_multiplier**attempt
            * (1.0 + self.jitter_frac * float(rng.random()))
            for attempt in range(self.max_attempts - 1)
        ]


def call_with_retries(
    fn: Callable[[], T],
    policy: Optional[RetryPolicy],
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn``, retrying transient failures under ``policy``.

    Non-transient errors, and transient errors on the final attempt,
    propagate unchanged.  ``on_retry(attempt_index, error)`` fires before
    each backoff sleep — the scheduler uses it to count retries.  With
    ``policy=None`` this is a plain call (the no-fault fast path).
    """
    if policy is None:
        return fn()
    delays = policy.delays()
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - classified below
            if not is_transient(error) or attempt >= policy.max_attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt, error)
            sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
