"""The continuous-batching tick: fold a drained batch into few model calls.

:func:`run_tick` receives the handles one scheduler iteration drained from
the admission queue and a leased model replica, and answers every handle:

1. group handles by ``request.batch_key()`` **preserving arrival order**;
2. every group of two or more compatible requests becomes ONE model call
   through :func:`repro.serving.execution.execute_batch` — next-hop
   rollouts use the right-padded KV-cached decode batch (PR 4), and
   recovery / traffic prediction / traffic imputation use the padded
   single-pass prompt batches (``recover_trajectories_batch`` and
   friends);
3. groups of one run through the shared serial helper
   :func:`repro.serving.execution.execute_request`.

Because every ``*_batch`` model entry point is pinned bit-for-bit against
its serial twin, a tick's results equal serial per-request execution exactly
— the property ``tests/test_serving_scheduler.py`` asserts end-to-end over
mixed traces.

Two fault-tolerance mechanisms live in the tick (both inert by default):

* **retries** — with a :class:`~repro.serving.resilience.RetryPolicy`,
  model calls that raise a *transient* error are re-attempted under the
  policy's deterministic backoff schedule before the failure is published;
* **poison-batch isolation** — when a folded batch call raises, the tick
  re-runs the group's members serially through ``execute_request``, so
  only the genuinely poisonous request(s) fail and every survivor still
  gets the bit-identical serial answer (``tests/test_serving_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.serving.execution import execute_batch, execute_request
from repro.serving.requests import ResultHandle
from repro.serving.resilience import RetryPolicy, call_with_retries

__all__ = ["run_tick", "TickResult"]


@dataclass
class TickResult:
    """What one scheduler tick did (feeds the occupancy/failure metrics)."""

    batch_size: int
    #: number of underlying model calls the batch was folded into.
    model_calls: int
    #: handles answered by folded batch call(s) (any request kind).
    batched_requests: int
    #: handles that ended in failure (after retries / isolation).
    failed: int = 0
    #: retry attempts consumed by transient failures.
    retried: int = 0
    #: handles rescued by serial re-execution after a poisoned batch call.
    isolated: int = 0
    #: model-call invocations that raised (the replica-health signal).
    call_errors: int = 0


def run_tick(
    model,
    handles: Sequence[ResultHandle],
    retry_policy: Optional[RetryPolicy] = None,
    faults=None,
) -> TickResult:
    """Execute one drained batch on a leased model replica.

    Every handle is completed (or failed) exactly once before this returns;
    errors are per-request — a poisoned batch member is isolated by serial
    re-execution, so it cannot fail its batch-mates, let alone the tick.
    """
    batch_size = len(handles)
    for handle in handles:
        handle.mark_started(batch_size)

    groups: Dict[Tuple, List[ResultHandle]] = {}
    for handle in handles:
        groups.setdefault(handle.request.batch_key(), []).append(handle)

    counters = {"model_calls": 0, "batched": 0, "failed": 0, "retried": 0, "isolated": 0, "call_errors": 0}

    def on_retry(attempt: int, error: BaseException) -> None:
        counters["retried"] += 1
        counters["call_errors"] += 1

    def run_serially(handle: ResultHandle) -> None:
        def call():
            if faults is not None:
                faults.on_model(model)
            return execute_request(model, handle.request, faults=faults)

        try:
            result = call_with_retries(call, retry_policy, on_retry=on_retry)
        except Exception as error:  # noqa: BLE001 - published to this client only
            counters["failed"] += 1
            counters["call_errors"] += 1
            handle.fail(error)
        else:
            counters["model_calls"] += 1
            handle.complete(result)

    for group in groups.values():
        if len(group) > 1:

            def batch_call(group=group):
                if faults is not None:
                    faults.on_model(model)
                    faults.on_batch([handle.request for handle in group])
                return execute_batch(model, [handle.request for handle in group])

            try:
                results = call_with_retries(batch_call, retry_policy, on_retry=on_retry)
            except Exception:  # noqa: BLE001 - isolate: only the poison fails
                counters["call_errors"] += 1
                failed_before = counters["failed"]
                for handle in group:
                    run_serially(handle)
                counters["isolated"] += len(group) - (counters["failed"] - failed_before)
            else:
                counters["model_calls"] += 1
                counters["batched"] += len(group)
                for handle, result in zip(group, results):
                    if faults is not None:
                        result = faults.transform_result(handle.request, result)
                    handle.complete(result)
        else:
            for handle in group:
                run_serially(handle)

    return TickResult(
        batch_size=batch_size,
        model_calls=counters["model_calls"],
        batched_requests=counters["batched"],
        failed=counters["failed"],
        retried=counters["retried"],
        isolated=counters["isolated"],
        call_errors=counters["call_errors"],
    )
