"""The continuous-batching tick: fold a drained batch into few model calls.

:func:`run_tick` receives the handles one scheduler iteration drained from
the admission queue and a leased model replica, and answers every handle:

1. group handles by ``request.batch_key()`` **preserving arrival order**;
2. a group of compatible next-hop rollouts becomes ONE call to
   ``BIGCity.rollout_next_hops_batch`` — one right-padded KV-cached batch
   with per-row ``position_ids``, the kernel PR 4 built;
3. every other group (recovery, traffic prediction/imputation — and any
   lone next-hop request) runs through the shared serial helper
   :func:`repro.serving.execution.execute_request`.

Because ``rollout_next_hops_batch`` is pinned bit-for-bit against the
serial rollout, a tick's results equal serial per-request execution exactly
— the property ``tests/test_serving_scheduler.py`` asserts end-to-end over
mixed traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.serving.execution import execute_request
from repro.serving.requests import NextHopRequest, ResultHandle

__all__ = ["run_tick", "TickResult"]


@dataclass
class TickResult:
    """What one scheduler tick did (feeds the batch-occupancy metrics)."""

    batch_size: int
    #: number of underlying model calls the batch was folded into.
    model_calls: int
    #: handles answered by the folded next-hop batch call(s).
    batched_requests: int


def run_tick(model, handles: Sequence[ResultHandle]) -> TickResult:
    """Execute one drained batch on a leased model replica.

    Every handle is completed (or failed) exactly once before this returns;
    errors are per-group, so one failing request cannot wedge the tick.
    """
    batch_size = len(handles)
    for handle in handles:
        handle.mark_started(batch_size)

    groups: Dict[Tuple, List[ResultHandle]] = {}
    for handle in handles:
        groups.setdefault(handle.request.batch_key(), []).append(handle)

    model_calls = 0
    batched_requests = 0
    for key, group in groups.items():
        is_next_hop_fold = isinstance(group[0].request, NextHopRequest) and len(group) > 1
        try:
            if is_next_hop_fold:
                first = group[0].request
                rollouts = model.rollout_next_hops_batch(
                    [handle.request.trajectory for handle in group],
                    steps=first.steps,
                    constrain_to_network=first.constrain_to_network,
                )
                model_calls += 1
                batched_requests += len(group)
                for handle, rollout in zip(group, rollouts):
                    handle.complete(rollout)
            else:
                for handle in group:
                    handle.complete(execute_request(model, handle.request))
                    model_calls += 1
        except Exception as error:  # noqa: BLE001 - published to the client
            for handle in group:
                if not handle.done():
                    handle.fail(error)
    return TickResult(batch_size=batch_size, model_calls=model_calls, batched_requests=batched_requests)
