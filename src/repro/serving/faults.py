"""Deterministic fault injection for the serving layer.

A serving stack you cannot break on purpose is one you cannot trust under
load, so every recovery path in :mod:`repro.serving` is driven by an
injectable :class:`FaultPlan` rather than by hoping real failures show up
in CI.  The plan is threaded through the stack behind a no-op default
(``faults=None`` everywhere, so the production path pays nothing):

* :func:`~repro.serving.execution.execute_request` calls
  :meth:`FaultPlan.on_execute` before the model call (raise / delay) and
  :meth:`FaultPlan.transform_result` after it (corruption);
* :func:`~repro.serving.scheduler.run_tick` calls
  :meth:`FaultPlan.on_model` before every model call (broken-replica
  faults) and :meth:`FaultPlan.on_batch` before a folded next-hop batch
  (a poisoned member fails the whole fold, exercising isolation);
* :meth:`~repro.serving.pool.ModelPool.acquire` calls
  :meth:`FaultPlan.on_lease` (a crash *outside* ``run_tick``, exercising
  the worker supervisor) and the service worker calls
  :meth:`FaultPlan.on_tick_start` once per drained batch.

Faults target requests by their ``tag`` field (set
``NextHopRequest(..., tag="poison")`` when building a chaos trace),
replicas by object identity, and ticks/leases by 1-based counter.  Every
trigger is recorded in :attr:`FaultPlan.fired` so tests can assert the
plan actually exercised the path under test.  The plan is deterministic:
which faults fire depends only on the plan's configuration and the order
of hook calls, and the optional delay jitter is drawn from the plan's
seeded generator.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.resilience import TransientError

__all__ = ["FaultPlan", "InjectedFault", "TransientInjectedFault"]


class InjectedFault(RuntimeError):
    """A failure raised on purpose by a :class:`FaultPlan` (not retryable)."""


class TransientInjectedFault(InjectedFault, TransientError):
    """An injected failure classified transient (the retry path's fuel)."""

    transient = True


@dataclass
class _Rule:
    """One configured fault: what happens and how many times it may fire."""

    kind: str  # "error" | "delay" | "corrupt"
    remaining: Optional[int] = None  # None = fires every time
    transient: bool = False
    delay_s: float = 0.0
    jitter_s: float = 0.0

    def take(self) -> bool:
        """Consume one firing; False when the rule is exhausted."""
        if self.remaining is None:
            return True
        if self.remaining <= 0:
            return False
        self.remaining -= 1
        return True


class FaultPlan:
    """A reproducible plan of which requests, replicas, leases and ticks fail.

    All hooks are thread-safe (workers call them concurrently) and no-ops
    when nothing matches, so an empty plan behaves exactly like
    ``faults=None``.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._lock = threading.RLock()
        self._request_rules: Dict[str, List[_Rule]] = {}
        self._broken_model_ids: set = set()
        self._lease_faults: set = set()
        self._tick_faults: set = set()
        self._lease_count = 0
        self._tick_count = 0
        #: audit log of every fault that actually fired, in firing order.
        self.fired: List[str] = []

    # -- configuration (chainable) --------------------------------------
    def fail_request(self, tag: str, times: Optional[int] = None, transient: bool = False) -> "FaultPlan":
        """Requests tagged ``tag`` raise (``times`` firings; None = always)."""
        rule = _Rule(kind="error", remaining=times, transient=transient)
        with self._lock:
            self._request_rules.setdefault(tag, []).append(rule)
        return self

    def delay_request(self, tag: str, delay_s: float, times: Optional[int] = None, jitter_s: float = 0.0) -> "FaultPlan":
        """Requests tagged ``tag`` sleep ``delay_s`` (+ seeded jitter) before executing."""
        rule = _Rule(kind="delay", remaining=times, delay_s=delay_s, jitter_s=jitter_s)
        with self._lock:
            self._request_rules.setdefault(tag, []).append(rule)
        return self

    def corrupt_request(self, tag: str, times: Optional[int] = None) -> "FaultPlan":
        """Requests tagged ``tag`` return a corrupted result (all-``-1``)."""
        rule = _Rule(kind="corrupt", remaining=times)
        with self._lock:
            self._request_rules.setdefault(tag, []).append(rule)
        return self

    def break_replica(self, model: object) -> "FaultPlan":
        """Every model call on ``model`` raises until the replica is replaced.

        Targeting is by object identity, so a pool reload (a *fresh* model
        object from the checkpoint) heals the fault naturally — exactly how
        a corrupted-then-reloaded replica behaves.
        """
        with self._lock:
            self._broken_model_ids.add(id(model))
        return self

    def heal_replica(self, model: object) -> "FaultPlan":
        with self._lock:
            self._broken_model_ids.discard(id(model))
        return self

    def fail_lease(self, *lease_numbers: int) -> "FaultPlan":
        """The n-th :meth:`ModelPool.acquire` calls raise (1-based, global)."""
        with self._lock:
            self._lease_faults.update(int(n) for n in lease_numbers)
        return self

    def crash_tick(self, *tick_numbers: int) -> "FaultPlan":
        """The n-th scheduler ticks crash before leasing a replica (1-based).

        This fires in the worker loop *outside* ``run_tick``'s per-group
        error handling — the path the worker supervisor exists for.
        """
        with self._lock:
            self._tick_faults.update(int(n) for n in tick_numbers)
        return self

    # -- hooks (called by the serving stack) ----------------------------
    def _match(self, request: object, kinds: Sequence[str]) -> Optional[_Rule]:
        tag = getattr(request, "tag", None)
        if tag is None:
            return None
        with self._lock:
            for rule in self._request_rules.get(tag, ()):
                if rule.kind in kinds and rule.take():
                    return rule
        return None

    def on_execute(self, request: object) -> None:
        """Delay and/or raise for one serial request execution."""
        delay = self._match(request, ("delay",))
        if delay is not None:
            with self._lock:
                pause = delay.delay_s + delay.jitter_s * float(self._rng.random())
                self.fired.append(f"delay:{getattr(request, 'tag', None)}")
            time.sleep(pause)
        rule = self._match(request, ("error",))
        if rule is not None:
            tag = getattr(request, "tag", None)
            with self._lock:
                self.fired.append(f"{'transient' if rule.transient else 'error'}:{tag}")
            if rule.transient:
                raise TransientInjectedFault(f"injected transient fault on request tagged {tag!r}")
            raise InjectedFault(f"injected fault on request tagged {tag!r}")

    def transform_result(self, request: object, result: object) -> object:
        """Corrupt the result of a matching request (all elements become -1)."""
        rule = self._match(request, ("corrupt",))
        if rule is None:
            return result
        with self._lock:
            self.fired.append(f"corrupt:{getattr(request, 'tag', None)}")
        corrupted = np.asarray(result)
        if corrupted.dtype.kind in "iuf":
            return corrupted * 0 - 1
        return "CORRUPTED"

    def on_batch(self, requests: Sequence[object]) -> None:
        """Fail a folded batch call when any member is poisoned.

        Each poisoned member consumes one firing here and will consume
        another when the scheduler's isolation fallback re-runs it serially
        — configure ``fail_request(tag)`` with ``times=None`` (the default)
        for a genuinely poisonous request.
        """
        for request in requests:
            self.on_execute(request)

    def on_model(self, model: object) -> None:
        """Raise when the leased replica has been broken by the plan."""
        with self._lock:
            broken = id(model) in self._broken_model_ids
            if broken:
                self.fired.append("replica")
        if broken:
            raise InjectedFault(f"injected replica fault on model id {id(model):#x}")

    def on_lease(self) -> None:
        """Raise on the configured 1-based acquire numbers."""
        with self._lock:
            self._lease_count += 1
            hit = self._lease_count in self._lease_faults
            if hit:
                self.fired.append(f"lease:{self._lease_count}")
        if hit:
            raise InjectedFault(f"injected fault on lease #{self._lease_count}")

    def on_tick_start(self, batch_size: int) -> None:
        """Raise on the configured 1-based tick numbers (pre-lease crash)."""
        with self._lock:
            self._tick_count += 1
            hit = self._tick_count in self._tick_faults
            if hit:
                self.fired.append(f"tick:{self._tick_count}")
        if hit:
            raise InjectedFault(
                f"injected crash on tick #{self._tick_count} (batch of {batch_size})"
            )
