"""Serving metrics: throughput, latency percentiles, batch occupancy, queue depth.

One :class:`ServingMetrics` instance is owned by the service and fed from
two sides: scheduler ticks record their batch size / queue depth /
duration, and completed handles record per-request latency splits (queue
wait vs service time).  ``summary()`` reduces everything to the flat
``{str: float}`` dictionary shape the perfbench report and the CLI table
both consume:

* ``requests_per_s`` — completed requests over the observation window;
* ``latency_p50_s`` / ``latency_p95_s`` / ``latency_p99_s`` — client
  latency percentiles (submission to completion);
* ``batch_occupancy_mean`` and a fixed-width histogram
  ``batch_occ_{1..max_batch_size}`` — how full scheduler ticks ran;
* ``queue_depth_max`` / ``queue_depth_mean`` — backlog pressure;
* ``folded`` — requests answered by a folded batch call (any kind: the
  scheduler folds every group of two or more batch-compatible requests
  into one ``*_batch`` model call);
* failure counters from the resilience layer — ``shed`` (deadline passed
  before execution), ``retried`` (transient-failure retry attempts),
  ``isolated`` (batch-mates rescued from a poisoned fold), ``failed``
  (requests that ended in error), ``respawned`` (crashed workers
  restarted by the supervisor), ``quarantined`` (replicas pulled from
  circulation) and ``rejected`` (submissions refused by the circuit
  breaker).  All zero on a healthy run.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.serving.requests import ResultHandle

__all__ = ["ServingMetrics", "latency_percentiles"]


def latency_percentiles(latencies: Sequence[float], quantiles: Sequence[float] = (50, 95, 99)) -> Dict[str, float]:
    """``{"latency_p50_s": ..., ...}`` via linear-interpolated percentiles."""
    values = np.asarray(sorted(latencies), dtype=np.float64)
    out: Dict[str, float] = {}
    for q in quantiles:
        key = f"latency_p{int(q)}_s"
        out[key] = float(np.percentile(values, q)) if values.size else 0.0
    return out


class ServingMetrics:
    """Thread-safe accumulator for one service run."""

    def __init__(self, max_batch_size: int) -> None:
        self.max_batch_size = max_batch_size
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._waits: List[float] = []
        self._batch_sizes: List[int] = []
        self._queue_depths: List[int] = []
        self._tick_durations: List[float] = []
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None
        self._counters: Dict[str, int] = {
            key: 0
            for key in ("folded", "shed", "retried", "isolated", "failed", "respawned", "quarantined", "rejected")
        }

    # ------------------------------------------------------------------
    def mark_started(self) -> None:
        with self._lock:
            self._started_at = time.monotonic()

    def mark_stopped(self) -> None:
        with self._lock:
            self._stopped_at = time.monotonic()

    def record_tick(self, batch_size: int, queue_depth: int, duration_s: float) -> None:
        with self._lock:
            self._batch_sizes.append(int(batch_size))
            self._queue_depths.append(int(queue_depth))
            self._tick_durations.append(float(duration_s))

    def record_completion(self, handle: ResultHandle) -> None:
        with self._lock:
            if handle.latency_s is not None:
                self._latencies.append(handle.latency_s)
            if handle.wait_s is not None:
                self._waits.append(handle.wait_s)

    def record_event(self, name: str, count: int = 1) -> None:
        """Bump one failure counter (``shed``/``retried``/``isolated``/...)."""
        if name not in self._counters:
            raise KeyError(f"unknown serving counter {name!r}; choose from {sorted(self._counters)}")
        with self._lock:
            self._counters[name] += int(count)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters[name]

    # ------------------------------------------------------------------
    @property
    def completed(self) -> int:
        with self._lock:
            return len(self._latencies)

    def batch_histogram(self) -> Dict[int, int]:
        """``{batch size: number of ticks that ran at that occupancy}``."""
        with self._lock:
            histogram = {size: 0 for size in range(1, self.max_batch_size + 1)}
            for size in self._batch_sizes:
                histogram[min(size, self.max_batch_size)] = histogram.get(min(size, self.max_batch_size), 0) + 1
            return histogram

    def summary(self) -> Dict[str, float]:
        with self._lock:
            latencies = list(self._latencies)
            waits = list(self._waits)
            batch_sizes = list(self._batch_sizes)
            queue_depths = list(self._queue_depths)
            counters = dict(self._counters)
            started, stopped = self._started_at, self._stopped_at
        duration = (stopped if stopped is not None else time.monotonic()) - (started or 0.0)
        duration = max(duration, 1e-9)
        out: Dict[str, float] = {
            "requests": float(len(latencies)),
            "duration_s": float(duration) if started is not None else 0.0,
            "requests_per_s": (len(latencies) / duration) if started is not None else 0.0,
            "ticks": float(len(batch_sizes)),
            "batch_occupancy_mean": float(np.mean(batch_sizes)) if batch_sizes else 0.0,
            "batch_occupancy_max": float(max(batch_sizes)) if batch_sizes else 0.0,
            "queue_depth_mean": float(np.mean(queue_depths)) if queue_depths else 0.0,
            "queue_depth_max": float(max(queue_depths)) if queue_depths else 0.0,
            "wait_mean_s": float(np.mean(waits)) if waits else 0.0,
        }
        out.update(latency_percentiles(latencies))
        for name, count in sorted(counters.items()):
            out[name] = float(count)
        for size, count in self.batch_histogram().items():
            out[f"batch_occ_{size}"] = float(count)
        return out
