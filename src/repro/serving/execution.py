"""Serial request execution — the single source of truth for "what should
this request return?".

Exactly one function, :func:`execute_request`, maps a
:class:`~repro.serving.requests.ServingRequest` to the single-prompt
``BIGCity`` call that answers it.  Every consumer that needs the serial
answer dispatches through it instead of re-implementing the rollout loop:

* the continuous-batching scheduler, for groups of one (a folded group
  dispatches through :func:`execute_batch` instead — the batched twin that
  maps a *group* of same-kind requests to one ``*_batch`` model call);
* the serial-equality oracle in ``tests/test_serving_scheduler.py`` and the
  ``serving`` perfbench section, which assert that continuous batching
  returns bit-for-bit what serial execution returns;
* the load generator's serial-throughput baseline.

This mirrors how :class:`repro.tasks.next_hop.NextHopEvaluator` scores
single-prompt calls offline — one request, one model call, no copy-pasted
per-task loops.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.serving.requests import (
    NextHopRequest,
    RecoveryRequest,
    ServingRequest,
    TrafficImputationRequest,
    TrafficPredictionRequest,
)

__all__ = ["execute_request", "execute_batch", "run_serial_trace", "results_equal"]


def execute_request(model, request: ServingRequest, faults=None):
    """Answer one request with the corresponding single-prompt model call.

    ``model`` is a :class:`repro.core.model.BIGCity`; every branch runs
    under the model helper's own ``no_grad`` scope and is deterministic, so
    this function doubles as the serial oracle the batched scheduler is
    equality-tested against.

    ``faults`` is an optional :class:`repro.serving.faults.FaultPlan`:
    ``on_execute`` may raise or delay before the model call and
    ``transform_result`` may corrupt the answer afterwards — both no-ops by
    default, so the oracle path is untouched unless a chaos test injects.
    """
    if faults is not None:
        faults.on_execute(request)
    result = _dispatch_request(model, request)
    if faults is not None:
        result = faults.transform_result(request, result)
    return result


def _dispatch_request(model, request: ServingRequest):
    if isinstance(request, NextHopRequest):
        return model.rollout_next_hops(
            request.trajectory,
            steps=request.steps,
            constrain_to_network=request.constrain_to_network,
        )
    if isinstance(request, RecoveryRequest):
        return model.recover_trajectory(
            request.trajectory,
            request.kept_indices,
            constrain_to_network=request.constrain_to_network,
        )
    if isinstance(request, TrafficPredictionRequest):
        return model.predict_traffic_state(
            request.segment_id,
            request.start_slice,
            request.history,
            request.horizon,
        )
    if isinstance(request, TrafficImputationRequest):
        return model.impute_traffic_state(
            request.segment_id,
            request.start_slice,
            request.num_slices,
            request.masked_positions,
        )
    raise TypeError(f"unsupported serving request type {type(request)!r}")


def execute_batch(model, requests: Sequence[ServingRequest]) -> List:
    """Answer a group of batch-compatible requests with ONE ``*_batch`` model call.

    ``requests`` must all share a ``batch_key()`` (the scheduler guarantees
    this), so they are of one kind and agree on every argument that changes
    decoding.  Results are returned in request order and are bit-for-bit what
    :func:`execute_request` returns per request, because every ``*_batch``
    model entry point is equality-pinned against its serial twin.
    """
    if not requests:
        return []
    first = requests[0]
    if isinstance(first, NextHopRequest):
        return list(
            model.rollout_next_hops_batch(
                [request.trajectory for request in requests],
                steps=first.steps,
                constrain_to_network=first.constrain_to_network,
            )
        )
    if isinstance(first, RecoveryRequest):
        return model.recover_trajectories_batch(
            [request.trajectory for request in requests],
            [request.kept_indices for request in requests],
            constrain_to_network=first.constrain_to_network,
        )
    if isinstance(first, TrafficPredictionRequest):
        return model.predict_traffic_states_batch(
            [(request.segment_id, request.start_slice, request.history, request.horizon) for request in requests]
        )
    if isinstance(first, TrafficImputationRequest):
        return model.impute_traffic_states_batch(
            [
                (request.segment_id, request.start_slice, request.num_slices, request.masked_positions)
                for request in requests
            ]
        )
    raise TypeError(f"unsupported serving request type {type(first)!r}")


def run_serial_trace(model, trace: Sequence[ServingRequest]) -> List:
    """Execute a request trace one request at a time, in order.

    This is the offline baseline the serving layer is compared against —
    both for correctness (results must match bit-for-bit) and for
    throughput (continuous batching must not be slower).
    """
    return [execute_request(model, request) for request in trace]


def results_equal(left, right) -> bool:
    """Bit-for-bit equality of two per-request results (arrays or scalars)."""
    left_array = np.asarray(left)
    right_array = np.asarray(right)
    return left_array.shape == right_array.shape and bool(np.array_equal(left_array, right_array))
