"""Warm model pool: replicas loaded once at startup, leased per tick.

Constructing a ``BIGCity`` model (tokenizer tables, backbone weights) takes
long enough that doing it on a request path would dominate p50 latency.
The pool therefore pays that cost once, *before* the service starts taking
traffic: ``from_checkpoint`` loads ``replicas`` independent copies of one
trained checkpoint through :func:`repro.core.checkpoints.load_bigcity`, and
scheduler ticks borrow a replica with :meth:`ModelPool.lease` — a blocking
checkout, so at most ``replicas`` ticks execute concurrently and a replica
is never shared by two ticks.

Every replica is rebuilt from the same ``.npz`` archive, so all replicas —
and any later fresh load of the same file — produce bit-identical outputs
(pinned by ``tests/test_serving_pool.py``).

**Replica health.** After each tick the worker reports the lease outcome
(:meth:`report_success` / :meth:`report_failure`).  A replica that observes
``quarantine_after`` *consecutive* failed leases is quarantined — removed
from circulation — and, when the pool knows how to rebuild it (a
``reloader``, which ``from_checkpoint`` wires to the checkpoint archive),
replaced by a freshly loaded copy.  Because a reload restores a
bit-identical replica, quarantining a healthy replica on a false positive
(e.g. a burst of poisonous requests) costs one reload and nothing else.
:meth:`healthy` counts replicas still in circulation; the service's
circuit breaker flips to reject-mode when it drops below the configured
minimum.
"""

from __future__ import annotations

import contextlib
import logging
import threading
import time
from typing import Callable, Dict, List, Optional

__all__ = ["ModelPool"]

logger = logging.getLogger("repro.serving")


class ModelPool:
    """A fixed set of interchangeable model replicas with blocking checkout."""

    def __init__(
        self,
        models: List,
        reloader: Optional[Callable[[], object]] = None,
        quarantine_after: Optional[int] = 3,
        faults=None,
    ) -> None:
        if not models:
            raise ValueError("a model pool needs at least one replica")
        if quarantine_after is not None and quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1 (or None to disable)")
        self._replicas = list(models)
        self._available: List = list(models)
        self._lock = threading.Lock()
        self._returned = threading.Condition(self._lock)
        #: wall-clock seconds spent constructing the replicas (0 when the
        #: caller built them; ``from_checkpoint`` records its warm-up cost).
        self.warmup_s: float = 0.0
        #: zero-argument factory producing a fresh replica (reload path).
        self.reloader = reloader
        #: consecutive failed leases before a replica is quarantined.
        self.quarantine_after = quarantine_after
        #: optional :class:`repro.serving.faults.FaultPlan` (lease faults).
        self.faults = faults
        self._consecutive_failures: Dict[int, int] = {id(m): 0 for m in models}
        self._retired_ids: set = set()
        self._quarantined_count = 0
        self._reloaded_count = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path,
        dataset,
        replicas: int = 1,
        strict_dataset: bool = True,
        quarantine_after: Optional[int] = 3,
        faults=None,
    ) -> "ModelPool":
        """Load ``replicas`` independent copies of one checkpoint (warm start).

        The checkpoint archive doubles as the reload source: a quarantined
        replica is replaced by a fresh ``load_bigcity`` of the same file.
        """
        from repro.core.checkpoints import load_bigcity

        if replicas < 1:
            raise ValueError("replicas must be >= 1")

        def reload_one():
            model, _metadata = load_bigcity(path, dataset, strict_dataset=strict_dataset)
            return model

        started = time.perf_counter()
        models = [reload_one() for _ in range(replicas)]
        pool = cls(models, reloader=reload_one, quarantine_after=quarantine_after, faults=faults)
        pool.warmup_s = time.perf_counter() - started
        return pool

    @classmethod
    def from_factory(
        cls,
        factory: Callable[[], object],
        replicas: int = 1,
        quarantine_after: Optional[int] = 3,
        faults=None,
    ) -> "ModelPool":
        """Build ``replicas`` models from a zero-argument factory (tests, demos)."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        started = time.perf_counter()
        pool = cls(
            [factory() for _ in range(replicas)],
            reloader=factory,
            quarantine_after=quarantine_after,
            faults=faults,
        )
        pool.warmup_s = time.perf_counter() - started
        return pool

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._replicas)

    def available(self) -> int:
        with self._lock:
            return len(self._available)

    def healthy(self) -> int:
        """Replicas still in circulation (leased or available, not quarantined)."""
        with self._lock:
            return len(self._replicas)

    @property
    def quarantined(self) -> int:
        """Total replicas ever quarantined (reloads do not decrement this)."""
        with self._lock:
            return self._quarantined_count

    @property
    def reloaded(self) -> int:
        with self._lock:
            return self._reloaded_count

    # ------------------------------------------------------------------
    def acquire(self, timeout_s: Optional[float] = None):
        """Check out a replica, blocking until one is returned."""
        if self.faults is not None:
            self.faults.on_lease()
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._returned:
            while not self._available:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"no model replica free within {timeout_s}s (pool size {self.size})"
                    )
                self._returned.wait(remaining)
            return self._available.pop()

    def release(self, model) -> None:
        with self._returned:
            if id(model) in self._retired_ids:
                # quarantined while leased: drop it instead of recirculating.
                return
            if not any(model is replica for replica in self._replicas):
                raise ValueError("released model does not belong to this pool")
            if any(model is replica for replica in self._available):
                raise ValueError("released model is already available")
            self._available.append(model)
            self._returned.notify()

    @contextlib.contextmanager
    def lease(self, timeout_s: Optional[float] = None):
        """``with pool.lease() as model:`` — checkout scoped to a block."""
        model = self.acquire(timeout_s)
        try:
            yield model
        finally:
            self.release(model)

    # -- health reporting ----------------------------------------------
    def report_success(self, model) -> None:
        """Reset the replica's consecutive-failure count after a clean lease."""
        with self._lock:
            if id(model) in self._consecutive_failures:
                self._consecutive_failures[id(model)] = 0

    def report_failure(self, model) -> Optional[str]:
        """Record one failed lease; quarantine + reload at the threshold.

        Returns ``None`` (below threshold), ``"quarantined"`` (replica
        retired, no reloader or reload failed — pool capacity shrank), or
        ``"reloaded"`` (retired and replaced by a fresh copy).
        """
        with self._lock:
            if self.quarantine_after is None or id(model) not in self._consecutive_failures:
                return None
            self._consecutive_failures[id(model)] += 1
            if self._consecutive_failures[id(model)] < self.quarantine_after:
                return None
            # Quarantine: pull the replica out of circulation.  It is
            # usually still leased by the reporting worker; release() drops
            # retired models instead of recirculating them.  While a reload
            # is in flight the retired replica still counts as healthy —
            # capacity is *recovering*, not lost — so the circuit breaker
            # only opens when the reload fails or no reloader exists.
            self._quarantined_count += 1
            self._consecutive_failures.pop(id(model), None)
            self._available = [r for r in self._available if r is not model]
            self._retired_ids.add(id(model))
            if self.reloader is None:
                self._replicas = [r for r in self._replicas if r is not model]
        logger.warning(
            "model replica id %#x quarantined after %d consecutive failed leases",
            id(model),
            self.quarantine_after,
        )
        if self.reloader is None:
            return "quarantined"
        # Reload outside the lock: checkpoint loading is slow and other
        # workers must keep leasing the surviving replicas meanwhile.
        try:
            fresh = self.reloader()
        except Exception:  # noqa: BLE001 - a failed reload just shrinks the pool
            logger.exception("reload of quarantined replica failed; pool capacity reduced")
            with self._lock:
                self._replicas = [r for r in self._replicas if r is not model]
            return "quarantined"
        with self._returned:
            self._replicas = [fresh if r is model else r for r in self._replicas]
            if not any(r is fresh for r in self._replicas):  # pragma: no cover - defensive
                self._replicas.append(fresh)
            self._available.append(fresh)
            self._consecutive_failures[id(fresh)] = 0
            self._reloaded_count += 1
            self._returned.notify()
        logger.info("quarantined replica replaced by a fresh checkpoint load")
        return "reloaded"
