"""Warm model pool: replicas loaded once at startup, leased per tick.

Constructing a ``BIGCity`` model (tokenizer tables, backbone weights) takes
long enough that doing it on a request path would dominate p50 latency.
The pool therefore pays that cost once, *before* the service starts taking
traffic: ``from_checkpoint`` loads ``replicas`` independent copies of one
trained checkpoint through :func:`repro.core.checkpoints.load_bigcity`, and
scheduler ticks borrow a replica with :meth:`ModelPool.lease` — a blocking
checkout, so at most ``replicas`` ticks execute concurrently and a replica
is never shared by two ticks.

Every replica is rebuilt from the same ``.npz`` archive, so all replicas —
and any later fresh load of the same file — produce bit-identical outputs
(pinned by ``tests/test_serving_pool.py``).
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, List, Optional

__all__ = ["ModelPool"]


class ModelPool:
    """A fixed set of interchangeable model replicas with blocking checkout."""

    def __init__(self, models: List) -> None:
        if not models:
            raise ValueError("a model pool needs at least one replica")
        self._replicas = list(models)
        self._available: List = list(models)
        self._lock = threading.Lock()
        self._returned = threading.Condition(self._lock)
        #: wall-clock seconds spent constructing the replicas (0 when the
        #: caller built them; ``from_checkpoint`` records its warm-up cost).
        self.warmup_s: float = 0.0

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(
        cls,
        path,
        dataset,
        replicas: int = 1,
        strict_dataset: bool = True,
    ) -> "ModelPool":
        """Load ``replicas`` independent copies of one checkpoint (warm start)."""
        from repro.core.checkpoints import load_bigcity

        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        started = time.perf_counter()
        models = []
        for _ in range(replicas):
            model, _metadata = load_bigcity(path, dataset, strict_dataset=strict_dataset)
            models.append(model)
        pool = cls(models)
        pool.warmup_s = time.perf_counter() - started
        return pool

    @classmethod
    def from_factory(cls, factory: Callable[[], object], replicas: int = 1) -> "ModelPool":
        """Build ``replicas`` models from a zero-argument factory (tests, demos)."""
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        started = time.perf_counter()
        pool = cls([factory() for _ in range(replicas)])
        pool.warmup_s = time.perf_counter() - started
        return pool

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._replicas)

    def available(self) -> int:
        with self._lock:
            return len(self._available)

    def acquire(self, timeout_s: Optional[float] = None):
        """Check out a replica, blocking until one is returned."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._returned:
            while not self._available:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise TimeoutError(
                        f"no model replica free within {timeout_s}s (pool size {self.size})"
                    )
                self._returned.wait(remaining)
            return self._available.pop()

    def release(self, model) -> None:
        with self._returned:
            if not any(model is replica for replica in self._replicas):
                raise ValueError("released model does not belong to this pool")
            if any(model is replica for replica in self._available):
                raise ValueError("released model is already available")
            self._available.append(model)
            self._returned.notify()

    @contextlib.contextmanager
    def lease(self, timeout_s: Optional[float] = None):
        """``with pool.lease() as model:`` — checkout scoped to a block."""
        model = self.acquire(timeout_s)
        try:
            yield model
        finally:
            self.release(model)
