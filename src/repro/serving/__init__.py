"""Online inference service with continuous batching.

Every other entry point of the reproduction is offline: the evaluators and
experiment runners hand the model a complete workload up front.  This
package serves requests **as they arrive**:

* :mod:`repro.serving.requests` — one :class:`ServingRequest` dataclass per
  task type (next-hop rollout, trajectory recovery, traffic-state
  prediction/imputation) and the :class:`ResultHandle` a client waits on;
* :mod:`repro.serving.execution` — the shared serial-execution helper: one
  request, one model call.  The scheduler's serial-equality oracle, the
  load generator's baseline and the tests all dispatch through it;
* :mod:`repro.serving.queue` — a bounded admission queue with block/reject
  overflow policies;
* :mod:`repro.serving.pool` — a warm pool of model replicas loaded from one
  checkpoint at startup and leased to scheduler ticks;
* :mod:`repro.serving.scheduler` — the continuous-batching tick: drain the
  queue, fold compatible next-hop requests into ONE right-padded KV-cached
  ``rollout_next_hops_batch`` call, complete every handle;
* :mod:`repro.serving.service` — :class:`ServingService`, wiring queue,
  pool and scheduler together behind ``submit()``/``start()``/``stop()``;
* :mod:`repro.serving.metrics` — requests/s, latency percentiles,
  batch-occupancy histogram, queue-depth tracking and failure counters;
* :mod:`repro.serving.loadgen` — a synthetic open-loop (Poisson-arrival)
  load generator over :mod:`repro.data.synthetic` scenarios;
* :mod:`repro.serving.resilience` — typed failures (deadline, circuit
  breaker, stopped service), the deterministic :class:`RetryPolicy` and
  the transient-error classification the scheduler retries under;
* :mod:`repro.serving.faults` — the deterministic fault-injection harness
  (:class:`FaultPlan`), threaded through execution/scheduler/pool behind
  a no-op default so chaos tests can exercise every recovery path.

The continuous-batched results are bit-for-bit identical to executing each
request serially (``tests/test_serving_scheduler.py``); the throughput win
is measured by the ``serving`` section of :mod:`repro.eval.perfbench`.
"""

from repro.serving.execution import execute_request, results_equal, run_serial_trace
from repro.serving.faults import FaultPlan, InjectedFault, TransientInjectedFault
from repro.serving.loadgen import LoadGenConfig, build_request_trace, poisson_arrivals, run_loadgen
from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ModelPool
from repro.serving.queue import AdmissionQueue, AdmissionTimeout, QueueClosed, QueueFull
from repro.serving.resilience import (
    CircuitOpen,
    DeadlineExceeded,
    RetryPolicy,
    ServiceStopped,
    TransientError,
    call_with_retries,
    is_transient,
)
from repro.serving.requests import (
    NextHopRequest,
    RecoveryRequest,
    RequestFailed,
    ResultHandle,
    ServingRequest,
    TrafficImputationRequest,
    TrafficPredictionRequest,
)
from repro.serving.service import ServingConfig, ServingService

__all__ = [
    "AdmissionQueue",
    "AdmissionTimeout",
    "CircuitOpen",
    "DeadlineExceeded",
    "FaultPlan",
    "InjectedFault",
    "LoadGenConfig",
    "ModelPool",
    "NextHopRequest",
    "QueueClosed",
    "QueueFull",
    "RecoveryRequest",
    "RequestFailed",
    "ResultHandle",
    "RetryPolicy",
    "ServiceStopped",
    "ServingConfig",
    "ServingMetrics",
    "ServingRequest",
    "ServingService",
    "TrafficImputationRequest",
    "TrafficPredictionRequest",
    "TransientError",
    "TransientInjectedFault",
    "build_request_trace",
    "call_with_retries",
    "execute_request",
    "is_transient",
    "poisson_arrivals",
    "results_equal",
    "run_loadgen",
    "run_serial_trace",
]
