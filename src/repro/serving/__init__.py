"""Online inference service with continuous batching.

Every other entry point of the reproduction is offline: the evaluators and
experiment runners hand the model a complete workload up front.  This
package serves requests **as they arrive**:

* :mod:`repro.serving.requests` — one :class:`ServingRequest` dataclass per
  task type (next-hop rollout, trajectory recovery, traffic-state
  prediction/imputation) and the :class:`ResultHandle` a client waits on;
* :mod:`repro.serving.execution` — the shared serial-execution helper: one
  request, one model call.  The scheduler's serial-equality oracle, the
  load generator's baseline and the tests all dispatch through it;
* :mod:`repro.serving.queue` — a bounded admission queue with block/reject
  overflow policies;
* :mod:`repro.serving.pool` — a warm pool of model replicas loaded from one
  checkpoint at startup and leased to scheduler ticks;
* :mod:`repro.serving.scheduler` — the continuous-batching tick: drain the
  queue, fold compatible next-hop requests into ONE right-padded KV-cached
  ``rollout_next_hops_batch`` call, complete every handle;
* :mod:`repro.serving.service` — :class:`ServingService`, wiring queue,
  pool and scheduler together behind ``submit()``/``start()``/``stop()``;
* :mod:`repro.serving.metrics` — requests/s, latency percentiles,
  batch-occupancy histogram and queue-depth tracking;
* :mod:`repro.serving.loadgen` — a synthetic open-loop (Poisson-arrival)
  load generator over :mod:`repro.data.synthetic` scenarios.

The continuous-batched results are bit-for-bit identical to executing each
request serially (``tests/test_serving_scheduler.py``); the throughput win
is measured by the ``serving`` section of :mod:`repro.eval.perfbench`.
"""

from repro.serving.execution import execute_request, results_equal, run_serial_trace
from repro.serving.loadgen import LoadGenConfig, build_request_trace, poisson_arrivals, run_loadgen
from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ModelPool
from repro.serving.queue import AdmissionQueue, AdmissionTimeout, QueueClosed, QueueFull
from repro.serving.requests import (
    NextHopRequest,
    RecoveryRequest,
    RequestFailed,
    ResultHandle,
    ServingRequest,
    TrafficImputationRequest,
    TrafficPredictionRequest,
)
from repro.serving.service import ServingConfig, ServingService

__all__ = [
    "AdmissionQueue",
    "AdmissionTimeout",
    "LoadGenConfig",
    "ModelPool",
    "NextHopRequest",
    "QueueClosed",
    "QueueFull",
    "RecoveryRequest",
    "RequestFailed",
    "ResultHandle",
    "ServingConfig",
    "ServingMetrics",
    "ServingRequest",
    "ServingService",
    "TrafficImputationRequest",
    "TrafficPredictionRequest",
    "build_request_trace",
    "execute_request",
    "poisson_arrivals",
    "results_equal",
    "run_loadgen",
    "run_serial_trace",
]
