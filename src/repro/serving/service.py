"""The serving loop: admission queue + warm pool + continuous batching.

:class:`ServingService` is the piece a client talks to::

    pool = ModelPool.from_checkpoint("model.npz", dataset, replicas=2)
    service = ServingService(pool, ServingConfig(max_batch_size=8))
    service.start()
    handle = service.submit(NextHopRequest(trajectory, steps=3))
    segments = handle.result(timeout=5.0)
    service.stop()           # drains the queue, then joins the workers

``submit`` admits the request into a bounded :class:`AdmissionQueue`
(blocking or rejecting at capacity, per :class:`ServingConfig`) and returns
a :class:`ResultHandle` immediately — the client decides when to wait.
One worker thread per pool replica runs the scheduler loop: block until at
least one request is queued, drain up to ``max_batch_size``, shed handles
whose deadline already passed, lease a replica,
:func:`~repro.serving.scheduler.run_tick` it, publish results.  With
several replicas, ticks overlap (NumPy releases the GIL inside BLAS); with
one, the loop degenerates to classic dynamic batching.

Fault tolerance (see ``docs/resilience.md``):

* a **worker supervisor** — a worker loop that raises outside the tick's
  own error handling (e.g. inside ``pool.lease()``) fails its in-flight
  handles, is logged, and is respawned up to ``max_worker_restarts``
  times, so one crash costs one batch instead of one replica's capacity
  forever;
* **replica health** — each tick's outcome is reported to the pool, which
  quarantines and reloads replicas that fail repeatedly;
* a **circuit breaker** — when fewer than ``min_healthy_replicas``
  replicas remain in circulation, ``submit()`` raises
  :class:`~repro.serving.resilience.CircuitOpen` instead of queueing work
  the service cannot execute.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ModelPool
from repro.serving.queue import AdmissionQueue, QueueClosed
from repro.serving.requests import ResultHandle, ServingRequest
from repro.serving.resilience import CircuitOpen, DeadlineExceeded, RetryPolicy, ServiceStopped
from repro.serving.scheduler import run_tick

__all__ = ["ServingConfig", "ServingService"]

logger = logging.getLogger("repro.serving")

_ADMISSION_POLICIES = ("block", "reject")


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop."""

    #: most requests one scheduler tick may fold into a batch.
    max_batch_size: int = 8
    #: admission queue capacity (back-pressure bound).
    max_queue_depth: int = 64
    #: what happens at capacity: ``"block"`` (bounded wait) or ``"reject"``.
    admission_policy: str = "block"
    #: how long a blocking ``submit`` may wait for queue space.
    admission_timeout_s: Optional[float] = 5.0
    #: how long an idle worker waits for the first request of a tick.
    idle_wait_s: float = 0.02
    #: how long a worker may wait for a free replica before its tick fails.
    lease_timeout_s: float = 30.0
    #: retry policy for transient model-call failures (None = no retries).
    retry: Optional[RetryPolicy] = None
    #: crashed scheduler workers respawned at most this many times.
    max_worker_restarts: int = 2
    #: circuit breaker: reject submissions when fewer replicas are healthy.
    min_healthy_replicas: int = 1

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.admission_policy not in _ADMISSION_POLICIES:
            raise ValueError(
                f"unknown admission policy {self.admission_policy!r}; "
                f"choose from {_ADMISSION_POLICIES}"
            )
        if self.admission_timeout_s is not None and self.admission_timeout_s <= 0:
            raise ValueError("admission_timeout_s must be positive (or None to wait forever)")
        if self.idle_wait_s <= 0:
            raise ValueError("idle_wait_s must be positive")
        if self.lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        if self.max_worker_restarts < 0:
            raise ValueError("max_worker_restarts must be >= 0")
        if self.min_healthy_replicas < 0:
            raise ValueError("min_healthy_replicas must be >= 0 (0 disables the breaker)")


class ServingService:
    """Continuous-batching inference service over a warm model pool."""

    def __init__(
        self,
        pool: ModelPool,
        config: Optional[ServingConfig] = None,
        faults=None,
    ) -> None:
        self.pool = pool
        self.config = config or ServingConfig()
        self.faults = faults
        if faults is not None and pool.faults is None:
            pool.faults = faults
        self.queue: AdmissionQueue = AdmissionQueue(
            capacity=self.config.max_queue_depth,
            policy=self.config.admission_policy,
        )
        self.metrics = ServingMetrics(max_batch_size=self.config.max_batch_size)
        self._workers: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._started = False
        self._supervisor_lock = threading.Lock()
        self._restarts = 0

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._started and not self._stopping.is_set()

    def start(self) -> "ServingService":
        """Spawn one scheduler worker per warm replica and begin serving."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.metrics.mark_started()
        for index in range(self.pool.size):
            self._spawn_worker(index)
        return self

    def submit(self, request: ServingRequest) -> ResultHandle:
        """Admit one request; returns its handle without waiting for the result.

        Raises :class:`ServiceStopped` after ``stop()``,
        :class:`CircuitOpen` when too few healthy replicas remain, and the
        queue's own ``QueueFull``/``AdmissionTimeout`` at capacity.
        """
        if self._stopping.is_set():
            raise ServiceStopped("service has been stopped; submit() is no longer accepted")
        if (
            self.config.min_healthy_replicas > 0
            and self.pool.healthy() < self.config.min_healthy_replicas
        ):
            self.metrics.record_event("rejected")
            raise CircuitOpen(
                f"only {self.pool.healthy()} healthy replica(s) remain "
                f"(minimum {self.config.min_healthy_replicas}); submission rejected"
            )
        handle = ResultHandle(request=request)
        try:
            self.queue.put(handle, timeout_s=self.config.admission_timeout_s)
        except ServiceStopped:
            raise
        except QueueClosed as error:
            raise ServiceStopped(
                "service has been stopped; submit() is no longer accepted"
            ) from error
        return handle

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the service; with ``drain=True`` finish queued requests first."""
        if not self._started:
            return
        if drain:
            self._draining.set()
            if not self.queue.wait_empty(timeout_s=timeout_s):
                logger.warning("stop(drain=True) timed out with %d request(s) still queued", self.queue.depth())
        self._stopping.set()
        self.queue.close()
        with self._supervisor_lock:
            workers = list(self._workers)
        for worker in workers:
            worker.join(timeout=timeout_s)
        self.metrics.mark_stopped()

    def __enter__(self) -> "ServingService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int, generation: int = 0) -> None:
        name = f"repro-serving-{index}" + (f"-r{generation}" if generation else "")
        worker = threading.Thread(
            target=self._worker_main, args=(index,), name=name, daemon=True
        )
        self._workers.append(worker)
        worker.start()

    def _worker_main(self, index: int) -> None:
        """Supervised entry point: a crashed loop is logged and respawned."""
        try:
            self._worker_loop()
        except Exception:  # noqa: BLE001 - the supervisor decides what happens next
            logger.exception("serving worker %d crashed", index)
            self._respawn(index)

    def _respawn(self, index: int) -> None:
        with self._supervisor_lock:
            if self._stopping.is_set():
                return
            if self._restarts >= self.config.max_worker_restarts:
                logger.error(
                    "worker restart budget (%d) exhausted; worker %d not respawned",
                    self.config.max_worker_restarts,
                    index,
                )
                return
            self._restarts += 1
            generation = self._restarts
            self.metrics.record_event("respawned")
            self._spawn_worker(index, generation=generation)
        logger.warning("serving worker %d respawned (restart %d)", index, generation)

    def _shed_expired(self, batch: List[ResultHandle]) -> List[ResultHandle]:
        """Fail expired handles at dequeue time; return the live remainder."""
        now = time.monotonic()
        live: List[ResultHandle] = []
        for handle in batch:
            if handle.expired(now):
                handle.fail(
                    DeadlineExceeded(
                        f"deadline of {getattr(handle.request, 'deadline_s', None)}s "
                        "passed before the request reached a scheduler tick"
                    )
                )
                self.metrics.record_event("shed")
            else:
                live.append(handle)
        return live

    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.take_batch(
                self.config.max_batch_size, timeout_s=self.config.idle_wait_s
            )
            if not batch:
                if self._stopping.is_set():
                    return
                continue
            batch = self._shed_expired(batch)
            if not batch:
                continue
            depth_after = self.queue.depth()
            started = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.on_tick_start(len(batch))
                with self.pool.lease(timeout_s=self.config.lease_timeout_s) as model:
                    tick = run_tick(
                        model, batch, retry_policy=self.config.retry, faults=self.faults
                    )
                    # Report the lease outcome while still holding the
                    # replica, so quarantine decisions see a settled state.
                    if tick.call_errors:
                        outcome = self.pool.report_failure(model)
                        if outcome is not None:
                            self.metrics.record_event("quarantined")
                    else:
                        self.pool.report_success(model)
            except Exception as error:  # noqa: BLE001 - crash outside run_tick
                for handle in batch:
                    if not handle.done():
                        handle.fail(error)
                self.metrics.record_event("failed", len(batch))
                raise
            duration = time.perf_counter() - started
            self.metrics.record_tick(len(batch), depth_after, duration)
            for name, count in (
                ("folded", tick.batched_requests),
                ("failed", tick.failed),
                ("retried", tick.retried),
                ("isolated", tick.isolated),
            ):
                if count:
                    self.metrics.record_event(name, count)
            for handle in batch:
                self.metrics.record_completion(handle)
