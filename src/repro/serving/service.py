"""The serving loop: admission queue + warm pool + continuous batching.

:class:`ServingService` is the piece a client talks to::

    pool = ModelPool.from_checkpoint("model.npz", dataset, replicas=2)
    service = ServingService(pool, ServingConfig(max_batch_size=8))
    service.start()
    handle = service.submit(NextHopRequest(trajectory, steps=3))
    segments = handle.result(timeout=5.0)
    service.stop()           # drains the queue, then joins the workers

``submit`` admits the request into a bounded :class:`AdmissionQueue`
(blocking or rejecting at capacity, per :class:`ServingConfig`) and returns
a :class:`ResultHandle` immediately — the client decides when to wait.
One worker thread per pool replica runs the scheduler loop: block until at
least one request is queued, drain up to ``max_batch_size``, lease a
replica, :func:`~repro.serving.scheduler.run_tick` it, publish results.
With several replicas, ticks overlap (NumPy releases the GIL inside BLAS);
with one, the loop degenerates to classic dynamic batching.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.serving.metrics import ServingMetrics
from repro.serving.pool import ModelPool
from repro.serving.queue import AdmissionQueue
from repro.serving.requests import ResultHandle, ServingRequest
from repro.serving.scheduler import run_tick

__all__ = ["ServingConfig", "ServingService"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs of the serving loop."""

    #: most requests one scheduler tick may fold into a batch.
    max_batch_size: int = 8
    #: admission queue capacity (back-pressure bound).
    max_queue_depth: int = 64
    #: what happens at capacity: ``"block"`` (bounded wait) or ``"reject"``.
    admission_policy: str = "block"
    #: how long a blocking ``submit`` may wait for queue space.
    admission_timeout_s: Optional[float] = 5.0
    #: how long an idle worker waits for the first request of a tick.
    idle_wait_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")


class ServingService:
    """Continuous-batching inference service over a warm model pool."""

    def __init__(self, pool: ModelPool, config: Optional[ServingConfig] = None) -> None:
        self.pool = pool
        self.config = config or ServingConfig()
        self.queue: AdmissionQueue = AdmissionQueue(
            capacity=self.config.max_queue_depth,
            policy=self.config.admission_policy,
        )
        self.metrics = ServingMetrics(max_batch_size=self.config.max_batch_size)
        self._workers: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._started and not self._stopping.is_set()

    def start(self) -> "ServingService":
        """Spawn one scheduler worker per warm replica and begin serving."""
        if self._started:
            raise RuntimeError("service already started")
        self._started = True
        self.metrics.mark_started()
        for index in range(self.pool.size):
            worker = threading.Thread(
                target=self._worker_loop,
                name=f"repro-serving-{index}",
                daemon=True,
            )
            worker.start()
            self._workers.append(worker)
        return self

    def submit(self, request: ServingRequest) -> ResultHandle:
        """Admit one request; returns its handle without waiting for the result."""
        handle = ResultHandle(request=request)
        self.queue.put(handle, timeout_s=self.config.admission_timeout_s)
        return handle

    def stop(self, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the service; with ``drain=True`` finish queued requests first."""
        if not self._started:
            return
        if drain:
            self._draining.set()
            deadline = time.monotonic() + timeout_s
            while self.queue.depth() > 0 and time.monotonic() < deadline:
                time.sleep(0.005)
        self._stopping.set()
        self.queue.close()
        for worker in self._workers:
            worker.join(timeout=timeout_s)
        self.metrics.mark_stopped()

    def __enter__(self) -> "ServingService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.take_batch(
                self.config.max_batch_size, timeout_s=self.config.idle_wait_s
            )
            if not batch:
                if self._stopping.is_set():
                    return
                continue
            depth_after = self.queue.depth()
            started = time.perf_counter()
            with self.pool.lease() as model:
                run_tick(model, batch)
            duration = time.perf_counter() - started
            self.metrics.record_tick(len(batch), depth_after, duration)
            for handle in batch:
                self.metrics.record_completion(handle)
