"""Request and response types of the online inference service.

One frozen dataclass per task type the service can answer.  Each request
carries exactly the arguments of the corresponding ``BIGCity`` inference
helper, plus a ``batch_key`` describing which requests may be folded into
one padded batch by the scheduler (requests with equal keys are
*compatible* and fold into one ``*_batch`` model call per tick; all four
request kinds batch — ragged shapes such as trajectory lengths or horizons
are absorbed by prompt padding, so only arguments that change the *decoding*
appear in the key).

Clients receive a :class:`ResultHandle` — a minimal ``Future``: ``done()``,
``result(timeout)``, and the timing fields the serving metrics are built
from.  Handles are completed exactly once, by the scheduler tick that
executed them (or by the deadline shed / worker-crash recovery paths —
see :mod:`repro.serving.resilience`).

Every request additionally carries two fault-tolerance fields that are
*not* part of its ``batch_key``: ``deadline_s``, a relative deadline in
seconds from submission after which the service sheds the request instead
of executing it, and ``tag``, a free-form label the deterministic fault
harness (:mod:`repro.serving.faults`) targets injected failures by.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from repro.data.trajectory import Trajectory

__all__ = [
    "NextHopRequest",
    "RecoveryRequest",
    "TrafficPredictionRequest",
    "TrafficImputationRequest",
    "ServingRequest",
    "ResultHandle",
    "RequestFailed",
]


class RequestFailed(RuntimeError):
    """Raised by :meth:`ResultHandle.result` when the request errored server-side."""


def _validate_deadline(request) -> None:
    if request.deadline_s is not None and request.deadline_s <= 0:
        raise ValueError("deadline_s must be positive (or None for no deadline)")


@dataclass(frozen=True)
class NextHopRequest:
    """Autoregressively extend a trajectory by ``steps`` segments."""

    trajectory: Trajectory
    steps: int = 1
    constrain_to_network: bool = True
    #: relative deadline (seconds from submission); expired requests are shed.
    deadline_s: Optional[float] = None
    #: fault-injection target label (no effect outside a FaultPlan).
    tag: Optional[str] = field(default=None, compare=False)

    kind = "next_hop"

    def __post_init__(self) -> None:
        _validate_deadline(self)

    def batch_key(self) -> Tuple:
        # Rollouts with the same step count and decoding constraint fold
        # into one padded KV-cached batch (deadline/tag do not affect the
        # model call, so they never split a batch).
        return (self.kind, self.steps, self.constrain_to_network)


@dataclass(frozen=True)
class RecoveryRequest:
    """Recover the masked segments of a low-sample-rate trajectory."""

    trajectory: Trajectory
    kept_indices: Tuple[int, ...]
    constrain_to_network: bool = True
    deadline_s: Optional[float] = None
    tag: Optional[str] = field(default=None, compare=False)

    kind = "recovery"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kept_indices", tuple(int(i) for i in self.kept_indices))
        _validate_deadline(self)

    def batch_key(self) -> Tuple:
        # Recoveries fold regardless of trajectory length or mask pattern
        # (padding absorbs both); only the decoding constraint splits.
        return (self.kind, self.constrain_to_network)


@dataclass(frozen=True)
class TrafficPredictionRequest:
    """Forecast ``horizon`` traffic states of one segment from ``history`` slices."""

    segment_id: int
    start_slice: int
    history: int
    horizon: int = 1
    deadline_s: Optional[float] = None
    tag: Optional[str] = field(default=None, compare=False)

    kind = "traffic_prediction"

    def __post_init__(self) -> None:
        _validate_deadline(self)

    def batch_key(self) -> Tuple:
        # Mixed histories/horizons fold into one padded batch.
        return (self.kind,)


@dataclass(frozen=True)
class TrafficImputationRequest:
    """Impute the masked traffic states of one segment."""

    segment_id: int
    start_slice: int
    num_slices: int
    masked_positions: Tuple[int, ...]
    deadline_s: Optional[float] = None
    tag: Optional[str] = field(default=None, compare=False)

    kind = "traffic_imputation"

    def __post_init__(self) -> None:
        object.__setattr__(self, "masked_positions", tuple(int(i) for i in self.masked_positions))
        _validate_deadline(self)

    def batch_key(self) -> Tuple:
        # Mixed lengths/mask patterns fold into one padded batch.
        return (self.kind,)


ServingRequest = Union[
    NextHopRequest,
    RecoveryRequest,
    TrafficPredictionRequest,
    TrafficImputationRequest,
]


@dataclass
class ResultHandle:
    """Client-visible handle for one submitted request (a minimal ``Future``).

    Timing fields use :func:`time.monotonic`:

    ``submitted_at``
        when the request was admitted to the queue;
    ``started_at`` / ``completed_at``
        when the scheduler tick that served it began executing and when the
        result was published;
    ``batch_size``
        how many requests shared that tick (the batch-occupancy metric).
    """

    request: ServingRequest
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    batch_size: int = 0
    _result: object = None
    _error: Optional[BaseException] = None
    _done: threading.Event = field(default_factory=threading.Event, repr=False)

    # -- scheduler side -------------------------------------------------
    def mark_started(self, batch_size: int) -> None:
        self.started_at = time.monotonic()
        self.batch_size = batch_size

    def complete(self, result: object) -> None:
        self._result = result
        self.completed_at = time.monotonic()
        self._done.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self.completed_at = time.monotonic()
        self._done.set()

    # -- deadlines ------------------------------------------------------
    @property
    def deadline_at(self) -> Optional[float]:
        """Absolute ``time.monotonic`` deadline, from the request's ``deadline_s``."""
        deadline_s = getattr(self.request, "deadline_s", None)
        if deadline_s is None:
            return None
        return self.submitted_at + deadline_s

    def expired(self, now: Optional[float] = None) -> bool:
        """Whether the deadline passed (always False for deadline-less requests)."""
        deadline_at = self.deadline_at
        if deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= deadline_at

    # -- client side ----------------------------------------------------
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> object:
        """Block until the request completes and return (or raise) its outcome.

        Server-side errors surface as :class:`RequestFailed` with the
        original exception preserved as ``__cause__``; errors that already
        are ``RequestFailed`` subclasses (e.g. ``DeadlineExceeded``) are
        raised as-is so clients can catch the specific class.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(f"request {self.request!r} did not complete within {timeout}s")
        if self._error is not None:
            if isinstance(self._error, RequestFailed):
                raise self._error
            raise RequestFailed(str(self._error)) from self._error
        return self._result

    # -- metrics --------------------------------------------------------
    @property
    def latency_s(self) -> Optional[float]:
        """Queue wait plus service time (what the client experiences)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    @property
    def wait_s(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at
