"""Bounded admission queue with configurable overflow behaviour.

The service admits requests through one of these queues.  Capacity is
bounded so an overloaded service sheds load at the door instead of growing
an unbounded backlog; what happens at the bound is the *admission policy*:

``"block"``
    ``put`` waits (up to a timeout) for space — an open-loop client
    experiences back-pressure as added latency;
``"reject"``
    ``put`` raises :class:`QueueFull` immediately — the client sees an
    explicit overload signal and can retry elsewhere.

The scheduler side drains with :meth:`AdmissionQueue.take_batch`: block
until at least one item is queued (or a timeout elapses), then take up to
``max_items`` in FIFO order — the admission half of continuous batching.
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Deque, List, Optional, TypeVar

__all__ = ["AdmissionQueue", "QueueFull", "AdmissionTimeout", "QueueClosed"]

T = TypeVar("T")

_POLICIES = ("block", "reject")


class QueueFull(RuntimeError):
    """The queue is at capacity and the admission policy is ``"reject"``."""


class AdmissionTimeout(TimeoutError):
    """A blocking ``put`` did not find space within its timeout."""


class QueueClosed(RuntimeError):
    """``put`` after :meth:`AdmissionQueue.close` (the service has stopped)."""


class AdmissionQueue:
    """Thread-safe bounded FIFO queue for :class:`ResultHandle` admission."""

    def __init__(self, capacity: int = 64, policy: str = "block") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if policy not in _POLICIES:
            raise ValueError(f"unknown admission policy {policy!r}; choose from {_POLICIES}")
        self.capacity = capacity
        self.policy = policy
        self._items: Deque[T] = collections.deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    # ------------------------------------------------------------------
    def put(self, item: T, timeout_s: Optional[float] = None) -> None:
        """Admit ``item``, applying the overflow policy at capacity."""
        with self._not_full:
            if self._closed:
                raise QueueClosed("queue is closed; the service has stopped accepting requests")
            if len(self._items) >= self.capacity:
                if self.policy == "reject":
                    raise QueueFull(
                        f"queue at capacity ({self.capacity}) and admission policy is 'reject'"
                    )
                deadline = None if timeout_s is None else time.monotonic() + timeout_s
                while len(self._items) >= self.capacity and not self._closed:
                    remaining = None if deadline is None else deadline - time.monotonic()
                    if remaining is not None and remaining <= 0:
                        raise AdmissionTimeout(
                            f"no queue space within {timeout_s}s (capacity {self.capacity})"
                        )
                    self._not_full.wait(remaining)
                if self._closed:
                    raise QueueClosed("queue closed while waiting for space")
            self._items.append(item)
            self._not_empty.notify()

    def take_batch(self, max_items: int, timeout_s: Optional[float] = None) -> List[T]:
        """Take up to ``max_items`` in FIFO order; block until >= 1 is available.

        Returns an empty list when the timeout elapses with nothing queued,
        or when the queue has been closed and drained — the scheduler loop
        treats both as "idle tick".
        """
        if max_items < 1:
            raise ValueError("max_items must be >= 1")
        with self._not_empty:
            if not self._items and not self._closed:
                self._not_empty.wait(timeout_s)
            batch = []
            while self._items and len(batch) < max_items:
                batch.append(self._items.popleft())
            if batch:
                self._not_full.notify_all()
            return batch

    def wait_empty(self, timeout_s: Optional[float] = None) -> bool:
        """Block until the queue is drained; True if it emptied in time.

        This is a condition wait on the same condition ``take_batch``
        notifies, so a draining ``stop()`` wakes the moment the last item
        is taken instead of sleep-polling ``depth()``.
        """
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        with self._not_full:
            while self._items:
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._not_full.wait(remaining)
            return True

    def close(self) -> None:
        """Stop admitting; wake every blocked ``put``/``take_batch``."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
