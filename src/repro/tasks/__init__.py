"""Evaluation tasks and metrics.

One module per task family of Table I:

* :mod:`repro.tasks.metrics` — every metric used in the paper's tables.
* :mod:`repro.tasks.next_hop` — trajectory next-hop prediction.
* :mod:`repro.tasks.travel_time` — travel time estimation (TTE).
* :mod:`repro.tasks.classification` — trajectory classification
  (user linkage on XA/CD-like data, binary traffic pattern on BJ-like data).
* :mod:`repro.tasks.similarity` — most-similar trajectory search.
* :mod:`repro.tasks.recovery` — trajectory recovery from low-rate inputs.
* :mod:`repro.tasks.traffic` — traffic-state one-step / multi-step prediction
  and imputation.
* :mod:`repro.tasks.decoding` — road-network-constrained decoding helpers
  shared by BIGCity and the baselines.

Every evaluator is model-agnostic: it accepts plain prediction callables so
that BIGCity and each baseline are scored by exactly the same code.
"""

from repro.tasks import metrics
from repro.tasks.decoding import (
    constrained_next_hop_ranking,
    constrained_recovery_choice,
    gap_candidates,
)
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator
from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.similarity import SimilaritySearchEvaluator
from repro.tasks.recovery import TrajectoryRecoveryEvaluator
from repro.tasks.traffic import TrafficStateEvaluator

__all__ = [
    "metrics",
    "constrained_next_hop_ranking",
    "constrained_recovery_choice",
    "gap_candidates",
    "NextHopEvaluator",
    "TravelTimeEvaluator",
    "TrajectoryClassificationEvaluator",
    "SimilaritySearchEvaluator",
    "TrajectoryRecoveryEvaluator",
    "TrafficStateEvaluator",
]
