"""Trajectory next-hop prediction (Table III, "Next Hop Prediction" block).

Given the prefix of a trajectory, predict the road segment visited next.
Reported metrics follow the paper: top-1 accuracy, MRR@5 and NDCG@5.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory
from repro.tasks import metrics

#: A ranking function maps trajectories (prefix excluded target) to ranked
#: candidate segment ids, best first.
RankFn = Callable[[Sequence[Trajectory]], Sequence[Sequence[int]]]

#: A rollout function maps trajectory prefixes to per-trajectory arrays of
#: autoregressively decoded next segments (``BIGCity.rollout_next_hops_batch``).
RolloutFn = Callable[[Sequence[Trajectory]], Sequence[np.ndarray]]


class NextHopEvaluator:
    """Build next-hop test cases from a dataset and score ranking functions."""

    def __init__(self, dataset: CityDataset, max_samples: Optional[int] = None, min_length: int = 3, seed: int = 0) -> None:
        self.dataset = dataset
        rng = np.random.default_rng(seed)
        candidates = [t for t in dataset.test_trajectories if len(t) >= min_length]
        if max_samples is not None and len(candidates) > max_samples:
            index = rng.choice(len(candidates), size=max_samples, replace=False)
            candidates = [candidates[i] for i in index]
        #: full trajectories; the final segment is the prediction target.
        self.trajectories: List[Trajectory] = candidates
        self.prefixes: List[Trajectory] = [t.slice(0, len(t) - 1) for t in candidates]
        self.targets: List[int] = [t.segments[-1] for t in candidates]

    def __len__(self) -> int:
        return len(self.trajectories)

    def evaluate(self, rank_fn: RankFn, use_full_trajectory: bool = True) -> Dict[str, float]:
        """Score a ranking function.

        ``use_full_trajectory=True`` passes the *full* trajectory to the
        ranking function (BIGCity's prompt builder strips the last sample
        itself); ``False`` passes only the prefix (used by baselines that
        expect the prefix directly).
        """
        inputs = self.trajectories if use_full_trajectory else self.prefixes
        rankings = rank_fn(inputs)
        if len(rankings) != len(self.targets):
            raise ValueError("ranking function returned the wrong number of results")
        top1 = np.array([list(r)[0] if len(r) else -1 for r in rankings])
        return {
            "acc": metrics.accuracy(top1, np.asarray(self.targets)),
            "mrr@5": metrics.mrr_at_k(rankings, self.targets, k=5),
            "ndcg@5": metrics.ndcg_at_k(rankings, self.targets, k=5),
        }

    def evaluate_rollout(self, rollout_fn: RolloutFn) -> Dict[str, float]:
        """Score a batched autoregressive rollout on one-step-ahead accuracy.

        ``rollout_fn`` receives every test *prefix* in one call (so a batched
        implementation such as ``BIGCity.rollout_next_hops_batch`` decodes
        them through a single padded KV-cached batch) and must return one
        array of decoded segments per prefix; the first decoded segment is
        compared against the held-out next hop.
        """
        rollouts = rollout_fn(self.prefixes)
        if len(rollouts) != len(self.targets):
            raise ValueError("rollout function returned the wrong number of results")
        top1 = np.array([int(np.asarray(r).reshape(-1)[0]) if np.asarray(r).size else -1 for r in rollouts])
        return {"rollout_acc": metrics.accuracy(top1, np.asarray(self.targets))}
