"""Trajectory recovery from low-sampling-rate inputs (Table IV).

A fraction of samples (85% / 90% / 95% in the paper) is dropped from each
test trajectory; a recovery method must reconstruct the road segments at the
dropped positions given the remaining samples.  Metrics: accuracy and
macro-F1 over the recovered segments.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory, subsample_trajectory
from repro.tasks import metrics

#: ``recover_fn(full_trajectory, kept_indices) -> predicted segment ids`` at the
#: dropped positions (in ascending position order).  Only the kept samples may
#: be used by the method; the full trajectory is passed so the method knows
#: how many positions to fill and their timestamps.
RecoverFn = Callable[[Trajectory, np.ndarray], np.ndarray]
#: ``recover_batch_fn(trajectories, kept_indices_list) -> [predicted ids, ...]``
#: — the batched form, answering every case through one padded model batch
#: (``BIGCity.recover_trajectories_batch``).
RecoverBatchFn = Callable[[Sequence[Trajectory], Sequence[np.ndarray]], Sequence[np.ndarray]]


class TrajectoryRecoveryEvaluator:
    """Build masked recovery cases at a given mask ratio and score methods."""

    def __init__(
        self,
        dataset: CityDataset,
        mask_ratio: float = 0.85,
        max_samples: Optional[int] = None,
        min_length: int = 6,
        seed: int = 0,
    ) -> None:
        if not 0.0 < mask_ratio < 1.0:
            raise ValueError("mask_ratio must be in (0, 1)")
        self.dataset = dataset
        self.mask_ratio = mask_ratio
        rng = np.random.default_rng(seed)
        candidates = [t for t in dataset.test_trajectories if len(t) >= min_length]
        if max_samples is not None and len(candidates) > max_samples:
            index = rng.choice(len(candidates), size=max_samples, replace=False)
            candidates = [candidates[i] for i in index]
        self.cases: List[Tuple[Trajectory, np.ndarray, np.ndarray]] = []
        for trajectory in candidates:
            _, kept = subsample_trajectory(trajectory, keep_ratio=1.0 - mask_ratio, rng=rng)
            missing = np.setdiff1d(np.arange(len(trajectory)), kept)
            if len(missing) == 0:
                continue
            self.cases.append((trajectory, kept, missing))

    def __len__(self) -> int:
        return len(self.cases)

    def evaluate(self, recover_fn: RecoverFn) -> Dict[str, float]:
        recovered = [recover_fn(trajectory, kept) for trajectory, kept, _ in self.cases]
        return self._score(recovered)

    def evaluate_batch(self, recover_batch_fn: RecoverBatchFn) -> Dict[str, float]:
        """Score a batched recovery function (one model call for all cases).

        Produces exactly the metrics :meth:`evaluate` produces for the
        per-case form of the same method, since the batched model path is
        equality-pinned against the serial one.
        """
        recovered = recover_batch_fn(
            [trajectory for trajectory, _, _ in self.cases],
            [kept for _, kept, _ in self.cases],
        )
        return self._score(recovered)

    def _score(self, recovered_list: Sequence[np.ndarray]) -> Dict[str, float]:
        if len(recovered_list) != len(self.cases):
            raise ValueError(
                f"recovery method answered {len(recovered_list)} of {len(self.cases)} cases"
            )
        predictions: List[int] = []
        targets: List[int] = []
        for (trajectory, kept, missing), recovered in zip(self.cases, recovered_list):
            recovered = np.asarray(recovered, dtype=np.int64)
            if recovered.shape[0] != len(missing):
                raise ValueError(
                    f"recovery method returned {recovered.shape[0]} segments for "
                    f"{len(missing)} masked positions"
                )
            predictions.extend(int(p) for p in recovered)
            targets.extend(int(trajectory.segments[i]) for i in missing)
        num_segments = self.dataset.num_segments
        return {
            "accuracy": metrics.accuracy(np.asarray(predictions), np.asarray(targets)),
            "macro_f1": metrics.macro_f1(predictions, targets, num_segments),
            "num_masked": float(len(targets)),
        }
