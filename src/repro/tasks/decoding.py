"""Road-network-constrained decoding utilities.

BIGCity operates in road-network-based scenarios (Sec. III of the paper): a
trajectory is a path on the road graph, so the next hop of a trajectory must
be a successor of its last segment, and a segment recovered inside a gap must
be reachable from the surrounding observed segments.  The map-constrained
recovery baselines (MTrajRec, RNTrajRec) build this constraint into their
decoders; these helpers make the same constraint available to every model in
the repository so that classification-style decoding ranks *feasible*
candidates first instead of scoring the full segment vocabulary.

All helpers are pure functions over a :class:`~repro.roadnet.network.RoadNetwork`
and NumPy score vectors, so they can be reused by BIGCity, by the trajectory
baselines and by the evaluation harness alike.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.roadnet.network import RoadNetwork

__all__ = [
    "constrained_next_hop_ranking",
    "greedy_next_hop",
    "greedy_next_hop_batch",
    "forward_hop_distances",
    "backward_hop_distances",
    "gap_candidates",
    "open_gap_candidates",
    "constrained_recovery_choice",
]


def greedy_next_hop(
    scores: np.ndarray,
    last_segment: int,
    network: Optional[RoadNetwork] = None,
) -> int:
    """Pick the single best next segment for one autoregressive rollout step.

    With a ``network`` this is the top-1 entry of
    :func:`constrained_next_hop_ranking` (graph successors of
    ``last_segment`` win over unreachable segments); without one it is the
    plain argmax.  Used by ``BIGCity.rollout_next_hops`` to choose the token
    appended at each KV-cached decode step.
    """
    if network is None:
        return int(np.argmax(np.asarray(scores, dtype=np.float64).reshape(-1)))
    return int(constrained_next_hop_ranking(scores, last_segment, network, top_k=1)[0])


def greedy_next_hop_batch(
    scores: np.ndarray,
    last_segments: Sequence[int],
    network: Optional[RoadNetwork] = None,
) -> np.ndarray:
    """Vectorised :func:`greedy_next_hop` over a ``(batch, num_segments)`` batch.

    Each row of ``scores`` is decoded against the corresponding entry of
    ``last_segments``; the per-row choice is exactly what
    :func:`greedy_next_hop` would return, so batched and per-trajectory
    rollouts stay equivalent.  Used by ``BIGCity.rollout_next_hops_batch`` to
    pick every trajectory's next segment from one batched decode step.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be (batch, num_segments), got shape {scores.shape}")
    last_segments = np.asarray(last_segments, dtype=np.int64).reshape(-1)
    if last_segments.shape[0] != scores.shape[0]:
        raise ValueError(
            f"got {scores.shape[0]} score rows but {last_segments.shape[0]} last segments"
        )
    if network is None:
        return np.argmax(scores, axis=-1).astype(np.int64)
    return np.asarray(
        [greedy_next_hop(row, int(seg), network) for row, seg in zip(scores, last_segments)],
        dtype=np.int64,
    )


def constrained_next_hop_ranking(
    scores: np.ndarray,
    last_segment: int,
    network: RoadNetwork,
    top_k: int = 5,
) -> np.ndarray:
    """Rank next-hop candidates, preferring graph successors of ``last_segment``.

    Parameters
    ----------
    scores:
        A ``(num_segments,)`` score vector (higher is better), e.g. the
        segment-classification logits of a model.
    last_segment:
        The final observed segment of the trajectory prefix.
    network:
        The road network that defines which segments are reachable in one hop.
    top_k:
        Number of ranked candidates to return.

    Returns
    -------
    numpy.ndarray
        Segment ids ordered best-first.  Successors of ``last_segment`` are
        ranked (among themselves, by score) ahead of all other segments; if
        the segment has no successors the ranking falls back to the plain
        score order.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if scores.shape[0] != network.num_segments:
        raise ValueError(
            f"scores has length {scores.shape[0]} but the network has {network.num_segments} segments"
        )
    if not 0 <= last_segment < network.num_segments:
        raise ValueError(f"last_segment {last_segment} is not a valid segment id")
    if top_k <= 0:
        raise ValueError("top_k must be positive")

    order = np.argsort(-scores)
    successors = network.successors(last_segment)
    if not successors:
        return order[:top_k].copy()

    successor_set = set(int(s) for s in successors)
    preferred = [int(s) for s in order if int(s) in successor_set]
    remainder = [int(s) for s in order if int(s) not in successor_set]
    ranking = preferred + remainder
    return np.asarray(ranking[:top_k], dtype=np.int64)


def _bfs_hop_distances(network: RoadNetwork, source: int, reverse: bool, max_hops: Optional[int]) -> Dict[int, int]:
    """Breadth-first hop distances from ``source`` (or *to* it when ``reverse``)."""
    if not 0 <= source < network.num_segments:
        raise ValueError(f"segment {source} is not a valid segment id")
    neighbours = network.predecessors if reverse else network.successors
    distances: Dict[int, int] = {int(source): 0}
    frontier = deque([int(source)])
    while frontier:
        current = frontier.popleft()
        depth = distances[current]
        if max_hops is not None and depth >= max_hops:
            continue
        for neighbour in neighbours(current):
            neighbour = int(neighbour)
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                frontier.append(neighbour)
    return distances


def forward_hop_distances(network: RoadNetwork, source: int, max_hops: Optional[int] = None) -> Dict[int, int]:
    """Hop distances from ``source`` to every segment reachable within ``max_hops``."""
    return _bfs_hop_distances(network, source, reverse=False, max_hops=max_hops)


def backward_hop_distances(network: RoadNetwork, target: int, max_hops: Optional[int] = None) -> Dict[int, int]:
    """Hop distances from every segment that can reach ``target`` within ``max_hops``."""
    return _bfs_hop_distances(network, target, reverse=True, max_hops=max_hops)


def gap_candidates(
    network: RoadNetwork,
    previous_segment: int,
    next_segment: Optional[int],
    gap_length: int,
    slack: int = 2,
) -> Set[int]:
    """Feasible segments for a masked position between two observed segments.

    A segment is feasible if a path of at most ``gap_length + slack`` hops
    leads from ``previous_segment`` to it and (when ``next_segment`` is known)
    from it to ``next_segment``.  This mirrors the map-constrained candidate
    sets used by trajectory-recovery models on road networks.

    Returns an empty set when no segment satisfies the constraint (callers
    should then fall back to unconstrained decoding).
    """
    if gap_length < 1:
        raise ValueError("gap_length must be at least 1")
    budget = gap_length + max(slack, 0)
    forward = forward_hop_distances(network, previous_segment, max_hops=budget)
    candidates = {segment for segment, hops in forward.items() if 1 <= hops <= budget}
    if next_segment is not None:
        backward = backward_hop_distances(network, next_segment, max_hops=budget)
        candidates &= {segment for segment, hops in backward.items() if 1 <= hops <= budget}
    candidates.discard(int(previous_segment))
    return candidates


def open_gap_candidates(
    network: RoadNetwork,
    anchor_segment: int,
    gap_length: int,
    before: bool,
    slack: int = 2,
) -> Set[int]:
    """Feasible segments for a masked position with only ONE observed neighbour.

    Used when a masked position precedes the first kept sample or follows the
    last one, so the gap is open on one side.  With ``before=True`` the masked
    position lies *before* the anchor and a feasible segment must reach
    ``anchor_segment`` within ``gap_length + slack`` hops; with ``before=False``
    it lies *after* the anchor and must be reachable *from* it.

    Returns an empty set when no segment satisfies the constraint (callers
    should then fall back to unconstrained decoding).
    """
    if gap_length < 1:
        raise ValueError("gap_length must be at least 1")
    budget = gap_length + max(slack, 0)
    if before:
        distances = backward_hop_distances(network, anchor_segment, max_hops=budget)
    else:
        distances = forward_hop_distances(network, anchor_segment, max_hops=budget)
    candidates = {segment for segment, hops in distances.items() if 1 <= hops <= budget}
    candidates.discard(int(anchor_segment))
    return candidates


def constrained_recovery_choice(
    scores: np.ndarray,
    candidates: Set[int],
) -> int:
    """Pick the highest-scoring segment inside ``candidates``.

    Falls back to the global argmax when the candidate set is empty, so that
    callers never lose a prediction because the constraint was infeasible.
    """
    scores = np.asarray(scores, dtype=np.float64).reshape(-1)
    if not candidates:
        return int(np.argmax(scores))
    candidate_list = sorted(int(c) for c in candidates if 0 <= int(c) < scores.shape[0])
    if not candidate_list:
        return int(np.argmax(scores))
    candidate_scores = scores[candidate_list]
    return int(candidate_list[int(np.argmax(candidate_scores))])
