"""Traffic-state tasks: one-step / multi-step prediction and imputation (Table V).

Forecasting uses a temporal split: models may train on the first part of the
time axis and are evaluated on windows drawn from the last part.  Imputation
masks a fraction of slices of a segment's series and asks the model to fill
them in.  Metrics are MAE / MAPE / RMSE on the speed channel, matching the
magnitude of the paper's numbers.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.loader import TrafficWindowSampler
from repro.data.traffic_state import TRAFFIC_CHANNELS
from repro.tasks import metrics

#: ``predict_fn(segment_id, start_slice, history, horizon) -> (horizon, channels)``
PredictFn = Callable[[int, int, int, int], np.ndarray]
#: ``impute_fn(segment_id, start_slice, num_slices, masked_positions, traffic_override) -> (len(masked), channels)``
ImputeFn = Callable[[int, int, int, Sequence[int], Optional[np.ndarray]], np.ndarray]
#: ``predict_batch_fn(cases) -> [(horizon, channels), ...]`` where each case is
#: ``(segment_id, start_slice, history, horizon)`` — the batched form answering
#: every window through one padded model batch
#: (``BIGCity.predict_traffic_states_batch``).
PredictBatchFn = Callable[[Sequence[Tuple[int, int, int, int]]], Sequence[np.ndarray]]
#: ``impute_batch_fn(cases, traffic_override) -> [(len(masked), channels), ...]``
#: where each case is ``(segment_id, start_slice, num_slices, masked_positions)``
#: (``BIGCity.impute_traffic_states_batch``).
ImputeBatchFn = Callable[
    [Sequence[Tuple[int, int, int, Sequence[int]]], Optional[np.ndarray]], Sequence[np.ndarray]
]


class TrafficStateEvaluator:
    """Build traffic forecasting / imputation cases and score prediction functions."""

    def __init__(
        self,
        dataset: CityDataset,
        history: int = 6,
        horizon: int = 6,
        max_windows: int = 64,
        train_fraction: float = 0.7,
        seed: int = 0,
    ) -> None:
        if dataset.traffic_states is None:
            raise ValueError(f"dataset {dataset.name!r} has no traffic states")
        self.dataset = dataset
        self.traffic = dataset.traffic_states
        self.history = history
        self.horizon = horizon
        self.train_fraction = train_fraction
        self._rng = np.random.default_rng(seed)
        sampler = TrafficWindowSampler(self.traffic, history=history, horizon=horizon, seed=seed)
        windows = sampler.all_windows(split="test", train_fraction=train_fraction)
        if len(windows) > max_windows:
            index = self._rng.choice(len(windows), size=max_windows, replace=False)
            windows = [windows[i] for i in index]
        self.windows = windows
        self.speed_index = TRAFFIC_CHANNELS.index("speed")

    def __len__(self) -> int:
        return len(self.windows)

    # ------------------------------------------------------------------
    def evaluate_prediction(self, predict_fn: PredictFn, horizon: Optional[int] = None) -> Dict[str, float]:
        """Score a forecasting function at the configured (or reduced) horizon."""
        horizon = horizon or self.horizon
        outputs = [
            predict_fn(window.segment_id, int(window.history_slices[0]), self.history, horizon)
            for window in self.windows
        ]
        return self._score_prediction(outputs, horizon)

    def evaluate_prediction_batch(
        self, predict_batch_fn: PredictBatchFn, horizon: Optional[int] = None
    ) -> Dict[str, float]:
        """Score a batched forecasting function (one model call for all windows).

        Produces exactly the metrics :meth:`evaluate_prediction` produces for
        the per-window form of the same method, since the batched model path
        is equality-pinned against the serial one.
        """
        horizon = horizon or self.horizon
        cases = [
            (window.segment_id, int(window.history_slices[0]), self.history, horizon)
            for window in self.windows
        ]
        return self._score_prediction(predict_batch_fn(cases), horizon)

    def _score_prediction(self, outputs: Sequence[np.ndarray], horizon: int) -> Dict[str, float]:
        if horizon > self.horizon:
            raise ValueError("cannot evaluate beyond the prepared horizon")
        if len(outputs) != len(self.windows):
            raise ValueError(
                f"prediction method answered {len(outputs)} of {len(self.windows)} windows"
            )
        predictions: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for window, output in zip(self.windows, outputs):
            output = np.atleast_2d(np.asarray(output, dtype=np.float64))
            if output.shape[0] < horizon:
                raise ValueError("prediction function returned fewer steps than requested")
            predictions.append(output[:horizon, self.speed_index])
            targets.append(window.target[:horizon, self.speed_index])
        prediction_array = np.concatenate(predictions)
        target_array = np.concatenate(targets)
        return {
            "mae": metrics.mae(prediction_array, target_array),
            "mape": metrics.mape(prediction_array, target_array),
            "rmse": metrics.rmse(prediction_array, target_array),
        }

    # ------------------------------------------------------------------
    def imputation_cases(
        self,
        mask_ratio: float = 0.25,
        sequence_length: int = 12,
        max_cases: int = 32,
    ) -> List[Tuple[int, int, int, np.ndarray]]:
        """(segment, start_slice, length, masked_positions) imputation cases."""
        cases = []
        max_start = max(self.traffic.num_slices - sequence_length, 1)
        for _ in range(max_cases):
            segment = int(self._rng.integers(0, self.traffic.num_segments))
            start = int(self._rng.integers(0, max_start))
            num_masked = max(1, int(round(mask_ratio * sequence_length)))
            masked = np.sort(self._rng.choice(sequence_length, size=num_masked, replace=False))
            cases.append((segment, start, sequence_length, masked))
        return cases

    def masked_traffic_values(self, cases: Sequence[Tuple[int, int, int, np.ndarray]]) -> np.ndarray:
        """A copy of the traffic tensor with every masked cell replaced by the channel mean.

        Passing this as the ``traffic_override`` prevents models whose
        encoders look at the full tensor from reading the values they are
        supposed to impute.
        """
        values = self.traffic.values.copy()
        channel_mean = values.reshape(-1, values.shape[-1]).mean(axis=0)
        for segment, start, length, masked in cases:
            for position in masked:
                values[segment, start + position] = channel_mean
        return values

    def evaluate_imputation(
        self,
        impute_fn: ImputeFn,
        mask_ratio: float = 0.25,
        sequence_length: int = 12,
        max_cases: int = 32,
    ) -> Dict[str, float]:
        """Score an imputation function on freshly sampled cases."""
        cases = self.imputation_cases(mask_ratio, sequence_length, max_cases)
        override = self.masked_traffic_values(cases)
        outputs = [
            impute_fn(segment, start, length, masked, override)
            for segment, start, length, masked in cases
        ]
        return self._score_imputation(cases, outputs)

    def evaluate_imputation_batch(
        self,
        impute_batch_fn: ImputeBatchFn,
        mask_ratio: float = 0.25,
        sequence_length: int = 12,
        max_cases: int = 32,
    ) -> Dict[str, float]:
        """Score a batched imputation function (one model call for all cases).

        Cases are drawn from the evaluator's RNG exactly as in
        :meth:`evaluate_imputation`, so two evaluators constructed with the
        same seed produce identical cases (and — with an equality-pinned
        batched model path — identical metrics) across the two forms.
        """
        cases = self.imputation_cases(mask_ratio, sequence_length, max_cases)
        override = self.masked_traffic_values(cases)
        return self._score_imputation(cases, impute_batch_fn(cases, override))

    def _score_imputation(
        self,
        cases: Sequence[Tuple[int, int, int, np.ndarray]],
        outputs: Sequence[np.ndarray],
    ) -> Dict[str, float]:
        if len(outputs) != len(cases):
            raise ValueError(f"imputation method answered {len(outputs)} of {len(cases)} cases")
        predictions: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for (segment, start, length, masked), output in zip(cases, outputs):
            output = np.atleast_2d(np.asarray(output, dtype=np.float64))
            if output.shape[0] != len(masked):
                raise ValueError("imputation function returned the wrong number of rows")
            predictions.append(output[:, self.speed_index])
            targets.append(self.traffic.values[segment, start + masked, self.speed_index])
        prediction_array = np.concatenate(predictions)
        target_array = np.concatenate(targets)
        return {
            "mae": metrics.mae(prediction_array, target_array),
            "mape": metrics.mape(prediction_array, target_array),
            "rmse": metrics.rmse(prediction_array, target_array),
        }
