"""Most-similar trajectory search (Table III "Most Similar Search", Fig. 6b/c).

Protocol (following the detour/variant protocol of JGRM/START that the paper
adopts): every test trajectory is split into two down-sampled variants — the
query keeps the odd-indexed samples, the database entry keeps the
even-indexed samples.  The database additionally contains the variants of
every other trajectory as distractors.  A search method ranks database
entries for each query; the matching variant of the same trajectory is the
single relevant item.

Two method families are supported:

* **embedding methods** (BIGCity, the representation-learning baselines):
  an ``embed_fn`` maps trajectories to vectors; ranking is by cosine
  similarity.
* **distance methods** (DTW, LCSS, Fréchet, EDR): a ``distance_fn`` scores a
  (query, candidate) pair directly; ranking is by ascending distance.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory
from repro.nn.functional import pairwise_cosine_similarity
from repro.tasks import metrics

EmbedFn = Callable[[Sequence[Trajectory]], np.ndarray]
DistanceFn = Callable[[Trajectory, Trajectory], float]


def _variant(trajectory: Trajectory, parity: int) -> Trajectory:
    """Down-sampled variant keeping samples with index ``parity`` mod 2 (endpoints always kept)."""
    keep = [i for i in range(len(trajectory)) if i % 2 == parity]
    if 0 not in keep:
        keep = [0] + keep
    if len(trajectory) - 1 not in keep:
        keep = keep + [len(trajectory) - 1]
    keep = sorted(set(keep))
    if len(keep) < 2:
        keep = [0, len(trajectory) - 1]
    return Trajectory(
        trajectory_id=trajectory.trajectory_id,
        user_id=trajectory.user_id,
        segments=[trajectory.segments[i] for i in keep],
        timestamps=[trajectory.timestamps[i] for i in keep],
        label=trajectory.label,
    )


class SimilaritySearchEvaluator:
    """Build the query/database protocol and score search methods."""

    def __init__(
        self,
        dataset: CityDataset,
        num_queries: Optional[int] = None,
        min_length: int = 5,
        seed: int = 0,
        extra_database: Optional[Sequence[Trajectory]] = None,
    ) -> None:
        self.dataset = dataset
        rng = np.random.default_rng(seed)
        candidates = [t for t in dataset.test_trajectories if len(t) >= min_length]
        if num_queries is not None and len(candidates) > num_queries:
            index = rng.choice(len(candidates), size=num_queries, replace=False)
            candidates = [candidates[i] for i in index]
        self.queries: List[Trajectory] = [_variant(t, parity=1) for t in candidates]
        self.database: List[Trajectory] = [_variant(t, parity=0) for t in candidates]
        #: index into ``database`` of the relevant item for each query.
        self.ground_truth: List[int] = list(range(len(candidates)))
        if extra_database:
            self.database.extend(_variant(t, parity=0) for t in extra_database if len(t) >= min_length)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def database_size(self) -> int:
        return len(self.database)

    # ------------------------------------------------------------------
    def rankings_from_embeddings(self, embed_fn: EmbedFn) -> Tuple[List[np.ndarray], float]:
        """Rank database items for every query via cosine similarity.

        Returns the rankings and the wall-clock search time in seconds
        (embedding + ranking), which feeds the Fig. 6b scalability plot.
        """
        start = time.perf_counter()
        query_embeddings = embed_fn(self.queries)
        database_embeddings = embed_fn(self.database)
        similarity = pairwise_cosine_similarity(query_embeddings, database_embeddings)
        rankings = [np.argsort(-similarity[i]) for i in range(similarity.shape[0])]
        elapsed = time.perf_counter() - start
        return rankings, elapsed

    def rankings_from_distance(self, distance_fn: DistanceFn) -> Tuple[List[np.ndarray], float]:
        """Rank database items for every query via a pairwise distance function."""
        start = time.perf_counter()
        rankings = []
        for query in self.queries:
            distances = np.array([distance_fn(query, candidate) for candidate in self.database])
            rankings.append(np.argsort(distances))
        elapsed = time.perf_counter() - start
        return rankings, elapsed

    # ------------------------------------------------------------------
    def evaluate(
        self,
        embed_fn: Optional[EmbedFn] = None,
        distance_fn: Optional[DistanceFn] = None,
    ) -> Dict[str, float]:
        """Score a search method (exactly one of ``embed_fn`` / ``distance_fn``)."""
        if (embed_fn is None) == (distance_fn is None):
            raise ValueError("provide exactly one of embed_fn or distance_fn")
        if embed_fn is not None:
            rankings, elapsed = self.rankings_from_embeddings(embed_fn)
        else:
            rankings, elapsed = self.rankings_from_distance(distance_fn)
        return {
            "hr@1": metrics.hit_rate_at_k(rankings, self.ground_truth, k=1),
            "hr@5": metrics.hit_rate_at_k(rankings, self.ground_truth, k=5),
            "hr@10": metrics.hit_rate_at_k(rankings, self.ground_truth, k=10),
            "mean_rank": metrics.mean_rank(rankings, self.ground_truth),
            "search_time_s": elapsed,
        }
