"""Travel time estimation (Table III, "Travel Time Estimation" block).

Timestamps of the input trajectory are hidden and the model regresses the
per-step intervals; the reported quantity is the total travel time of the
trip.  Metrics: MAE and RMSE in minutes, MAPE in percent (matching the
magnitude of the paper's numbers).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory
from repro.tasks import metrics

#: Maps trajectories to predicted total travel times in **seconds**.
TravelTimeFn = Callable[[Sequence[Trajectory]], np.ndarray]


class TravelTimeEvaluator:
    """Score travel-time estimators on the test split of a dataset."""

    def __init__(self, dataset: CityDataset, max_samples: Optional[int] = None, seed: int = 0) -> None:
        self.dataset = dataset
        rng = np.random.default_rng(seed)
        candidates = [t for t in dataset.test_trajectories if len(t) >= 2]
        if max_samples is not None and len(candidates) > max_samples:
            index = rng.choice(len(candidates), size=max_samples, replace=False)
            candidates = [candidates[i] for i in index]
        self.trajectories: List[Trajectory] = candidates
        self.targets_seconds = np.array([t.duration for t in candidates])

    def __len__(self) -> int:
        return len(self.trajectories)

    def evaluate(self, predict_fn: TravelTimeFn) -> Dict[str, float]:
        predictions_seconds = np.asarray(predict_fn(self.trajectories), dtype=np.float64)
        if predictions_seconds.shape != self.targets_seconds.shape:
            raise ValueError("travel-time predictor returned the wrong number of results")
        predictions_minutes = predictions_seconds / 60.0
        targets_minutes = self.targets_seconds / 60.0
        return {
            "mae": metrics.mae(predictions_minutes, targets_minutes),
            "rmse": metrics.rmse(predictions_minutes, targets_minutes),
            "mape": metrics.mape(predictions_minutes, targets_minutes),
        }
