"""Trajectory classification (Table III, "Trajectory Classification" block).

Two flavours, as in the paper:

* **user linkage** (XA/CD-like datasets): predict which user generated the
  trajectory; metrics are micro-F1, macro-F1 and macro-recall.  Only users
  with enough trajectories are kept (the paper keeps users with more than 50
  trajectories; the synthetic presets scale this threshold down).
* **binary traffic pattern** (BJ-like dataset): predict whether the trip was
  congested; metrics are accuracy, F1 and AUC.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory
from repro.tasks import metrics

#: Maps trajectories to predicted class indices.
PredictFn = Callable[[Sequence[Trajectory]], np.ndarray]
#: Maps trajectories to class scores (used for AUC in the binary task).
ScoreFn = Callable[[Sequence[Trajectory]], np.ndarray]


class TrajectoryClassificationEvaluator:
    """Score trajectory classifiers (user linkage or binary pattern)."""

    def __init__(
        self,
        dataset: CityDataset,
        target: str = "user",
        max_samples: Optional[int] = None,
        min_user_trajectories: int = 3,
        seed: int = 0,
    ) -> None:
        if target not in ("user", "pattern"):
            raise ValueError("target must be 'user' or 'pattern'")
        self.dataset = dataset
        self.target = target
        rng = np.random.default_rng(seed)
        candidates = list(dataset.test_trajectories)
        if target == "user":
            counts: Dict[int, int] = {}
            for trajectory in dataset.trajectories:
                counts[trajectory.user_id] = counts.get(trajectory.user_id, 0) + 1
            eligible = {user for user, count in counts.items() if count >= min_user_trajectories}
            candidates = [t for t in candidates if t.user_id in eligible]
        else:
            candidates = [t for t in candidates if t.label is not None]
        if max_samples is not None and len(candidates) > max_samples:
            index = rng.choice(len(candidates), size=max_samples, replace=False)
            candidates = [candidates[i] for i in index]
        self.trajectories: List[Trajectory] = candidates
        if target == "user":
            self.targets = np.array([t.user_id for t in candidates], dtype=np.int64)
            self.num_classes = max((t.user_id for t in dataset.trajectories), default=0) + 1
        else:
            self.targets = np.array([int(t.label) for t in candidates], dtype=np.int64)
            self.num_classes = 2

    def __len__(self) -> int:
        return len(self.trajectories)

    def evaluate(self, predict_fn: PredictFn, score_fn: Optional[ScoreFn] = None) -> Dict[str, float]:
        predictions = np.asarray(predict_fn(self.trajectories), dtype=np.int64)
        if predictions.shape != self.targets.shape:
            raise ValueError("classifier returned the wrong number of predictions")
        if self.target == "user":
            return {
                "micro_f1": metrics.micro_f1(predictions, self.targets, self.num_classes),
                "macro_f1": metrics.macro_f1(predictions, self.targets, self.num_classes),
                "macro_recall": metrics.macro_recall(predictions, self.targets, self.num_classes),
            }
        report = {
            "acc": metrics.accuracy(predictions, self.targets),
            "f1": metrics.binary_f1(predictions, self.targets),
        }
        if score_fn is not None:
            scores = np.asarray(score_fn(self.trajectories), dtype=np.float64)
            if scores.ndim == 2:
                scores = scores[:, 1]
            report["auc"] = metrics.roc_auc(scores, self.targets)
        else:
            report["auc"] = metrics.roc_auc(predictions.astype(float), self.targets)
        return report
