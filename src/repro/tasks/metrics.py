"""Evaluation metrics used across the paper's tables.

Regression: MAE, RMSE, MAPE.  Ranking: accuracy, MRR@k, NDCG@k, hit rate@k,
mean rank.  Classification: accuracy, binary F1, AUC, micro/macro F1, macro
recall.  All functions accept plain NumPy arrays / sequences and return
floats.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np


# ----------------------------------------------------------------------
# Regression metrics
# ----------------------------------------------------------------------
def mae(prediction, target) -> float:
    """Mean absolute error."""
    prediction, target = _align(prediction, target)
    return float(np.mean(np.abs(prediction - target)))


def rmse(prediction, target) -> float:
    """Root mean squared error."""
    prediction, target = _align(prediction, target)
    return float(np.sqrt(np.mean((prediction - target) ** 2)))


def mape(prediction, target, epsilon: float = 1e-6) -> float:
    """Mean absolute percentage error, in percent (as reported in the paper)."""
    prediction, target = _align(prediction, target)
    denominator = np.maximum(np.abs(target), epsilon)
    return float(np.mean(np.abs(prediction - target) / denominator) * 100.0)


def regression_report(prediction, target) -> Dict[str, float]:
    """MAE / RMSE / MAPE in one dictionary."""
    return {"mae": mae(prediction, target), "rmse": rmse(prediction, target), "mape": mape(prediction, target)}


# ----------------------------------------------------------------------
# Ranking metrics (next-hop prediction, similarity search)
# ----------------------------------------------------------------------
def accuracy(prediction, target) -> float:
    """Top-1 accuracy for integer predictions."""
    prediction = np.asarray(prediction)
    target = np.asarray(target)
    if prediction.shape != target.shape:
        raise ValueError("prediction and target must have the same shape")
    if prediction.size == 0:
        return 0.0
    return float(np.mean(prediction == target))


def mrr_at_k(rankings: Sequence[Sequence[int]], targets: Sequence[int], k: int = 5) -> float:
    """Mean reciprocal rank restricted to the top ``k`` candidates."""
    total = 0.0
    for ranking, target in zip(rankings, targets):
        top = list(ranking)[:k]
        if target in top:
            total += 1.0 / (top.index(target) + 1)
    return total / max(len(targets), 1)


def ndcg_at_k(rankings: Sequence[Sequence[int]], targets: Sequence[int], k: int = 5) -> float:
    """Normalised discounted cumulative gain with a single relevant item."""
    total = 0.0
    for ranking, target in zip(rankings, targets):
        top = list(ranking)[:k]
        if target in top:
            total += 1.0 / np.log2(top.index(target) + 2)
    return total / max(len(targets), 1)


def hit_rate_at_k(rankings: Sequence[Sequence[int]], targets: Sequence[int], k: int) -> float:
    """Fraction of queries whose target appears in the top ``k``."""
    hits = sum(1 for ranking, target in zip(rankings, targets) if target in list(ranking)[:k])
    return hits / max(len(targets), 1)


def mean_rank(rankings: Sequence[Sequence[int]], targets: Sequence[int]) -> float:
    """Average 1-based rank of the target (missing targets count as ``len+1``)."""
    total = 0.0
    for ranking, target in zip(rankings, targets):
        ranking = list(ranking)
        total += ranking.index(target) + 1 if target in ranking else len(ranking) + 1
    return total / max(len(targets), 1)


# ----------------------------------------------------------------------
# Classification metrics
# ----------------------------------------------------------------------
def binary_f1(prediction, target) -> float:
    """F1 score of the positive class for binary labels."""
    prediction = np.asarray(prediction).astype(int)
    target = np.asarray(target).astype(int)
    true_positive = int(np.sum((prediction == 1) & (target == 1)))
    false_positive = int(np.sum((prediction == 1) & (target == 0)))
    false_negative = int(np.sum((prediction == 0) & (target == 1)))
    if true_positive == 0:
        return 0.0
    precision = true_positive / (true_positive + false_positive)
    recall = true_positive / (true_positive + false_negative)
    return float(2 * precision * recall / (precision + recall))


def roc_auc(scores, target) -> float:
    """Area under the ROC curve from positive-class scores (rank-based estimator)."""
    scores = np.asarray(scores, dtype=np.float64)
    target = np.asarray(target).astype(int)
    positives = scores[target == 1]
    negatives = scores[target == 0]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    order = np.argsort(np.concatenate([negatives, positives]), kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, len(order) + 1)
    # Average ranks of ties.
    all_scores = np.concatenate([negatives, positives])
    for value in np.unique(all_scores):
        mask = all_scores == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    positive_ranks = ranks[len(negatives):]
    auc = (positive_ranks.sum() - len(positives) * (len(positives) + 1) / 2) / (len(positives) * len(negatives))
    return float(auc)


def _per_class_counts(prediction, target, num_classes: int):
    prediction = np.asarray(prediction).astype(int)
    target = np.asarray(target).astype(int)
    tp = np.zeros(num_classes)
    fp = np.zeros(num_classes)
    fn = np.zeros(num_classes)
    for klass in range(num_classes):
        tp[klass] = np.sum((prediction == klass) & (target == klass))
        fp[klass] = np.sum((prediction == klass) & (target != klass))
        fn[klass] = np.sum((prediction != klass) & (target == klass))
    return tp, fp, fn


def micro_f1(prediction, target, num_classes: int) -> float:
    """Micro-averaged F1 (equals accuracy for single-label problems)."""
    tp, fp, fn = _per_class_counts(prediction, target, num_classes)
    tp_sum, fp_sum, fn_sum = tp.sum(), fp.sum(), fn.sum()
    if tp_sum == 0:
        return 0.0
    precision = tp_sum / (tp_sum + fp_sum)
    recall = tp_sum / (tp_sum + fn_sum)
    return float(2 * precision * recall / max(precision + recall, 1e-12))


def macro_f1(prediction, target, num_classes: int) -> float:
    """Macro-averaged F1 over classes that appear in the targets."""
    tp, fp, fn = _per_class_counts(prediction, target, num_classes)
    target = np.asarray(target).astype(int)
    present = np.unique(target)
    scores = []
    for klass in present:
        precision = tp[klass] / max(tp[klass] + fp[klass], 1e-12)
        recall = tp[klass] / max(tp[klass] + fn[klass], 1e-12)
        if precision + recall == 0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores)) if scores else 0.0


def macro_recall(prediction, target, num_classes: int) -> float:
    """Macro-averaged recall over classes that appear in the targets."""
    tp, _, fn = _per_class_counts(prediction, target, num_classes)
    target = np.asarray(target).astype(int)
    present = np.unique(target)
    recalls = [tp[klass] / max(tp[klass] + fn[klass], 1e-12) for klass in present]
    return float(np.mean(recalls)) if recalls else 0.0


# ----------------------------------------------------------------------
def _align(prediction, target):
    prediction = np.asarray(prediction, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if prediction.shape != target.shape:
        raise ValueError(f"shape mismatch: {prediction.shape} vs {target.shape}")
    return prediction, target
