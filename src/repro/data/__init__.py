"""Dynamic spatiotemporal data: trajectories, traffic states and synthesis.

This package provides the temporal elements of the paper (time slices and
timestamps, Definitions 3–4), the two dynamic data modalities (trajectories,
Definition 5, and traffic states, Definition 6), the mobility simulator that
stands in for the BJ/XA/CD datasets, batching utilities and an HMM map
matcher used by the trajectory-recovery baselines.
"""

from repro.data.timeutils import TimeAxis, timestamp_features, TIMESTAMP_FEATURE_DIM
from repro.data.trajectory import Trajectory, subsample_trajectory
from repro.data.traffic_state import TrafficStateSeries, TRAFFIC_CHANNELS
from repro.data.synthetic import SyntheticCityConfig, SyntheticCity
from repro.data.datasets import CityDataset, DatasetSplits, load_dataset, DATASET_PRESETS
from repro.data.loader import TrajectoryBatch, TrajectoryLoader, TrafficWindowSampler
from repro.data.mapmatch import HMMMapMatcher
from repro.data.augmentation import augment_dataset
from repro.data.gps import GPSPoint, GPSTrace, map_match_trace, trajectory_to_gps
from repro.data.io import load_dataset_directory, load_trajectories, save_dataset, save_trajectories

__all__ = [
    "TimeAxis",
    "timestamp_features",
    "TIMESTAMP_FEATURE_DIM",
    "Trajectory",
    "subsample_trajectory",
    "TrafficStateSeries",
    "TRAFFIC_CHANNELS",
    "SyntheticCityConfig",
    "SyntheticCity",
    "CityDataset",
    "DatasetSplits",
    "load_dataset",
    "DATASET_PRESETS",
    "TrajectoryBatch",
    "TrajectoryLoader",
    "TrafficWindowSampler",
    "HMMMapMatcher",
    "augment_dataset",
    "GPSPoint",
    "GPSTrace",
    "map_match_trace",
    "trajectory_to_gps",
    "save_trajectories",
    "load_trajectories",
    "save_dataset",
    "load_dataset_directory",
]
