"""Trajectories: time-ordered sequences of road segments (Definition 5)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class Trajectory:
    """An individual's trip over the road network.

    ``segments[l]`` is the road segment occupied at ``timestamps[l]``; both
    sequences have the same length ``L`` and timestamps are non-decreasing.
    ``user_id`` identifies the traveller (used by trajectory–user linkage)
    and ``label`` optionally carries a traffic-pattern class (used by the
    binary classification task on the BJ-like dataset).
    """

    trajectory_id: int
    user_id: int
    segments: List[int]
    timestamps: List[float]
    label: Optional[int] = None
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.segments) != len(self.timestamps):
            raise ValueError("segments and timestamps must have the same length")
        if len(self.segments) < 2:
            raise ValueError("a trajectory needs at least two samples")
        if any(b < a for a, b in zip(self.timestamps, self.timestamps[1:])):
            raise ValueError("timestamps must be non-decreasing")
        self.segments = [int(s) for s in self.segments]
        self.timestamps = [float(t) for t in self.timestamps]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.segments)

    @property
    def origin(self) -> int:
        return self.segments[0]

    @property
    def destination(self) -> int:
        return self.segments[-1]

    @property
    def start_time(self) -> float:
        return self.timestamps[0]

    @property
    def end_time(self) -> float:
        return self.timestamps[-1]

    @property
    def duration(self) -> float:
        """Total travel time in seconds."""
        return self.end_time - self.start_time

    def travel_intervals(self) -> np.ndarray:
        """Per-step travel times ``delta tau_l = tau_l - tau_{l-1}`` (length ``L-1``)."""
        times = np.asarray(self.timestamps)
        return np.diff(times)

    def segment_array(self) -> np.ndarray:
        return np.asarray(self.segments, dtype=np.int64)

    def timestamp_array(self) -> np.ndarray:
        return np.asarray(self.timestamps, dtype=np.float64)

    def slice(self, start: int, stop: int) -> "Trajectory":
        """Sub-trajectory covering samples ``[start, stop)``."""
        return Trajectory(
            trajectory_id=self.trajectory_id,
            user_id=self.user_id,
            segments=self.segments[start:stop],
            timestamps=self.timestamps[start:stop],
            label=self.label,
            metadata=dict(self.metadata),
        )

    def to_dict(self) -> Dict:
        return {
            "trajectory_id": self.trajectory_id,
            "user_id": self.user_id,
            "segments": list(self.segments),
            "timestamps": list(self.timestamps),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "Trajectory":
        return cls(
            trajectory_id=int(payload["trajectory_id"]),
            user_id=int(payload["user_id"]),
            segments=list(payload["segments"]),
            timestamps=list(payload["timestamps"]),
            label=payload.get("label"),
        )


def subsample_trajectory(
    trajectory: Trajectory,
    keep_ratio: float,
    rng: Optional[np.random.Generator] = None,
    keep_endpoints: bool = True,
) -> Tuple[Trajectory, np.ndarray]:
    """Down-sample a trajectory, returning the sparse trajectory and kept indices.

    This models the "low-sampling-rate trajectory" input of the recovery task
    (Table IV): a mask ratio of 0.9 corresponds to ``keep_ratio=0.1``.

    Parameters
    ----------
    trajectory:
        The full-rate trajectory.
    keep_ratio:
        Fraction of samples to keep, in ``(0, 1]``.
    rng:
        Random generator; defaults to a fresh default generator.
    keep_endpoints:
        Always keep the first and last samples (recovery baselines and
        BIGCity all assume known origin/destination).

    Returns
    -------
    (sparse_trajectory, kept_indices)
        ``kept_indices`` refers to positions in the original trajectory and is
        sorted ascending.
    """
    if not 0.0 < keep_ratio <= 1.0:
        raise ValueError("keep_ratio must be in (0, 1]")
    rng = rng or np.random.default_rng()
    length = len(trajectory)
    target = max(2, int(round(length * keep_ratio)))
    candidates = np.arange(1, length - 1)
    forced = [0, length - 1] if keep_endpoints else []
    remaining = max(target - len(forced), 0)
    if remaining > 0 and len(candidates) > 0:
        chosen = rng.choice(candidates, size=min(remaining, len(candidates)), replace=False)
    else:
        chosen = np.array([], dtype=np.int64)
    kept = np.unique(np.concatenate([np.asarray(forced, dtype=np.int64), chosen.astype(np.int64)]))
    sparse = Trajectory(
        trajectory_id=trajectory.trajectory_id,
        user_id=trajectory.user_id,
        segments=[trajectory.segments[i] for i in kept],
        timestamps=[trajectory.timestamps[i] for i in kept],
        label=trajectory.label,
        metadata=dict(trajectory.metadata),
    )
    return sparse, kept
