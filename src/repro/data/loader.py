"""Batching utilities for trajectories and traffic-state windows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.traffic_state import TrafficStateSeries
from repro.data.trajectory import Trajectory


@dataclass
class TrajectoryBatch:
    """A padded batch of trajectories.

    ``segments`` and ``timestamps`` are padded to the longest trajectory in
    the batch; ``padding_mask`` is ``True`` at padded positions (the
    convention used by the attention layers).
    """

    segments: np.ndarray  # (batch, max_len) int64
    timestamps: np.ndarray  # (batch, max_len) float64
    lengths: np.ndarray  # (batch,) int64
    user_ids: np.ndarray  # (batch,) int64
    labels: np.ndarray  # (batch,) int64, -1 when absent
    padding_mask: np.ndarray  # (batch, max_len) bool
    trajectory_ids: np.ndarray  # (batch,) int64

    @property
    def batch_size(self) -> int:
        return self.segments.shape[0]

    @property
    def max_length(self) -> int:
        return self.segments.shape[1]


def collate_trajectories(trajectories: Sequence[Trajectory], pad_segment: int = 0) -> TrajectoryBatch:
    """Pad a list of trajectories into a :class:`TrajectoryBatch`."""
    if not trajectories:
        raise ValueError("cannot collate an empty trajectory list")
    lengths = np.array([len(t) for t in trajectories], dtype=np.int64)
    max_len = int(lengths.max())
    batch = len(trajectories)
    segments = np.full((batch, max_len), pad_segment, dtype=np.int64)
    timestamps = np.zeros((batch, max_len), dtype=np.float64)
    padding_mask = np.ones((batch, max_len), dtype=bool)
    user_ids = np.zeros(batch, dtype=np.int64)
    labels = np.full(batch, -1, dtype=np.int64)
    trajectory_ids = np.zeros(batch, dtype=np.int64)
    for row, trajectory in enumerate(trajectories):
        length = len(trajectory)
        segments[row, :length] = trajectory.segment_array()
        timestamps[row, :length] = trajectory.timestamp_array()
        padding_mask[row, :length] = False
        user_ids[row] = trajectory.user_id
        trajectory_ids[row] = trajectory.trajectory_id
        if trajectory.label is not None:
            labels[row] = trajectory.label
    return TrajectoryBatch(
        segments=segments,
        timestamps=timestamps,
        lengths=lengths,
        user_ids=user_ids,
        labels=labels,
        padding_mask=padding_mask,
        trajectory_ids=trajectory_ids,
    )


class TrajectoryLoader:
    """Iterate over trajectory batches, optionally shuffling every epoch."""

    def __init__(
        self,
        trajectories: Sequence[Trajectory],
        batch_size: int = 16,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.trajectories = list(trajectories)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        full, rem = divmod(len(self.trajectories), self.batch_size)
        if rem and not self.drop_last:
            full += 1
        return full

    def __iter__(self) -> Iterator[TrajectoryBatch]:
        order = np.arange(len(self.trajectories))
        if self.shuffle:
            self._rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            index = order[start : start + self.batch_size]
            if len(index) < self.batch_size and self.drop_last:
                continue
            yield collate_trajectories([self.trajectories[i] for i in index])


@dataclass
class TrafficWindow:
    """One traffic-state forecasting sample for a single segment."""

    segment_id: int
    history_slices: np.ndarray  # (history,) int
    target_slices: np.ndarray  # (horizon,) int
    history: np.ndarray  # (history, channels)
    target: np.ndarray  # (horizon, channels)


class TrafficWindowSampler:
    """Sample (history, horizon) windows from a traffic-state series.

    Used both for BIGCity's traffic-state prompts and for every traffic
    baseline; the split is temporal (train on the first part of the axis,
    test on the last) so that forecasting is genuinely out-of-sample.
    """

    def __init__(
        self,
        traffic: TrafficStateSeries,
        history: int = 6,
        horizon: int = 6,
        seed: int = 0,
    ) -> None:
        if history < 1 or horizon < 1:
            raise ValueError("history and horizon must be >= 1")
        if history + horizon > traffic.num_slices:
            raise ValueError("window longer than the available time axis")
        self.traffic = traffic
        self.history = history
        self.horizon = horizon
        self._rng = np.random.default_rng(seed)

    def valid_start_range(self, split: str = "all", train_fraction: float = 0.7) -> Tuple[int, int]:
        """Start-slice range (inclusive, exclusive) for a temporal split."""
        last_start = self.traffic.num_slices - self.history - self.horizon + 1
        boundary = int(last_start * train_fraction)
        if split == "train":
            return 0, max(boundary, 1)
        if split == "test":
            return max(boundary, 1), max(last_start, boundary + 1)
        if split == "all":
            return 0, max(last_start, 1)
        raise ValueError(f"unknown split {split!r}")

    def window(self, segment_id: int, start_slice: int) -> TrafficWindow:
        history_slices = np.arange(start_slice, start_slice + self.history)
        target_slices = np.arange(start_slice + self.history, start_slice + self.history + self.horizon)
        series = self.traffic.segment_series(segment_id)
        return TrafficWindow(
            segment_id=segment_id,
            history_slices=history_slices,
            target_slices=target_slices,
            history=series[history_slices],
            target=series[target_slices],
        )

    def sample(self, count: int, split: str = "train", train_fraction: float = 0.7) -> List[TrafficWindow]:
        """Draw ``count`` random windows from the requested temporal split."""
        low, high = self.valid_start_range(split, train_fraction)
        windows = []
        for _ in range(count):
            segment = int(self._rng.integers(0, self.traffic.num_segments))
            start = int(self._rng.integers(low, high))
            windows.append(self.window(segment, start))
        return windows

    def all_windows(self, split: str = "test", train_fraction: float = 0.7, stride: int = 1) -> List[TrafficWindow]:
        """Every window of the split for every segment (deterministic order)."""
        low, high = self.valid_start_range(split, train_fraction)
        windows = []
        for segment in range(self.traffic.num_segments):
            for start in range(low, high, stride):
                windows.append(self.window(segment, start))
        return windows
