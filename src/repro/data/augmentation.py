"""Trajectory augmentation utilities.

Contrastive trajectory-representation baselines (JCLRNT, START) rely on
augmented "views" of a trajectory; the synthetic datasets are small, so the
training loops also benefit from cheap augmentation.  Every function is a
pure transformation ``Trajectory -> Trajectory`` driven by an explicit
``numpy.random.Generator`` so augmented datasets are reproducible.

All augmentations preserve the invariants checked by
:class:`~repro.data.trajectory.Trajectory` (non-empty, strictly increasing
timestamps) and keep the original trajectory untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.data.trajectory import Trajectory
from repro.roadnet.network import RoadNetwork

__all__ = [
    "drop_samples",
    "crop_window",
    "jitter_timestamps",
    "perturb_segments",
    "detour",
    "augment_dataset",
]


def _clone(trajectory: Trajectory, segments: Sequence[int], timestamps: Sequence[float]) -> Trajectory:
    return Trajectory(
        trajectory_id=trajectory.trajectory_id,
        user_id=trajectory.user_id,
        segments=list(int(s) for s in segments),
        timestamps=list(float(t) for t in timestamps),
        label=trajectory.label,
    )


def drop_samples(trajectory: Trajectory, drop_ratio: float, rng: np.random.Generator, min_length: int = 2) -> Trajectory:
    """Randomly drop interior samples (origin and destination are kept)."""
    if not 0.0 <= drop_ratio < 1.0:
        raise ValueError("drop_ratio must be in [0, 1)")
    length = len(trajectory)
    if length <= min_length:
        return _clone(trajectory, trajectory.segments, trajectory.timestamps)
    interior = np.arange(1, length - 1)
    keep_count = max(min_length - 2, int(round(len(interior) * (1.0 - drop_ratio))))
    kept_interior = np.sort(rng.choice(interior, size=min(keep_count, len(interior)), replace=False)) if keep_count else np.array([], dtype=int)
    kept = np.concatenate([[0], kept_interior, [length - 1]]).astype(int)
    return _clone(
        trajectory,
        [trajectory.segments[i] for i in kept],
        [trajectory.timestamps[i] for i in kept],
    )


def crop_window(trajectory: Trajectory, window: int, rng: np.random.Generator) -> Trajectory:
    """Keep a random contiguous window of ``window`` samples."""
    if window < 2:
        raise ValueError("window must be at least 2 samples")
    length = len(trajectory)
    if length <= window:
        return _clone(trajectory, trajectory.segments, trajectory.timestamps)
    start = int(rng.integers(0, length - window + 1))
    stop = start + window
    return _clone(trajectory, trajectory.segments[start:stop], trajectory.timestamps[start:stop])


def jitter_timestamps(trajectory: Trajectory, max_shift_seconds: float, rng: np.random.Generator) -> Trajectory:
    """Add bounded noise to the sampling times while keeping them increasing."""
    if max_shift_seconds < 0:
        raise ValueError("max_shift_seconds must be non-negative")
    timestamps = np.asarray(trajectory.timestamps, dtype=np.float64).copy()
    if len(timestamps) > 1 and max_shift_seconds > 0:
        gaps = np.diff(timestamps)
        # never shift a sample past its neighbours: bound each shift by a
        # third of the smaller adjacent gap
        for index in range(1, len(timestamps) - 1):
            bound = min(gaps[index - 1], gaps[index]) / 3.0
            bound = min(bound, max_shift_seconds)
            timestamps[index] += float(rng.uniform(-bound, bound))
    return _clone(trajectory, trajectory.segments, timestamps)


def perturb_segments(
    trajectory: Trajectory,
    network: RoadNetwork,
    perturb_ratio: float,
    rng: np.random.Generator,
) -> Trajectory:
    """Replace a fraction of interior segments with a graph neighbour.

    Each selected sample is replaced by a random successor or predecessor of
    the original segment, emulating GPS/map-matching noise while staying on
    the road network.
    """
    if not 0.0 <= perturb_ratio <= 1.0:
        raise ValueError("perturb_ratio must be in [0, 1]")
    segments = list(trajectory.segments)
    for index in range(1, len(segments) - 1):
        if rng.random() >= perturb_ratio:
            continue
        neighbours = list(network.successors(segments[index])) + list(network.predecessors(segments[index]))
        if neighbours:
            segments[index] = int(rng.choice(neighbours))
    return _clone(trajectory, segments, trajectory.timestamps)


def detour(
    trajectory: Trajectory,
    network: RoadNetwork,
    rng: np.random.Generator,
    max_extra_hops: int = 2,
) -> Trajectory:
    """Insert a short detour between two consecutive samples.

    A random position is chosen and up to ``max_extra_hops`` intermediate
    segments are inserted along outgoing edges, with interpolated timestamps.
    If the chosen segment has no successors the trajectory is returned
    unchanged.
    """
    if max_extra_hops < 1:
        raise ValueError("max_extra_hops must be at least 1")
    if len(trajectory) < 2:
        return _clone(trajectory, trajectory.segments, trajectory.timestamps)
    position = int(rng.integers(0, len(trajectory) - 1))
    current = int(trajectory.segments[position])
    extra_segments: List[int] = []
    for _ in range(int(rng.integers(1, max_extra_hops + 1))):
        successors = network.successors(current)
        if not successors:
            break
        current = int(rng.choice(successors))
        extra_segments.append(current)
    if not extra_segments:
        return _clone(trajectory, trajectory.segments, trajectory.timestamps)
    start_time = trajectory.timestamps[position]
    end_time = trajectory.timestamps[position + 1]
    fractions = np.linspace(0.0, 1.0, len(extra_segments) + 2)[1:-1]
    extra_times = [start_time + float(f) * (end_time - start_time) for f in fractions]
    segments = (
        list(trajectory.segments[: position + 1]) + extra_segments + list(trajectory.segments[position + 1 :])
    )
    timestamps = (
        list(trajectory.timestamps[: position + 1]) + extra_times + list(trajectory.timestamps[position + 1 :])
    )
    return _clone(trajectory, segments, timestamps)


def augment_dataset(
    trajectories: Sequence[Trajectory],
    network: RoadNetwork,
    copies: int = 1,
    seed: int = 0,
    drop_ratio: float = 0.2,
    perturb_ratio: float = 0.1,
    time_jitter_seconds: float = 30.0,
) -> List[Trajectory]:
    """Produce ``copies`` augmented variants of every trajectory.

    Each copy applies sample dropping, segment perturbation and timestamp
    jitter in sequence.  The returned list contains only the new variants
    (the originals are left to the caller), each keeping its source
    trajectory's user id and label so supervised tasks can use them directly.
    """
    if copies < 0:
        raise ValueError("copies must be non-negative")
    rng = np.random.default_rng(seed)
    augmented: List[Trajectory] = []
    for trajectory in trajectories:
        for _ in range(copies):
            variant = drop_samples(trajectory, drop_ratio, rng)
            variant = perturb_segments(variant, network, perturb_ratio, rng)
            variant = jitter_timestamps(variant, time_jitter_seconds, rng)
            augmented.append(variant)
    return augmented
