"""Traffic states: dynamic per-segment time series (Definition 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.timeutils import TimeAxis
from repro.data.trajectory import Trajectory

#: Traffic-state channels ``D_d``: average speed (km/h), inflow and outflow
#: (vehicles entering/leaving the segment during the slice).
TRAFFIC_CHANNELS: Tuple[str, ...] = ("speed", "inflow", "outflow")


@dataclass
class TrafficStateSeries:
    """Population-level traffic state tensor over a time axis.

    ``values`` has shape ``(num_segments, num_slices, num_channels)``; the
    series for one segment corresponds to ``ts_i`` in Definition 6.
    """

    values: np.ndarray
    time_axis: TimeAxis
    channels: Tuple[str, ...] = TRAFFIC_CHANNELS

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)
        if self.values.ndim != 3:
            raise ValueError("traffic state values must be (segments, slices, channels)")
        if self.values.shape[1] != self.time_axis.num_slices:
            raise ValueError("slice dimension must match the time axis")
        if self.values.shape[2] != len(self.channels):
            raise ValueError("channel dimension must match channel names")

    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return self.values.shape[0]

    @property
    def num_slices(self) -> int:
        return self.values.shape[1]

    @property
    def num_channels(self) -> int:
        return self.values.shape[2]

    def segment_series(self, segment_id: int) -> np.ndarray:
        """The ``(num_slices, num_channels)`` series of one segment."""
        return self.values[segment_id]

    def at(self, segment_id: int, timestamp: float) -> np.ndarray:
        """Dynamic feature ``e^(d)_{i, t_tau}`` of a segment at a timestamp."""
        return self.values[segment_id, self.time_axis.slice_of(timestamp)]

    def window(self, segment_id: int, slice_index: int, history: int) -> np.ndarray:
        """Concatenated history window ``[t - history, ..., t]`` (zero-padded at the start)."""
        start = slice_index - history
        pieces = []
        for t in range(start, slice_index + 1):
            if t < 0:
                pieces.append(np.zeros(self.num_channels))
            else:
                pieces.append(self.values[segment_id, t])
        return np.concatenate(pieces)

    def channel_index(self, name: str) -> int:
        return self.channels.index(name)

    def normalised(self) -> Tuple["TrafficStateSeries", np.ndarray, np.ndarray]:
        """Z-score the series per channel; returns (series, mean, std)."""
        mean = self.values.reshape(-1, self.num_channels).mean(axis=0)
        std = self.values.reshape(-1, self.num_channels).std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        normalised = TrafficStateSeries((self.values - mean) / std, self.time_axis, self.channels)
        return normalised, mean, std

    def copy(self) -> "TrafficStateSeries":
        return TrafficStateSeries(self.values.copy(), self.time_axis, self.channels)

    # ------------------------------------------------------------------
    @classmethod
    def from_trajectories(
        cls,
        trajectories: Sequence[Trajectory],
        num_segments: int,
        time_axis: TimeAxis,
        segment_lengths: Optional[np.ndarray] = None,
        default_speed: float = 40.0,
    ) -> "TrafficStateSeries":
        """Aggregate trajectories into traffic states.

        For every (segment, slice) cell we count vehicles entering (inflow)
        and leaving (outflow), and average the observed traversal speeds.
        Cells never visited fall back to ``default_speed`` and zero flows —
        mirroring how the paper computes traffic states from map-matched
        trajectories.
        """
        values = np.zeros((num_segments, time_axis.num_slices, len(TRAFFIC_CHANNELS)))
        speed_sum = np.zeros((num_segments, time_axis.num_slices))
        speed_count = np.zeros((num_segments, time_axis.num_slices))
        speed_idx = TRAFFIC_CHANNELS.index("speed")
        inflow_idx = TRAFFIC_CHANNELS.index("inflow")
        outflow_idx = TRAFFIC_CHANNELS.index("outflow")

        for trajectory in trajectories:
            segments = trajectory.segments
            times = trajectory.timestamps
            for position in range(len(segments)):
                segment = segments[position]
                if not 0 <= segment < num_segments:
                    continue
                slice_index = time_axis.slice_of(times[position])
                values[segment, slice_index, inflow_idx] += 1.0
                if position + 1 < len(segments):
                    # The vehicle leaves this segment when it reaches the next one.
                    leave_slice = time_axis.slice_of(times[position + 1])
                    values[segment, leave_slice, outflow_idx] += 1.0
                    dwell = times[position + 1] - times[position]
                    if dwell > 0 and segment_lengths is not None:
                        speed_kmh = segment_lengths[segment] / dwell * 3600.0
                        speed_sum[segment, slice_index] += speed_kmh
                        speed_count[segment, slice_index] += 1.0

        observed = speed_count > 0
        values[:, :, speed_idx] = np.where(observed, speed_sum / np.maximum(speed_count, 1.0), default_speed)
        return cls(values, time_axis)
