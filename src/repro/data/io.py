"""Persisting city datasets to disk.

The synthetic presets are regenerated on demand from their seed, but a
library user working with their own data (or wanting to pin an exact
synthetic sample) needs a stable on-disk format.  A dataset directory looks
like::

    <directory>/
        network.json          # road network (repro.roadnet.io format)
        trajectories.jsonl    # one JSON object per trajectory
        traffic.npz           # traffic-state tensor + channel names (optional)
        metadata.json         # name, time axis, splits

Everything is plain JSON / NPZ so the artefacts stay readable outside this
library.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.data.datasets import CityDataset, DatasetSplits
from repro.data.timeutils import TimeAxis
from repro.data.traffic_state import TrafficStateSeries
from repro.data.trajectory import Trajectory
from repro.roadnet.io import load_road_network, save_road_network

__all__ = [
    "save_trajectories",
    "load_trajectories",
    "save_dataset",
    "load_dataset_directory",
]

PathLike = Union[str, os.PathLike]

_NETWORK_FILE = "network.json"
_TRAJECTORY_FILE = "trajectories.jsonl"
_TRAFFIC_FILE = "traffic.npz"
_METADATA_FILE = "metadata.json"


def save_trajectories(trajectories: Sequence[Trajectory], path: PathLike) -> Path:
    """Write trajectories to a JSON-lines file (one object per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        for trajectory in trajectories:
            handle.write(json.dumps(trajectory.to_dict()))
            handle.write("\n")
    return path


def load_trajectories(path: PathLike) -> List[Trajectory]:
    """Read trajectories written by :func:`save_trajectories`."""
    path = Path(path)
    trajectories: List[Trajectory] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: invalid JSON ({error})") from error
            trajectories.append(Trajectory.from_dict(payload))
    return trajectories


def save_dataset(dataset: CityDataset, directory: PathLike) -> Path:
    """Write a full :class:`CityDataset` to ``directory``.

    The directory is created if needed; existing files inside it are
    overwritten.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    save_road_network(dataset.network, directory / _NETWORK_FILE)
    save_trajectories(dataset.trajectories, directory / _TRAJECTORY_FILE)

    if dataset.traffic_states is not None:
        np.savez_compressed(
            directory / _TRAFFIC_FILE,
            values=dataset.traffic_states.values,
            channels=np.array(list(dataset.traffic_states.channels)),
        )

    metadata = {
        "name": dataset.name,
        "time_axis": {
            "num_slices": dataset.time_axis.num_slices,
            "slice_seconds": dataset.time_axis.slice_seconds,
            "origin": dataset.time_axis.origin,
        },
        "splits": {
            "train": list(dataset.splits.train),
            "validation": list(dataset.splits.validation),
            "test": list(dataset.splits.test),
        },
        "has_traffic_states": dataset.traffic_states is not None,
    }
    with open(directory / _METADATA_FILE, "w", encoding="utf-8") as handle:
        json.dump(metadata, handle, indent=2)
    return directory


def load_dataset_directory(directory: PathLike) -> CityDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    directory = Path(directory)
    metadata_path = directory / _METADATA_FILE
    if not metadata_path.exists():
        raise FileNotFoundError(f"{directory} does not contain {_METADATA_FILE}; not a dataset directory")
    with open(metadata_path, "r", encoding="utf-8") as handle:
        metadata = json.load(handle)

    network = load_road_network(directory / _NETWORK_FILE)
    trajectories = load_trajectories(directory / _TRAJECTORY_FILE)
    time_axis = TimeAxis(
        num_slices=int(metadata["time_axis"]["num_slices"]),
        slice_seconds=float(metadata["time_axis"]["slice_seconds"]),
        origin=float(metadata["time_axis"]["origin"]),
    )

    traffic_states: Optional[TrafficStateSeries] = None
    if metadata.get("has_traffic_states"):
        traffic_path = directory / _TRAFFIC_FILE
        if not traffic_path.exists():
            raise FileNotFoundError(f"{directory}: metadata announces traffic states but {_TRAFFIC_FILE} is missing")
        with np.load(traffic_path, allow_pickle=False) as archive:
            traffic_states = TrafficStateSeries(
                values=archive["values"],
                time_axis=time_axis,
                channels=tuple(str(c) for c in archive["channels"]),
            )

    splits = DatasetSplits(
        train=tuple(int(i) for i in metadata["splits"]["train"]),
        validation=tuple(int(i) for i in metadata["splits"]["validation"]),
        test=tuple(int(i) for i in metadata["splits"]["test"]),
    )
    return CityDataset(
        name=str(metadata["name"]),
        network=network,
        trajectories=trajectories,
        traffic_states=traffic_states,
        splits=splits,
        time_axis=time_axis,
    )
