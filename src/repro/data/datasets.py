"""Dataset presets mirroring the paper's three cities at laptop scale.

``load_dataset("xa_like")`` returns a :class:`CityDataset` bundling the road
network, trajectories, traffic states and the train/validation/test split.
The presets mirror the *relative* properties of the paper's datasets
(Table II): the BJ-like preset is the largest, uses a different split ratio
(8:1:1 instead of 6:2:2) and — as in the paper — carries **no dynamic
traffic-state features** because its trajectories are too sparse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.synthetic import SyntheticCity, SyntheticCityConfig
from repro.data.timeutils import TimeAxis
from repro.data.traffic_state import TrafficStateSeries
from repro.data.trajectory import Trajectory
from repro.roadnet.generators import grid_city, radial_city
from repro.roadnet.network import RoadNetwork


@dataclass(frozen=True)
class DatasetSplits:
    """Index lists of trajectories for train / validation / test."""

    train: Tuple[int, ...]
    validation: Tuple[int, ...]
    test: Tuple[int, ...]

    def __post_init__(self) -> None:
        overlap = set(self.train) & set(self.validation) | set(self.train) & set(self.test) | set(self.validation) & set(self.test)
        if overlap:
            raise ValueError(f"split indices overlap: {sorted(overlap)[:5]}")

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.validation), len(self.test)


@dataclass
class CityDataset:
    """A city-scale dataset: road network + trajectories + traffic states."""

    name: str
    network: RoadNetwork
    trajectories: List[Trajectory]
    traffic_states: Optional[TrafficStateSeries]
    splits: DatasetSplits
    time_axis: TimeAxis

    @property
    def num_users(self) -> int:
        return len({t.user_id for t in self.trajectories})

    @property
    def num_segments(self) -> int:
        return self.network.num_segments

    @property
    def has_dynamic_features(self) -> bool:
        """False for the BJ-like preset, whose traffic states are unavailable (paper Sec. VII-A)."""
        return self.traffic_states is not None

    def subset(self, indices: Sequence[int]) -> List[Trajectory]:
        return [self.trajectories[i] for i in indices]

    @property
    def train_trajectories(self) -> List[Trajectory]:
        return self.subset(self.splits.train)

    @property
    def validation_trajectories(self) -> List[Trajectory]:
        return self.subset(self.splits.validation)

    @property
    def test_trajectories(self) -> List[Trajectory]:
        return self.subset(self.splits.test)

    def summary(self) -> Dict[str, float]:
        """Dataset statistics in the spirit of Table II."""
        lengths = [len(t) for t in self.trajectories]
        return {
            "trajectories": len(self.trajectories),
            "users": self.num_users,
            "road_segments": self.num_segments,
            "time_slices": self.time_axis.num_slices,
            "mean_trajectory_length": float(np.mean(lengths)) if lengths else 0.0,
            "has_dynamic_features": float(self.has_dynamic_features),
        }


#: Named presets.  ``scale`` multiplies user counts for the scalability
#: experiments (Fig. 6) without changing the network.
DATASET_PRESETS: Dict[str, Dict] = {
    "bj_like": {
        "layout": ("grid", {"rows": 7, "cols": 7, "block_km": 0.6}),
        "config": {
            "num_users": 36,
            "trajectories_per_user": 8,
            "num_days": 2,
            "commute_probability": 0.75,
            "min_route_hops": 8,
            "max_route_hops": 24,
        },
        "split": (0.8, 0.1, 0.1),
        "dynamic_features": False,
    },
    "xa_like": {
        "layout": ("grid", {"rows": 5, "cols": 6, "block_km": 0.5}),
        "config": {
            "num_users": 30,
            "trajectories_per_user": 8,
            "num_days": 2,
            "commute_probability": 0.7,
            "min_route_hops": 7,
            "max_route_hops": 20,
        },
        "split": (0.6, 0.2, 0.2),
        "dynamic_features": True,
    },
    "cd_like": {
        "layout": ("radial", {"num_rings": 3, "spokes": 8, "ring_spacing_km": 0.8}),
        "config": {
            "num_users": 32,
            "trajectories_per_user": 8,
            "num_days": 2,
            "commute_probability": 0.7,
            "min_route_hops": 7,
            "max_route_hops": 20,
        },
        "split": (0.6, 0.2, 0.2),
        "dynamic_features": True,
    },
}

_CACHE: Dict[Tuple[str, int, float], CityDataset] = {}


def load_dataset(name: str, seed: int = 0, scale: float = 1.0, use_cache: bool = True) -> CityDataset:
    """Build (or fetch from cache) one of the named synthetic city datasets.

    Parameters
    ----------
    name:
        One of ``bj_like``, ``xa_like``, ``cd_like``.
    seed:
        Seed for the road-network layout and the mobility simulation.
    scale:
        Multiplier on the number of users (and therefore trajectories); used
        by the efficiency / scalability experiments.
    use_cache:
        Re-use an already-built dataset for the same ``(name, seed, scale)``.
    """
    if name not in DATASET_PRESETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_PRESETS)}")
    key = (name, seed, float(scale))
    if use_cache and key in _CACHE:
        return _CACHE[key]

    preset = DATASET_PRESETS[name]
    layout_kind, layout_kwargs = preset["layout"]
    if layout_kind == "grid":
        network = grid_city(seed=seed, **layout_kwargs)
    elif layout_kind == "radial":
        network = radial_city(seed=seed, **layout_kwargs)
    else:  # pragma: no cover - presets only use the two layouts above
        raise ValueError(f"unknown layout {layout_kind!r}")

    config_kwargs = dict(preset["config"])
    config_kwargs["num_users"] = max(2, int(round(config_kwargs["num_users"] * scale)))
    config = SyntheticCityConfig(seed=seed, **config_kwargs)
    city = SyntheticCity(network, config)
    trajectories, traffic_states = city.simulate()

    splits = make_splits(len(trajectories), preset["split"], seed=seed)
    dataset = CityDataset(
        name=name,
        network=network,
        trajectories=trajectories,
        traffic_states=traffic_states if preset["dynamic_features"] else None,
        splits=splits,
        time_axis=city.time_axis,
    )
    if use_cache:
        _CACHE[key] = dataset
    return dataset


def make_splits(num_items: int, ratios: Tuple[float, float, float], seed: int = 0) -> DatasetSplits:
    """Random train/validation/test split with the given ratios."""
    if num_items < 3:
        raise ValueError("need at least three items to split")
    if abs(sum(ratios) - 1.0) > 1e-6:
        raise ValueError("split ratios must sum to one")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_items)
    n_train = int(round(ratios[0] * num_items))
    n_val = int(round(ratios[1] * num_items))
    n_train = max(1, min(n_train, num_items - 2))
    n_val = max(1, min(n_val, num_items - n_train - 1))
    train = tuple(int(i) for i in order[:n_train])
    validation = tuple(int(i) for i in order[n_train : n_train + n_val])
    test = tuple(int(i) for i in order[n_train + n_val :])
    return DatasetSplits(train=train, validation=validation, test=test)


def clear_dataset_cache() -> None:
    """Drop every cached dataset (used by tests that tweak presets)."""
    _CACHE.clear()
