"""Synthetic mobility simulator standing in for the BJ/XA/CD datasets.

The paper evaluates on proprietary taxi / ride-hailing trajectories that are
not available offline, so this module simulates a city population whose
behaviour has the statistical structure the eight evaluation tasks rely on:

* **user-distinct routing habits** — every synthetic user owns a home and a
  work location and a personal routing preference (a persistent random
  perturbation of edge weights), which makes trajectory–user linkage and
  trajectory classification learnable;
* **time-of-day congestion** — a latent congestion field slows segments
  during rush hours, with arterial roads affected more, which gives travel
  time estimation and traffic-state prediction genuine temporal signal;
* **trajectory / traffic-state coupling** — traffic states are produced from
  the very same latent speed field and vehicle counts that drive trajectory
  timestamps, so the two modalities are consistent with each other exactly
  as in the real data (Sec. III-C motivates BIGCity with this coupling).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.timeutils import SECONDS_PER_DAY, SECONDS_PER_HOUR, TimeAxis
from repro.data.traffic_state import TRAFFIC_CHANNELS, TrafficStateSeries
from repro.data.trajectory import Trajectory
from repro.roadnet.network import RoadNetwork


@dataclass
class SyntheticCityConfig:
    """Knobs of the mobility simulator."""

    num_users: int = 40
    trajectories_per_user: int = 8
    num_days: int = 2
    slice_seconds: float = 1800.0
    min_route_hops: int = 4
    max_route_hops: int = 18
    commute_probability: float = 0.7
    route_preference_noise: float = 0.6
    speed_noise: float = 0.08
    rush_hour_slowdown: float = 0.45
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_users < 1:
            raise ValueError("need at least one user")
        if self.trajectories_per_user < 1:
            raise ValueError("need at least one trajectory per user")
        if not 0.0 <= self.commute_probability <= 1.0:
            raise ValueError("commute_probability must be a probability")
        if self.min_route_hops < 2:
            raise ValueError("routes need at least two segments")


@dataclass
class _UserProfile:
    user_id: int
    home: int
    work: int
    edge_weights: Dict[Tuple[int, int], float]
    departure_jitter: float
    morning_hour: float
    evening_hour: float


class SyntheticCity:
    """Simulate trajectories and traffic states on a road network."""

    def __init__(self, network: RoadNetwork, config: Optional[SyntheticCityConfig] = None) -> None:
        self.network = network
        self.config = config or SyntheticCityConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.time_axis = TimeAxis(
            num_slices=int(self.config.num_days * SECONDS_PER_DAY // self.config.slice_seconds),
            slice_seconds=self.config.slice_seconds,
        )
        self._core_segments = network.largest_strongly_connected_component()
        if len(self._core_segments) < 2:
            raise ValueError("the road network has no usable strongly connected core")
        self._users = [self._make_user(uid) for uid in range(self.config.num_users)]
        self._congestion = self._build_congestion_field()

    # ------------------------------------------------------------------
    # User population
    # ------------------------------------------------------------------
    def _make_user(self, user_id: int) -> _UserProfile:
        rng = self._rng
        home, work = rng.choice(self._core_segments, size=2, replace=False)
        while self.network.hop_distance(int(home), int(work)) < self.config.min_route_hops:
            home, work = rng.choice(self._core_segments, size=2, replace=False)
        rows, cols = np.nonzero(self.network.adjacency)
        noise = self.config.route_preference_noise
        edge_weights = {}
        for i, j in zip(rows, cols):
            base = self.network.segments[j].free_flow_travel_time
            edge_weights[(int(i), int(j))] = float(base * rng.uniform(1.0 - noise, 1.0 + noise))
        return _UserProfile(
            user_id=user_id,
            home=int(home),
            work=int(work),
            edge_weights=edge_weights,
            departure_jitter=float(rng.uniform(0.2, 0.8)),
            morning_hour=float(rng.normal(8.0, 0.7)),
            evening_hour=float(rng.normal(18.0, 0.7)),
        )

    @property
    def users(self) -> List[_UserProfile]:
        return self._users

    # ------------------------------------------------------------------
    # Latent congestion / speed field
    # ------------------------------------------------------------------
    def _build_congestion_field(self) -> np.ndarray:
        """Per-(segment, slice) speed multiplier in (0, 1]."""
        num_segments = self.network.num_segments
        num_slices = self.time_axis.num_slices
        slice_hours = (self.time_axis.slice_starts() % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        # Two Gaussian rush-hour dips (morning and evening).
        morning = np.exp(-((slice_hours - 8.5) ** 2) / (2 * 1.5**2))
        evening = np.exp(-((slice_hours - 18.0) ** 2) / (2 * 1.5**2))
        daily_profile = 1.0 - self.config.rush_hour_slowdown * np.maximum(morning, evening)

        segment_sensitivity = np.empty(num_segments)
        for i, segment in enumerate(self.network.segments):
            # Arterial roads attract commuters and congest more.
            is_arterial = segment.road_type in ("motorway", "trunk", "primary")
            segment_sensitivity[i] = 1.0 if is_arterial else 0.5
        base = 1.0 - segment_sensitivity[:, None] * (1.0 - daily_profile[None, :])
        noise = self._rng.normal(0.0, 0.03, size=(num_segments, num_slices))
        return np.clip(base + noise, 0.2, 1.0)

    def segment_speed(self, segment_id: int, timestamp: float) -> float:
        """Effective speed (km/h) on a segment at a timestamp."""
        slice_index = self.time_axis.slice_of(timestamp)
        limit = self.network.segments[segment_id].speed_limit
        noise = self._rng.normal(1.0, self.config.speed_noise)
        return float(np.clip(limit * self._congestion[segment_id, slice_index] * noise, 5.0, limit))

    # ------------------------------------------------------------------
    # Trajectory generation
    # ------------------------------------------------------------------
    def _route_for(self, user: _UserProfile, origin: int, destination: int) -> List[int]:
        return self.network.shortest_path(origin, destination, weights=user.edge_weights)

    def _random_destination(self, origin: int) -> int:
        for _ in range(32):
            candidate = int(self._rng.choice(self._core_segments))
            hops = self.network.hop_distance(origin, candidate)
            if self.config.min_route_hops <= hops <= self.config.max_route_hops:
                return candidate
        return int(self._rng.choice(self._core_segments))

    def _departure_time(self, user: _UserProfile, day: int, towards_work: bool) -> float:
        hour = user.morning_hour if towards_work else user.evening_hour
        hour += self._rng.normal(0.0, user.departure_jitter)
        hour = float(np.clip(hour, 0.0, 23.5))
        return day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR

    def _simulate_trip(self, trajectory_id: int, user: _UserProfile, route: List[int], departure: float) -> Trajectory:
        timestamps = [departure]
        speeds = []
        for segment_id in route[:-1]:
            speed = self.segment_speed(segment_id, timestamps[-1])
            speeds.append(speed)
            travel_seconds = self.network.segments[segment_id].length / max(speed, 1e-6) * 3600.0
            timestamps.append(timestamps[-1] + travel_seconds)
        mean_congestion = float(np.mean([
            self._congestion[s, self.time_axis.slice_of(t)] for s, t in zip(route, timestamps)
        ]))
        # Traffic-pattern label: congested trip (1) vs free-flowing trip (0).
        label = int(mean_congestion < 0.75)
        return Trajectory(
            trajectory_id=trajectory_id,
            user_id=user.user_id,
            segments=list(route),
            timestamps=timestamps,
            label=label,
            metadata={"mean_congestion": mean_congestion},
        )

    def generate_trajectories(self) -> List[Trajectory]:
        """Generate the full synthetic trajectory set."""
        trajectories: List[Trajectory] = []
        max_hops = self.config.max_route_hops
        for user in self._users:
            produced = 0
            attempts = 0
            while produced < self.config.trajectories_per_user and attempts < self.config.trajectories_per_user * 8:
                attempts += 1
                day = int(self._rng.integers(0, self.config.num_days))
                commute = self._rng.random() < self.config.commute_probability
                towards_work = bool(self._rng.random() < 0.5)
                if commute:
                    origin, destination = (user.home, user.work) if towards_work else (user.work, user.home)
                else:
                    origin = int(self._rng.choice(self._core_segments))
                    destination = self._random_destination(origin)
                route = self._route_for(user, origin, destination)
                if len(route) < self.config.min_route_hops:
                    continue
                route = route[: max_hops + 1]
                departure = self._departure_time(user, day, towards_work)
                trajectory = self._simulate_trip(len(trajectories), user, route, departure)
                if trajectory.end_time >= self.time_axis.end:
                    continue
                trajectories.append(trajectory)
                produced += 1
        return trajectories

    # ------------------------------------------------------------------
    # Traffic states
    # ------------------------------------------------------------------
    def generate_traffic_states(self, trajectories: Sequence[Trajectory]) -> TrafficStateSeries:
        """Build the traffic-state tensor consistent with the latent congestion field.

        The speed channel comes from the latent field (what a loop detector
        would measure); the inflow/outflow channels are aggregated from the
        generated trajectories, as in the paper's preprocessing.
        """
        num_segments = self.network.num_segments
        lengths = np.array([s.length for s in self.network.segments])
        counts = TrafficStateSeries.from_trajectories(
            trajectories, num_segments, self.time_axis, segment_lengths=lengths
        )
        values = counts.values.copy()
        speed_idx = TRAFFIC_CHANNELS.index("speed")
        limits = np.array([s.speed_limit for s in self.network.segments])
        latent_speed = limits[:, None] * self._congestion
        values[:, :, speed_idx] = latent_speed
        return TrafficStateSeries(values, self.time_axis)

    def simulate(self) -> Tuple[List[Trajectory], TrafficStateSeries]:
        """Run the full simulation, returning trajectories and traffic states."""
        trajectories = self.generate_trajectories()
        traffic = self.generate_traffic_states(trajectories)
        return trajectories, traffic
