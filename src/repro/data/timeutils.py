"""Temporal elements: time slices and timestamps (Definitions 3 and 4).

Timestamps are plain floats counting seconds from the start of the dataset's
observation window.  A :class:`TimeAxis` partitions that window into
fixed-length time slices (30 minutes in the paper) and converts between
timestamps and slice indices.  :func:`timestamp_features` produces the
feature vector ``iota_tau`` describing a timestamp: normalised time of day,
cyclical encodings of hour-of-day and day-of-week, a weekend flag and the
normalised position of the enclosing slice within its day.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

SECONDS_PER_MINUTE = 60
SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY

#: Dimension of the timestamp feature vector ``D_tau``.
TIMESTAMP_FEATURE_DIM = 8


def timestamp_features(timestamp: float, slice_seconds: float = 1800.0) -> np.ndarray:
    """Feature vector of a single timestamp (Definition 4).

    Parameters
    ----------
    timestamp:
        Seconds since the start of the observation window (week-aligned).
    slice_seconds:
        Length of a time slice, default 30 minutes as in the paper.
    """
    timestamp = float(timestamp)
    second_of_day = timestamp % SECONDS_PER_DAY
    day_of_week = int(timestamp // SECONDS_PER_DAY) % 7
    hour_fraction = second_of_day / SECONDS_PER_DAY
    slice_of_day = int(second_of_day // slice_seconds)
    slices_per_day = int(SECONDS_PER_DAY // slice_seconds)
    return np.array(
        [
            hour_fraction,
            np.sin(2 * np.pi * hour_fraction),
            np.cos(2 * np.pi * hour_fraction),
            np.sin(2 * np.pi * day_of_week / 7.0),
            np.cos(2 * np.pi * day_of_week / 7.0),
            1.0 if day_of_week >= 5 else 0.0,
            slice_of_day / max(slices_per_day, 1),
            (timestamp % SECONDS_PER_WEEK) / SECONDS_PER_WEEK,
        ]
    )


def timestamp_features_batch(timestamps: Sequence[float], slice_seconds: float = 1800.0) -> np.ndarray:
    """Vectorised :func:`timestamp_features` for a sequence of timestamps."""
    return np.stack([timestamp_features(t, slice_seconds) for t in timestamps])


@dataclass(frozen=True)
class TimeAxis:
    """Partition of an observation window into fixed-length time slices.

    Attributes
    ----------
    num_slices:
        Number of time slices ``T``.
    slice_seconds:
        Slice duration (1800 s = 30 minutes in the paper).
    origin:
        Timestamp of the start of slice 0.
    """

    num_slices: int
    slice_seconds: float = 1800.0
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.num_slices < 1:
            raise ValueError("a time axis needs at least one slice")
        if self.slice_seconds <= 0:
            raise ValueError("slice duration must be positive")

    @property
    def total_seconds(self) -> float:
        return self.num_slices * self.slice_seconds

    @property
    def end(self) -> float:
        return self.origin + self.total_seconds

    def slice_of(self, timestamp: float) -> int:
        """Index ``t_tau`` of the slice containing ``timestamp`` (clamped to range)."""
        index = int((timestamp - self.origin) // self.slice_seconds)
        return int(np.clip(index, 0, self.num_slices - 1))

    def slice_start(self, index: int) -> float:
        """Timestamp ``tau_t`` at which slice ``index`` begins."""
        if not 0 <= index < self.num_slices:
            raise IndexError(f"slice index {index} out of range [0, {self.num_slices})")
        return self.origin + index * self.slice_seconds

    def slice_starts(self) -> np.ndarray:
        """Start timestamps of every slice."""
        return self.origin + np.arange(self.num_slices) * self.slice_seconds

    def contains(self, timestamp: float) -> bool:
        return self.origin <= timestamp < self.end

    def slice_features(self, index: int) -> np.ndarray:
        """Feature vector of a time slice (Definition 3), via its start timestamp."""
        return timestamp_features(self.slice_start(index), self.slice_seconds)

    def all_slice_features(self) -> np.ndarray:
        return np.stack([self.slice_features(i) for i in range(self.num_slices)])
