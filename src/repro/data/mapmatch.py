"""HMM map matching (Newson & Krumm style) over the segment graph.

The trajectory-recovery baselines of Table IV (Linear+HMM and DTHR+HMM)
first interpolate positions between the sparse observed samples and then use
a hidden Markov model to snap those positions onto road segments.  This
module provides that HMM: states are road segments, emission probabilities
decay with the distance between a position and a segment's midpoint, and
transition probabilities favour segment pairs that are close in the road
graph.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.roadnet.network import RoadNetwork


class HMMMapMatcher:
    """Viterbi decoding of segment sequences from noisy positions."""

    def __init__(
        self,
        network: RoadNetwork,
        emission_sigma_km: float = 0.35,
        transition_beta: float = 2.0,
        num_candidates: int = 6,
        max_hop_gap: int = 6,
    ) -> None:
        if emission_sigma_km <= 0 or transition_beta <= 0:
            raise ValueError("emission sigma and transition beta must be positive")
        self.network = network
        self.emission_sigma = emission_sigma_km
        self.transition_beta = transition_beta
        self.num_candidates = max(1, num_candidates)
        self.max_hop_gap = max_hop_gap
        self._midpoints = np.array([s.midpoint for s in network.segments])

    # ------------------------------------------------------------------
    def candidates_for(self, point: Tuple[float, float]) -> np.ndarray:
        """Ids of the segments whose midpoints are nearest to ``point``."""
        distances = np.hypot(self._midpoints[:, 0] - point[0], self._midpoints[:, 1] - point[1])
        return np.argsort(distances)[: self.num_candidates]

    def _emission_log_prob(self, point: Tuple[float, float], segment_id: int) -> float:
        mid = self._midpoints[segment_id]
        distance = float(np.hypot(mid[0] - point[0], mid[1] - point[1]))
        return -0.5 * (distance / self.emission_sigma) ** 2

    def _transition_log_prob(self, previous: int, current: int) -> float:
        if previous == current:
            return 0.0
        hops = self.network.hop_distance(previous, current)
        if hops < 0 or hops > self.max_hop_gap:
            return -np.inf
        return -hops / self.transition_beta

    # ------------------------------------------------------------------
    def match(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Map a sequence of positions to the most likely segment sequence."""
        if len(points) == 0:
            return []
        candidate_sets = [self.candidates_for(p) for p in points]

        # Viterbi over the candidate lattice.
        log_probs = [
            np.array([self._emission_log_prob(points[0], int(c)) for c in candidate_sets[0]])
        ]
        backpointers: List[np.ndarray] = []
        for step in range(1, len(points)):
            previous_candidates = candidate_sets[step - 1]
            current_candidates = candidate_sets[step]
            scores = np.full((len(previous_candidates), len(current_candidates)), -np.inf)
            for i, prev in enumerate(previous_candidates):
                for j, cur in enumerate(current_candidates):
                    transition = self._transition_log_prob(int(prev), int(cur))
                    if np.isfinite(transition):
                        scores[i, j] = log_probs[-1][i] + transition
            emissions = np.array([self._emission_log_prob(points[step], int(c)) for c in current_candidates])
            best_prev = scores.argmax(axis=0)
            best_score = scores.max(axis=0) + emissions
            if not np.isfinite(best_score).any():
                # Dead end in the lattice: fall back to emission-only scoring.
                best_score = emissions
                best_prev = np.zeros(len(current_candidates), dtype=np.int64)
            log_probs.append(best_score)
            backpointers.append(best_prev)

        # Backtrack.
        path_indices = [int(np.argmax(log_probs[-1]))]
        for pointers in reversed(backpointers):
            path_indices.append(int(pointers[path_indices[-1]]))
        path_indices.reverse()
        return [int(candidate_sets[step][idx]) for step, idx in enumerate(path_indices)]

    # ------------------------------------------------------------------
    def interpolate_positions(
        self,
        known_segments: Sequence[int],
        counts_between: Sequence[int],
        mode: str = "linear",
    ) -> List[Tuple[float, float]]:
        """Interpolate positions between consecutive known segments.

        Parameters
        ----------
        known_segments:
            Observed segment ids of the sparse trajectory.
        counts_between:
            Number of missing samples between each consecutive pair
            (``len(counts_between) == len(known_segments) - 1``).
        mode:
            ``"linear"`` interpolates straight between midpoints;
            ``"distance_threshold"`` (DTHR) walks along the road-graph
            shortest path and samples positions from it.
        """
        if len(counts_between) != len(known_segments) - 1:
            raise ValueError("counts_between must have one entry per consecutive pair")
        positions: List[Tuple[float, float]] = []
        for pair_index in range(len(known_segments) - 1):
            a = known_segments[pair_index]
            b = known_segments[pair_index + 1]
            start = self._midpoints[a]
            end = self._midpoints[b]
            positions.append(tuple(start))
            missing = counts_between[pair_index]
            if missing <= 0:
                continue
            if mode == "linear":
                for k in range(1, missing + 1):
                    alpha = k / (missing + 1)
                    positions.append(tuple(start + alpha * (end - start)))
            elif mode == "distance_threshold":
                path = self.network.shortest_path(int(a), int(b))
                if len(path) > 2:
                    waypoints = self._midpoints[path[1:-1]]
                else:
                    waypoints = np.empty((0, 2))
                for k in range(1, missing + 1):
                    if len(waypoints) > 0:
                        index = min(int(round((k / (missing + 1)) * (len(waypoints) - 1))), len(waypoints) - 1)
                        positions.append(tuple(waypoints[index]))
                    else:
                        alpha = k / (missing + 1)
                        positions.append(tuple(start + alpha * (end - start)))
            else:
                raise ValueError(f"unknown interpolation mode {mode!r}")
        positions.append(tuple(self._midpoints[known_segments[-1]]))
        return positions
