"""Raw GPS traces and their conversion to/from road-segment trajectories.

The trajectories of the paper's datasets start life as noisy GPS points that
are map-matched onto the road network ("trajectories were map-matched to the
networks to compute traffic states", Sec. VII-A).  The synthetic datasets in
this repository generate segment-level trajectories directly, so this module
provides the missing ends of that pipeline:

* :class:`GPSPoint` / :class:`GPSTrace` — raw positional records in the same
  local kilometre frame used by the road network.
* :func:`trajectory_to_gps` — render a segment-level
  :class:`~repro.data.trajectory.Trajectory` as a GPS trace with configurable
  sampling rate and measurement noise (the inverse problem, used to exercise
  map matching on data with known ground truth).
* :func:`map_match_trace` — recover a segment-level trajectory from a GPS
  trace with the HMM map matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.mapmatch import HMMMapMatcher
from repro.data.trajectory import Trajectory
from repro.roadnet.network import RoadNetwork

__all__ = ["GPSPoint", "GPSTrace", "trajectory_to_gps", "map_match_trace"]


@dataclass(frozen=True)
class GPSPoint:
    """A single positional fix in the local kilometre frame."""

    x: float
    y: float
    timestamp: float

    @property
    def location(self) -> Tuple[float, float]:
        return (self.x, self.y)


@dataclass
class GPSTrace:
    """A time-ordered sequence of GPS fixes belonging to one trip."""

    trace_id: int
    user_id: int
    points: List[GPSPoint]
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a GPS trace needs at least two fixes")
        timestamps = [p.timestamp for p in self.points]
        if any(b < a for a, b in zip(timestamps, timestamps[1:])):
            raise ValueError("GPS fixes must be time-ordered")

    def __len__(self) -> int:
        return len(self.points)

    @property
    def duration(self) -> float:
        return self.points[-1].timestamp - self.points[0].timestamp

    def positions(self) -> np.ndarray:
        """``(N, 2)`` array of fix coordinates."""
        return np.array([[p.x, p.y] for p in self.points])

    def timestamps(self) -> np.ndarray:
        return np.array([p.timestamp for p in self.points])

    def bounding_box(self) -> Tuple[Tuple[float, float], Tuple[float, float]]:
        """``((min_x, min_y), (max_x, max_y))`` of the trace."""
        positions = self.positions()
        return (
            (float(positions[:, 0].min()), float(positions[:, 1].min())),
            (float(positions[:, 0].max()), float(positions[:, 1].max())),
        )


def _segment_position(network: RoadNetwork, segment_id: int, fraction: float) -> Tuple[float, float]:
    """Point ``fraction`` of the way along a segment's geometry."""
    segment = network.segment(segment_id)
    fraction = min(max(fraction, 0.0), 1.0)
    return (
        segment.start[0] + fraction * (segment.end[0] - segment.start[0]),
        segment.start[1] + fraction * (segment.end[1] - segment.start[1]),
    )


def trajectory_to_gps(
    trajectory: Trajectory,
    network: RoadNetwork,
    points_per_segment: int = 2,
    noise_sigma_km: float = 0.02,
    seed: int = 0,
) -> GPSTrace:
    """Render a segment-level trajectory as a noisy GPS trace.

    Each visited segment contributes ``points_per_segment`` fixes spread along
    its geometry; timestamps are linearly interpolated between the
    trajectory's samples, and isotropic Gaussian noise with standard deviation
    ``noise_sigma_km`` models the GPS measurement error.
    """
    if points_per_segment < 1:
        raise ValueError("points_per_segment must be at least 1")
    if noise_sigma_km < 0:
        raise ValueError("noise_sigma_km must be non-negative")
    rng = np.random.default_rng(seed)
    points: List[GPSPoint] = []
    for index, (segment_id, timestamp) in enumerate(zip(trajectory.segments, trajectory.timestamps)):
        if index + 1 < len(trajectory):
            next_timestamp = trajectory.timestamps[index + 1]
        else:
            # extrapolate the final dwell using the previous interval (or one minute)
            previous_interval = (
                trajectory.timestamps[index] - trajectory.timestamps[index - 1] if index > 0 else 60.0
            )
            next_timestamp = timestamp + max(previous_interval, 1.0)
        for k in range(points_per_segment):
            fraction = (k + 0.5) / points_per_segment
            x, y = _segment_position(network, int(segment_id), fraction)
            if noise_sigma_km > 0:
                x += float(rng.normal(scale=noise_sigma_km))
                y += float(rng.normal(scale=noise_sigma_km))
            point_time = timestamp + fraction * (next_timestamp - timestamp)
            points.append(GPSPoint(x=x, y=y, timestamp=float(point_time)))
    points.sort(key=lambda p: p.timestamp)
    return GPSTrace(
        trace_id=trajectory.trajectory_id,
        user_id=trajectory.user_id,
        points=points,
        metadata={"source": "trajectory_to_gps", "noise_sigma_km": noise_sigma_km},
    )


def map_match_trace(
    trace: GPSTrace,
    network: RoadNetwork,
    matcher: Optional[HMMMapMatcher] = None,
) -> Trajectory:
    """Recover a segment-level trajectory from a GPS trace.

    Consecutive fixes matched to the same segment are collapsed into one
    sample whose timestamp is the first fix on that segment, mirroring how the
    paper's datasets are preprocessed.
    """
    matcher = matcher or HMMMapMatcher(network)
    matched = matcher.match([p.location for p in trace.points])
    if len(matched) != len(trace):
        raise RuntimeError("map matcher returned the wrong number of segments")
    segments: List[int] = []
    timestamps: List[float] = []
    for segment_id, point in zip(matched, trace.points):
        if segments and segments[-1] == int(segment_id):
            continue
        segments.append(int(segment_id))
        timestamps.append(float(point.timestamp))
    if len(segments) < 2:
        # degenerate trace (all fixes on one segment): keep both endpoints so
        # the Trajectory invariant of >= 2 samples holds
        segments = [int(matched[0]), int(matched[-1])]
        timestamps = [float(trace.points[0].timestamp), float(trace.points[-1].timestamp)]
        if timestamps[1] <= timestamps[0]:
            timestamps[1] = timestamps[0] + 1.0
    return Trajectory(
        trajectory_id=trace.trace_id,
        user_id=trace.user_id,
        segments=segments,
        timestamps=timestamps,
        metadata={"source": "map_match_trace"},
    )
