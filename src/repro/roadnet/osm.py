"""Import and export road networks as OpenStreetMap-style XML.

The paper builds its road networks from OpenStreetMap extracts.  The offline
environment has no real OSM data, but this module implements the format
bridge so that a user with an ``.osm`` extract can load it directly into the
library (and so that the synthetic cities can be exported for inspection in
standard OSM tooling):

* :func:`load_osm` parses the ``<node>`` / ``<way>`` subset of OSM XML that
  describes a drivable road network and converts it into a
  :class:`~repro.roadnet.network.RoadNetwork` (ways are split into one
  directed segment per consecutive node pair; two-way streets produce the
  reverse segments as well).
* :func:`save_osm` writes a road network back out as the same XML subset.
* :func:`osm_highway_to_road_type` maps OSM ``highway=*`` values onto the
  road classes used by :class:`~repro.roadnet.segment.RoadSegment`.

Coordinates are converted between WGS84 degrees and the local kilometre
frame used by the rest of the library with an equirectangular projection
around the extract's centroid — accurate to well under a percent at city
scale, which is all the static length feature needs.
"""

from __future__ import annotations

import math
import os
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.roadnet.network import RoadNetwork
from repro.roadnet.segment import DEFAULT_SPEED_LIMITS, RoadSegment

__all__ = ["osm_highway_to_road_type", "load_osm", "save_osm", "EARTH_RADIUS_KM"]

PathLike = Union[str, os.PathLike]

EARTH_RADIUS_KM = 6371.0

#: OSM ``highway=*`` values accepted as drivable roads, mapped onto the road
#: classes of :data:`repro.roadnet.segment.ROAD_TYPES`.
_HIGHWAY_MAP: Dict[str, str] = {
    "motorway": "motorway",
    "motorway_link": "motorway",
    "trunk": "trunk",
    "trunk_link": "trunk",
    "primary": "primary",
    "primary_link": "primary",
    "secondary": "secondary",
    "secondary_link": "secondary",
    "tertiary": "secondary",
    "tertiary_link": "secondary",
    "unclassified": "residential",
    "residential": "residential",
    "living_street": "residential",
    "service": "residential",
}


def osm_highway_to_road_type(highway: str) -> Optional[str]:
    """Road class for an OSM ``highway`` value, or ``None`` if not drivable."""
    return _HIGHWAY_MAP.get(highway)


def _project(lat: float, lon: float, origin_lat: float, origin_lon: float) -> Tuple[float, float]:
    """Equirectangular projection of WGS84 degrees to local kilometres."""
    x = math.radians(lon - origin_lon) * EARTH_RADIUS_KM * math.cos(math.radians(origin_lat))
    y = math.radians(lat - origin_lat) * EARTH_RADIUS_KM
    return (x, y)


def _unproject(x: float, y: float, origin_lat: float, origin_lon: float) -> Tuple[float, float]:
    """Inverse of :func:`_project`; returns ``(lat, lon)``."""
    lat = origin_lat + math.degrees(y / EARTH_RADIUS_KM)
    lon = origin_lon + math.degrees(x / (EARTH_RADIUS_KM * math.cos(math.radians(origin_lat))))
    return (lat, lon)


def _parse_speed(value: Optional[str]) -> Optional[float]:
    """Parse an OSM ``maxspeed`` value (km/h, possibly with an ``mph`` suffix)."""
    if not value:
        return None
    value = value.strip().lower()
    factor = 1.0
    if value.endswith("mph"):
        factor = 1.609344
        value = value[:-3].strip()
    try:
        return float(value) * factor
    except ValueError:
        return None


def load_osm(path: PathLike) -> RoadNetwork:
    """Parse an OSM XML extract into a :class:`RoadNetwork`.

    Only ``<way>`` elements whose ``highway`` tag maps onto a drivable road
    class are used; each consecutive node pair of such a way becomes one
    directed road segment, plus the reverse segment unless ``oneway=yes``.

    Raises
    ------
    ValueError
        If the document contains no drivable ways or references missing
        nodes.
    """
    tree = ET.parse(Path(path))
    root = tree.getroot()

    nodes: Dict[str, Tuple[float, float]] = {}
    for node in root.iter("node"):
        nodes[node.attrib["id"]] = (float(node.attrib["lat"]), float(node.attrib["lon"]))
    if not nodes:
        raise ValueError(f"{path}: no <node> elements found")

    origin_lat = sum(lat for lat, _ in nodes.values()) / len(nodes)
    origin_lon = sum(lon for _, lon in nodes.values()) / len(nodes)
    projected = {
        node_id: _project(lat, lon, origin_lat, origin_lon) for node_id, (lat, lon) in nodes.items()
    }

    segments: List[RoadSegment] = []
    for way in root.iter("way"):
        tags = {tag.attrib["k"]: tag.attrib["v"] for tag in way.findall("tag")}
        road_type = osm_highway_to_road_type(tags.get("highway", ""))
        if road_type is None:
            continue
        refs = [nd.attrib["ref"] for nd in way.findall("nd")]
        missing = [ref for ref in refs if ref not in projected]
        if missing:
            raise ValueError(f"way {way.attrib.get('id')} references missing nodes {missing[:3]}")
        if len(refs) < 2:
            continue
        lanes = 1
        if "lanes" in tags:
            try:
                lanes = max(1, int(float(tags["lanes"])))
            except ValueError:
                lanes = 1
        speed_limit = _parse_speed(tags.get("maxspeed")) or DEFAULT_SPEED_LIMITS[road_type]
        oneway = tags.get("oneway", "no").lower() in ("yes", "true", "1")
        for start_ref, end_ref in zip(refs, refs[1:]):
            pairs = [(start_ref, end_ref)] if oneway else [(start_ref, end_ref), (end_ref, start_ref)]
            for a, b in pairs:
                segments.append(
                    RoadSegment(
                        segment_id=len(segments),
                        start=projected[a],
                        end=projected[b],
                        road_type=road_type,
                        lanes=lanes,
                        speed_limit=speed_limit,
                    )
                )
    if not segments:
        raise ValueError(f"{path}: no drivable ways found")
    return RoadNetwork(segments)


def save_osm(network: RoadNetwork, path: PathLike, origin: Tuple[float, float] = (39.9, 116.4)) -> Path:
    """Write ``network`` as OSM-style XML (one ``<way>`` per directed segment).

    ``origin`` is the WGS84 ``(lat, lon)`` the local kilometre frame is
    anchored to; the default places synthetic cities near central Beijing so
    the exported file opens sensibly in OSM viewers.
    """
    origin_lat, origin_lon = origin
    root = ET.Element("osm", version="0.6", generator="repro-bigcity")

    # Deduplicate node coordinates so shared intersections become shared nodes.
    node_ids: Dict[Tuple[float, float], str] = {}

    def node_for(point: Tuple[float, float]) -> str:
        key = (round(point[0], 9), round(point[1], 9))
        if key not in node_ids:
            node_id = str(len(node_ids) + 1)
            lat, lon = _unproject(point[0], point[1], origin_lat, origin_lon)
            ET.SubElement(root, "node", id=node_id, lat=f"{lat:.7f}", lon=f"{lon:.7f}")
            node_ids[key] = node_id
        return node_ids[key]

    for segment_id in range(network.num_segments):
        segment = network.segment(segment_id)
        start_id = node_for(segment.start)
        end_id = node_for(segment.end)
        way = ET.SubElement(root, "way", id=str(segment_id + 1))
        ET.SubElement(way, "nd", ref=start_id)
        ET.SubElement(way, "nd", ref=end_id)
        ET.SubElement(way, "tag", k="highway", v=segment.road_type)
        ET.SubElement(way, "tag", k="lanes", v=str(segment.lanes))
        ET.SubElement(way, "tag", k="maxspeed", v=str(int(segment.speed_limit)))
        ET.SubElement(way, "tag", k="oneway", v="yes")

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    ET.ElementTree(root).write(path, encoding="unicode", xml_declaration=True)
    return path
