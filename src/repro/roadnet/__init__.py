"""Road-network substrate: segments, directed road graphs and synthetic cities.

The paper (Sec. III) models a city as a directed graph of road segments, each
carrying a static feature vector (road type, length, lane count, degrees,
speed limit, ...).  This package provides that representation plus synthetic
city generators used in place of the OpenStreetMap extracts of the original
experiments, an OSM-XML import/export bridge for real extracts, and the POI
and grid spatial elements the paper names as future work.
"""

from repro.roadnet.segment import RoadSegment, StaticFeatureEncoder
from repro.roadnet.network import RoadNetwork
from repro.roadnet.generators import grid_city, radial_city, random_city
from repro.roadnet.io import save_road_network, load_road_network
from repro.roadnet.osm import load_osm, save_osm, osm_highway_to_road_type
from repro.roadnet.poi import POI, POI_CATEGORIES, GridPartition, POIRegistry

__all__ = [
    "RoadSegment",
    "StaticFeatureEncoder",
    "RoadNetwork",
    "grid_city",
    "radial_city",
    "random_city",
    "save_road_network",
    "load_road_network",
    "load_osm",
    "save_osm",
    "osm_highway_to_road_type",
    "POI",
    "POI_CATEGORIES",
    "POIRegistry",
    "GridPartition",
]
