"""Road segments and their static feature vectors (Definition 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Road classes used by the synthetic generators, ordered from largest to
#: smallest.  The index in this tuple is the categorical "road type" feature.
ROAD_TYPES: Tuple[str, ...] = ("motorway", "trunk", "primary", "secondary", "residential")

#: Default free-flow speed (km/h) per road type.
DEFAULT_SPEED_LIMITS: Dict[str, float] = {
    "motorway": 100.0,
    "trunk": 80.0,
    "primary": 60.0,
    "secondary": 50.0,
    "residential": 30.0,
}


@dataclass
class RoadSegment:
    """A directed road segment ``r_i`` with static attributes.

    Attributes mirror Definition 1 of the paper: every segment has an id and
    a static feature vector describing type, length, lane count, degrees and
    speed limit.  Geometry (start/end coordinates in kilometres) is kept for
    the mobility simulator and for map matching.
    """

    segment_id: int
    start: Tuple[float, float]
    end: Tuple[float, float]
    road_type: str = "residential"
    lanes: int = 1
    speed_limit: Optional[float] = None
    in_degree: int = 0
    out_degree: int = 0

    def __post_init__(self) -> None:
        if self.road_type not in ROAD_TYPES:
            raise ValueError(f"unknown road type {self.road_type!r}")
        if self.lanes < 1:
            raise ValueError("a road segment has at least one lane")
        if self.speed_limit is None:
            self.speed_limit = DEFAULT_SPEED_LIMITS[self.road_type]

    @property
    def length(self) -> float:
        """Segment length in kilometres (Euclidean between endpoints)."""
        dx = self.end[0] - self.start[0]
        dy = self.end[1] - self.start[1]
        return float(np.hypot(dx, dy))

    @property
    def midpoint(self) -> Tuple[float, float]:
        return (
            0.5 * (self.start[0] + self.end[0]),
            0.5 * (self.start[1] + self.end[1]),
        )

    @property
    def free_flow_travel_time(self) -> float:
        """Seconds needed to traverse the segment at its speed limit."""
        speed_kmps = self.speed_limit / 3600.0
        return self.length / max(speed_kmps, 1e-9)

    def road_type_index(self) -> int:
        return ROAD_TYPES.index(self.road_type)

    def to_dict(self) -> Dict:
        return {
            "segment_id": self.segment_id,
            "start": list(self.start),
            "end": list(self.end),
            "road_type": self.road_type,
            "lanes": self.lanes,
            "speed_limit": self.speed_limit,
            "in_degree": self.in_degree,
            "out_degree": self.out_degree,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RoadSegment":
        return cls(
            segment_id=int(payload["segment_id"]),
            start=tuple(payload["start"]),
            end=tuple(payload["end"]),
            road_type=payload["road_type"],
            lanes=int(payload["lanes"]),
            speed_limit=float(payload["speed_limit"]),
            in_degree=int(payload.get("in_degree", 0)),
            out_degree=int(payload.get("out_degree", 0)),
        )


class StaticFeatureEncoder:
    """Encode :class:`RoadSegment` objects into static feature vectors ``e^(s)``.

    The feature layout is: one-hot road type, normalised length, lane count,
    speed limit, in-/out-degree, and the (normalised) midpoint coordinates —
    the same attribute families listed in Definition 1.
    """

    def __init__(self, segments: Sequence[RoadSegment]) -> None:
        if not segments:
            raise ValueError("cannot build a feature encoder from an empty segment list")
        self._length_scale = max(max(s.length for s in segments), 1e-9)
        self._speed_scale = max(max(s.speed_limit for s in segments), 1e-9)
        self._lane_scale = max(max(s.lanes for s in segments), 1)
        self._degree_scale = max(max(max(s.in_degree, s.out_degree) for s in segments), 1)
        xs = [s.midpoint[0] for s in segments]
        ys = [s.midpoint[1] for s in segments]
        self._x_range = (min(xs), max(max(xs) - min(xs), 1e-9))
        self._y_range = (min(ys), max(max(ys) - min(ys), 1e-9))

    @property
    def dimension(self) -> int:
        """Length of the static feature vector ``D_r``."""
        return len(ROAD_TYPES) + 7

    def encode(self, segment: RoadSegment) -> np.ndarray:
        one_hot = np.zeros(len(ROAD_TYPES))
        one_hot[segment.road_type_index()] = 1.0
        mid_x, mid_y = segment.midpoint
        numeric = np.array(
            [
                segment.length / self._length_scale,
                segment.lanes / self._lane_scale,
                segment.speed_limit / self._speed_scale,
                segment.in_degree / self._degree_scale,
                segment.out_degree / self._degree_scale,
                (mid_x - self._x_range[0]) / self._x_range[1],
                (mid_y - self._y_range[0]) / self._y_range[1],
            ]
        )
        return np.concatenate([one_hot, numeric])

    def encode_all(self, segments: Sequence[RoadSegment]) -> np.ndarray:
        """Return the static feature matrix ``E^(s)`` of shape ``(N, D_r)``."""
        return np.stack([self.encode(s) for s in segments])
