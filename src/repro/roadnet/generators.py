"""Synthetic road-network generators.

The paper's experiments use OpenStreetMap extracts of Beijing, Xi'an and
Chengdu.  Offline we generate synthetic cities with comparable structural
properties: a mix of arterial and residential roads, bidirectional segments,
and a strongly connected drivable core.  Three layouts are provided:

* :func:`grid_city` — Manhattan-style grid, the workhorse for the presets.
* :func:`radial_city` — ring-and-spoke layout.
* :func:`random_city` — random planar-ish layout built from a k-nearest
  neighbour graph over random intersections.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.roadnet.network import RoadNetwork
from repro.roadnet.segment import ROAD_TYPES, RoadSegment


def grid_city(
    rows: int,
    cols: int,
    block_km: float = 0.5,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """A grid of ``rows x cols`` intersections with bidirectional streets.

    Horizontal arterials (every third row) are tagged as primary roads with
    higher speed limits; everything else is residential.  Each undirected
    street becomes two directed segments so that the resulting network is
    strongly connected.
    """
    if rows < 2 or cols < 2:
        raise ValueError("a grid city needs at least 2x2 intersections")
    rng = np.random.default_rng(seed)
    coords = {(r, c): (c * block_km, r * block_km) for r in range(rows) for c in range(cols)}

    segments: List[RoadSegment] = []

    def add_bidirectional(a: Tuple[int, int], b: Tuple[int, int], road_type: str, lanes: int) -> None:
        for start, end in ((a, b), (b, a)):
            segments.append(
                RoadSegment(
                    segment_id=len(segments),
                    start=coords[start],
                    end=coords[end],
                    road_type=road_type,
                    lanes=lanes,
                )
            )

    for r in range(rows):
        arterial = r % 3 == 0
        for c in range(cols - 1):
            road_type = "primary" if arterial else "residential"
            lanes = 3 if arterial else rng.integers(1, 3)
            add_bidirectional((r, c), (r, c + 1), road_type, int(lanes))
    for c in range(cols):
        arterial = c % 4 == 0
        for r in range(rows - 1):
            road_type = "secondary" if arterial else "residential"
            lanes = 2 if arterial else 1
            add_bidirectional((r, c), (r + 1, c), road_type, lanes)

    return RoadNetwork(segments)


def radial_city(
    num_rings: int = 3,
    spokes: int = 8,
    ring_spacing_km: float = 1.0,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """Ring-and-spoke city: concentric ring roads connected by radial avenues."""
    if num_rings < 1 or spokes < 3:
        raise ValueError("need at least one ring and three spokes")
    rng = np.random.default_rng(seed)
    angles = np.linspace(0.0, 2 * np.pi, spokes, endpoint=False)
    points = {}
    points[(0, 0)] = (0.0, 0.0)
    for ring in range(1, num_rings + 1):
        radius = ring * ring_spacing_km
        for s, angle in enumerate(angles):
            points[(ring, s)] = (radius * np.cos(angle), radius * np.sin(angle))

    segments: List[RoadSegment] = []

    def add_bidirectional(a, b, road_type: str, lanes: int) -> None:
        for start, end in ((a, b), (b, a)):
            segments.append(
                RoadSegment(
                    segment_id=len(segments),
                    start=points[start],
                    end=points[end],
                    road_type=road_type,
                    lanes=lanes,
                )
            )

    # Radial avenues from the centre out.
    for s in range(spokes):
        add_bidirectional((0, 0), (1, s), "trunk", 3)
        for ring in range(1, num_rings):
            add_bidirectional((ring, s), (ring + 1, s), "primary", 2)
    # Ring roads.
    for ring in range(1, num_rings + 1):
        road_type = "motorway" if ring == num_rings else "secondary"
        for s in range(spokes):
            add_bidirectional((ring, s), (ring, (s + 1) % spokes), road_type, 2)

    return RoadNetwork(segments)


def random_city(
    num_intersections: int = 40,
    k_neighbours: int = 3,
    extent_km: float = 6.0,
    seed: Optional[int] = None,
) -> RoadNetwork:
    """A random city built by connecting each intersection to its nearest neighbours."""
    if num_intersections < 4:
        raise ValueError("need at least four intersections")
    rng = np.random.default_rng(seed)
    points = rng.uniform(0.0, extent_km, size=(num_intersections, 2))
    # Snap to a fine lattice so segment endpoints match exactly and the
    # adjacency builder can connect consecutive segments.
    points = np.round(points, 4)

    segments: List[RoadSegment] = []
    seen_edges = set()

    def add_bidirectional(i: int, j: int) -> None:
        if (i, j) in seen_edges or (j, i) in seen_edges or i == j:
            return
        seen_edges.add((i, j))
        distance = float(np.hypot(*(points[i] - points[j])))
        road_type = ROAD_TYPES[int(rng.integers(2, len(ROAD_TYPES)))]
        lanes = int(rng.integers(1, 4))
        for start, end in ((points[i], points[j]), (points[j], points[i])):
            segments.append(
                RoadSegment(
                    segment_id=len(segments),
                    start=tuple(start),
                    end=tuple(end),
                    road_type=road_type,
                    lanes=lanes,
                )
            )

    for i in range(num_intersections):
        distances = np.hypot(points[:, 0] - points[i, 0], points[:, 1] - points[i, 1])
        order = np.argsort(distances)
        for j in order[1 : k_neighbours + 1]:
            add_bidirectional(i, int(j))
    # Add a few long-range connections so the graph is well connected.
    for _ in range(num_intersections // 4):
        i, j = rng.integers(0, num_intersections, size=2)
        add_bidirectional(int(i), int(j))

    return RoadNetwork(segments)
