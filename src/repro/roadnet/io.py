"""Persist road networks to disk as JSON."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.roadnet.network import RoadNetwork

PathLike = Union[str, os.PathLike]


def save_road_network(network: RoadNetwork, path: PathLike) -> Path:
    """Write ``network`` to ``path`` as a JSON document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(network.to_dict(), handle)
    return path


def load_road_network(path: PathLike) -> RoadNetwork:
    """Load a road network previously written by :func:`save_road_network`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return RoadNetwork.from_dict(payload)
