"""The road network: a directed graph over road segments (Definition 2)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.roadnet.segment import RoadSegment, StaticFeatureEncoder


class RoadNetwork:
    """Directed graph ``G = {R, A, E^(s)}`` whose vertices are road segments.

    Connectivity follows the usual segment-graph convention: segment ``i`` is
    connected to segment ``j`` when ``i`` ends where ``j`` starts, i.e. a
    vehicle can continue from ``i`` onto ``j``.
    """

    def __init__(self, segments: Sequence[RoadSegment], connect_tolerance: float = 1e-6) -> None:
        if not segments:
            raise ValueError("a road network needs at least one segment")
        ids = [s.segment_id for s in segments]
        if ids != list(range(len(segments))):
            raise ValueError("segment ids must be contiguous and start at zero")
        self.segments: List[RoadSegment] = list(segments)
        self._connect_tolerance = connect_tolerance
        self._adjacency = self._build_adjacency()
        self._update_degrees()
        self._feature_encoder = StaticFeatureEncoder(self.segments)
        self._static_features = self._feature_encoder.encode_all(self.segments)
        self._graph = self._build_graph()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_adjacency(self) -> np.ndarray:
        n = len(self.segments)
        ends = np.array([s.end for s in self.segments])
        starts = np.array([s.start for s in self.segments])
        adjacency = np.zeros((n, n), dtype=np.int8)
        for i in range(n):
            distances = np.hypot(starts[:, 0] - ends[i, 0], starts[:, 1] - ends[i, 1])
            successors = np.where(distances <= self._connect_tolerance)[0]
            for j in successors:
                if j != i:
                    adjacency[i, j] = 1
        return adjacency

    def _update_degrees(self) -> None:
        out_degree = self._adjacency.sum(axis=1)
        in_degree = self._adjacency.sum(axis=0)
        for segment, ind, outd in zip(self.segments, in_degree, out_degree):
            segment.in_degree = int(ind)
            segment.out_degree = int(outd)

    def _build_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        for segment in self.segments:
            graph.add_node(segment.segment_id, length=segment.length)
        rows, cols = np.nonzero(self._adjacency)
        for i, j in zip(rows, cols):
            # Edge weight = free-flow travel time of the destination segment,
            # so shortest paths approximate fastest routes.
            graph.add_edge(int(i), int(j), weight=self.segments[j].free_flow_travel_time)
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_segments(self) -> int:
        return len(self.segments)

    def __len__(self) -> int:
        return self.num_segments

    @property
    def adjacency(self) -> np.ndarray:
        """Binary adjacency matrix ``A`` of shape ``(N, N)``."""
        return self._adjacency

    @property
    def static_features(self) -> np.ndarray:
        """Static feature matrix ``E^(s)`` of shape ``(N, D_r)``."""
        return self._static_features

    @property
    def static_feature_dim(self) -> int:
        return self._static_features.shape[1]

    @property
    def feature_encoder(self) -> StaticFeatureEncoder:
        return self._feature_encoder

    def segment(self, segment_id: int) -> RoadSegment:
        return self.segments[segment_id]

    def successors(self, segment_id: int) -> List[int]:
        """Segments reachable immediately after ``segment_id``."""
        return [int(j) for j in np.nonzero(self._adjacency[segment_id])[0]]

    def predecessors(self, segment_id: int) -> List[int]:
        return [int(i) for i in np.nonzero(self._adjacency[:, segment_id])[0]]

    def to_networkx(self) -> nx.DiGraph:
        return self._graph

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shortest_path(
        self,
        source: int,
        target: int,
        weights: Optional[Dict[Tuple[int, int], float]] = None,
    ) -> List[int]:
        """Fastest segment sequence from ``source`` to ``target``.

        Parameters
        ----------
        source, target:
            Segment ids.
        weights:
            Optional per-edge weight override keyed by ``(i, j)``; used by the
            mobility simulator to give each synthetic user personal route
            preferences.
        """
        if weights is None:
            graph = self._graph
        else:
            graph = self._graph.copy()
            for (i, j), value in weights.items():
                if graph.has_edge(i, j):
                    graph[i][j]["weight"] = value
        try:
            return [int(n) for n in nx.shortest_path(graph, source, target, weight="weight")]
        except nx.NetworkXNoPath:
            return []

    def shortest_path_length(self, source: int, target: int) -> float:
        """Free-flow travel time (seconds) of the fastest route, ``inf`` if unreachable."""
        try:
            return float(nx.shortest_path_length(self._graph, source, target, weight="weight"))
        except nx.NetworkXNoPath:
            return float("inf")

    def hop_distance(self, source: int, target: int) -> int:
        """Number of hops of the shortest (unweighted) route, ``-1`` if unreachable."""
        try:
            return int(nx.shortest_path_length(self._graph, source, target))
        except nx.NetworkXNoPath:
            return -1

    def random_walk(self, start: int, length: int, rng: np.random.Generator) -> List[int]:
        """A random walk over the segment graph (used by skip-gram style baselines)."""
        walk = [start]
        current = start
        for _ in range(length - 1):
            successors = self.successors(current)
            if not successors:
                break
            current = int(rng.choice(successors))
            walk.append(current)
        return walk

    def is_strongly_connected(self) -> bool:
        return nx.is_strongly_connected(self._graph)

    def largest_strongly_connected_component(self) -> List[int]:
        component = max(nx.strongly_connected_components(self._graph), key=len)
        return sorted(int(n) for n in component)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "connect_tolerance": self._connect_tolerance,
            "segments": [s.to_dict() for s in self.segments],
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "RoadNetwork":
        segments = [RoadSegment.from_dict(item) for item in payload["segments"]]
        return cls(segments, connect_tolerance=float(payload.get("connect_tolerance", 1e-6)))
