"""Points of interest and grid partitions (the paper's stated future work).

The published BIGCity model "focuses solely on road segments, excluding other
spatial elements such as POIs and grids" and names their inclusion as future
work (Sec. IX).  This module implements those two additional spatial element
types on top of the existing road network substrate so that the library can
be extended towards that direction:

* :class:`POI` / :class:`POIRegistry` — named points of interest attached to
  their nearest road segment, with a synthetic generator that places POIs
  along the network.
* :class:`GridPartition` — a regular lattice over the network's bounding box
  that maps segments to grid cells and aggregates per-segment traffic states
  into per-cell series (the representation used by grid-based traffic models).

Both element types expose ``to_dict`` / ``from_dict`` round-trips so they can
be persisted next to the road network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.traffic_state import TrafficStateSeries
from repro.roadnet.network import RoadNetwork

__all__ = ["POI_CATEGORIES", "POI", "POIRegistry", "GridPartition"]

#: Categories used by the synthetic POI generator.
POI_CATEGORIES: Tuple[str, ...] = (
    "residence",
    "office",
    "shopping",
    "restaurant",
    "school",
    "hospital",
    "park",
    "transit",
)


@dataclass
class POI:
    """A point of interest anchored on the road network."""

    poi_id: int
    name: str
    category: str
    location: Tuple[float, float]
    segment_id: int

    def __post_init__(self) -> None:
        if self.category not in POI_CATEGORIES:
            raise ValueError(f"unknown POI category {self.category!r}")

    def to_dict(self) -> Dict:
        return {
            "poi_id": self.poi_id,
            "name": self.name,
            "category": self.category,
            "location": list(self.location),
            "segment_id": self.segment_id,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "POI":
        return cls(
            poi_id=int(payload["poi_id"]),
            name=str(payload["name"]),
            category=str(payload["category"]),
            location=(float(payload["location"][0]), float(payload["location"][1])),
            segment_id=int(payload["segment_id"]),
        )


class POIRegistry:
    """A collection of POIs indexed by id, category and road segment."""

    def __init__(self, network: RoadNetwork, pois: Optional[Sequence[POI]] = None) -> None:
        self.network = network
        self._pois: Dict[int, POI] = {}
        self._by_segment: Dict[int, List[int]] = {}
        self._by_category: Dict[str, List[int]] = {}
        for poi in pois or []:
            self.add(poi)

    # -- construction -------------------------------------------------------
    def add(self, poi: POI) -> None:
        """Register a POI; its id must be unique and its segment must exist."""
        if poi.poi_id in self._pois:
            raise ValueError(f"duplicate POI id {poi.poi_id}")
        if not 0 <= poi.segment_id < self.network.num_segments:
            raise ValueError(f"POI {poi.poi_id} references unknown segment {poi.segment_id}")
        self._pois[poi.poi_id] = poi
        self._by_segment.setdefault(poi.segment_id, []).append(poi.poi_id)
        self._by_category.setdefault(poi.category, []).append(poi.poi_id)

    @classmethod
    def generate(
        cls,
        network: RoadNetwork,
        pois_per_segment: float = 0.5,
        seed: int = 0,
    ) -> "POIRegistry":
        """Scatter synthetic POIs along the network.

        Each segment receives a Poisson-distributed number of POIs with mean
        ``pois_per_segment``; every POI is placed at a random point along the
        segment and assigned a random category.
        """
        if pois_per_segment < 0:
            raise ValueError("pois_per_segment must be non-negative")
        rng = np.random.default_rng(seed)
        registry = cls(network)
        next_id = 0
        for segment_id in range(network.num_segments):
            segment = network.segment(segment_id)
            count = int(rng.poisson(pois_per_segment))
            for _ in range(count):
                fraction = float(rng.uniform(0.1, 0.9))
                location = (
                    segment.start[0] + fraction * (segment.end[0] - segment.start[0]),
                    segment.start[1] + fraction * (segment.end[1] - segment.start[1]),
                )
                category = str(rng.choice(POI_CATEGORIES))
                registry.add(
                    POI(
                        poi_id=next_id,
                        name=f"{category}_{next_id}",
                        category=category,
                        location=location,
                        segment_id=segment_id,
                    )
                )
                next_id += 1
        return registry

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pois)

    def __iter__(self):
        return iter(self._pois.values())

    def get(self, poi_id: int) -> POI:
        if poi_id not in self._pois:
            raise KeyError(f"unknown POI id {poi_id}")
        return self._pois[poi_id]

    def on_segment(self, segment_id: int) -> List[POI]:
        """All POIs anchored on one road segment."""
        return [self._pois[i] for i in self._by_segment.get(segment_id, [])]

    def by_category(self, category: str) -> List[POI]:
        """All POIs of one category."""
        if category not in POI_CATEGORIES:
            raise ValueError(f"unknown POI category {category!r}")
        return [self._pois[i] for i in self._by_category.get(category, [])]

    def nearest(self, location: Tuple[float, float], category: Optional[str] = None) -> Optional[POI]:
        """The POI closest to ``location`` (optionally restricted to a category)."""
        candidates = list(self.by_category(category)) if category is not None else list(self._pois.values())
        if not candidates:
            return None
        points = np.array([poi.location for poi in candidates])
        query = np.asarray(location, dtype=np.float64)
        distances = np.hypot(points[:, 0] - query[0], points[:, 1] - query[1])
        return candidates[int(np.argmin(distances))]

    def category_counts(self) -> Dict[str, int]:
        """Number of POIs per category (zero-filled for unused categories)."""
        return {category: len(self._by_category.get(category, [])) for category in POI_CATEGORIES}

    def segment_category_features(self) -> np.ndarray:
        """Per-segment POI-category count matrix ``(num_segments, num_categories)``.

        This is the natural static-feature extension the paper's future-work
        section hints at: road segments augmented with the POI mix around
        them.
        """
        features = np.zeros((self.network.num_segments, len(POI_CATEGORIES)))
        for poi in self._pois.values():
            features[poi.segment_id, POI_CATEGORIES.index(poi.category)] += 1.0
        return features

    # -- persistence ----------------------------------------------------------
    def to_dict(self) -> Dict:
        return {"pois": [poi.to_dict() for poi in self._pois.values()]}

    @classmethod
    def from_dict(cls, network: RoadNetwork, payload: Dict) -> "POIRegistry":
        return cls(network, [POI.from_dict(item) for item in payload.get("pois", [])])


class GridPartition:
    """A regular grid over the road network's bounding box.

    Cells are indexed row-major: cell ``(row, col)`` has flat id
    ``row * cols + col``.  Rows grow with the y coordinate and columns with
    the x coordinate.
    """

    def __init__(self, network: RoadNetwork, rows: int = 4, cols: int = 4, padding: float = 1e-6) -> None:
        if rows < 1 or cols < 1:
            raise ValueError("the grid needs at least one row and one column")
        self.network = network
        self.rows = rows
        self.cols = cols
        midpoints = np.array([network.segment(i).midpoint for i in range(network.num_segments)])
        self._min_x = float(midpoints[:, 0].min()) - padding
        self._max_x = float(midpoints[:, 0].max()) + padding
        self._min_y = float(midpoints[:, 1].min()) - padding
        self._max_y = float(midpoints[:, 1].max()) + padding
        self._segment_cells = np.array(
            [self.cell_of_point(tuple(point)) for point in midpoints], dtype=np.int64
        )

    # -- geometry -------------------------------------------------------------
    @property
    def num_cells(self) -> int:
        return self.rows * self.cols

    def cell_of_point(self, location: Tuple[float, float]) -> int:
        """Flat cell id containing a point (clamped to the bounding box)."""
        x = min(max(location[0], self._min_x), self._max_x)
        y = min(max(location[1], self._min_y), self._max_y)
        col = int((x - self._min_x) / (self._max_x - self._min_x) * self.cols)
        row = int((y - self._min_y) / (self._max_y - self._min_y) * self.rows)
        col = min(col, self.cols - 1)
        row = min(row, self.rows - 1)
        return row * self.cols + col

    def cell_of_segment(self, segment_id: int) -> int:
        """Flat cell id of a segment (by its midpoint)."""
        if not 0 <= segment_id < self.network.num_segments:
            raise ValueError(f"unknown segment id {segment_id}")
        return int(self._segment_cells[segment_id])

    def segments_in_cell(self, cell_id: int) -> List[int]:
        """All segment ids whose midpoint falls inside the cell."""
        if not 0 <= cell_id < self.num_cells:
            raise ValueError(f"cell id {cell_id} outside the {self.rows}x{self.cols} grid")
        return [int(i) for i in np.nonzero(self._segment_cells == cell_id)[0]]

    def occupancy(self) -> np.ndarray:
        """Number of segments per cell, shaped ``(rows, cols)``."""
        counts = np.bincount(self._segment_cells, minlength=self.num_cells)
        return counts.reshape(self.rows, self.cols)

    # -- aggregation ----------------------------------------------------------
    def aggregate_traffic(self, traffic: TrafficStateSeries) -> np.ndarray:
        """Average per-segment traffic states into per-cell series.

        Returns an array of shape ``(num_cells, num_slices, num_channels)``;
        cells without any segment keep zeros.
        """
        if traffic.num_segments != self.network.num_segments:
            raise ValueError("traffic series and grid cover different road networks")
        aggregated = np.zeros((self.num_cells, traffic.num_slices, traffic.num_channels))
        counts = np.zeros(self.num_cells)
        for segment_id in range(traffic.num_segments):
            cell = int(self._segment_cells[segment_id])
            aggregated[cell] += traffic.values[segment_id]
            counts[cell] += 1.0
        nonzero = counts > 0
        aggregated[nonzero] /= counts[nonzero, None, None]
        return aggregated

    def cell_trajectory(self, segment_ids: Sequence[int]) -> List[int]:
        """Project a segment-level trajectory onto the grid (dropping repeats)."""
        cells: List[int] = []
        for segment_id in segment_ids:
            cell = self.cell_of_segment(int(segment_id))
            if not cells or cells[-1] != cell:
                cells.append(cell)
        return cells

    def to_dict(self) -> Dict:
        return {"rows": self.rows, "cols": self.cols}

    @classmethod
    def from_dict(cls, network: RoadNetwork, payload: Dict) -> "GridPartition":
        return cls(network, rows=int(payload["rows"]), cols=int(payload["cols"]))
