"""Command-line interface for the BIGCity reproduction.

The CLI covers the day-to-day entry points a user of the library needs
without writing Python:

``repro datasets``
    Print Table-II-style statistics of the built-in synthetic city presets.

``repro train``
    Run the two-stage training procedure on one preset and (optionally) save
    the resulting model weights.

``repro evaluate``
    Train (or load) a model and score it on the trajectory/traffic tasks.

``repro experiment``
    Regenerate one of the paper's tables or figures through the experiment
    registry (the same runners the benchmark suite uses).

``repro radar``
    Render the Figure-1 radar chart as text.

``repro serve``
    Start the continuous-batching inference service over a warm model pool
    and answer JSON-line requests from stdin.

``repro loadgen``
    Run the synthetic open-loop load generator against the service and
    print serving metrics (requests/s, latency percentiles, occupancy).

All commands are deterministic given ``--seed`` and run on CPU in minutes
with the default ``quick`` profile.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import BIGCityConfig
from repro.core.training import TrainingConfig, train_bigcity
from repro.data.datasets import DATASET_PRESETS, load_dataset
from repro.eval.harness import ExperimentContext, get_profile
from repro.eval.radar import radar_from_table
from repro.eval.registry import EXPERIMENTS, get_experiment
from repro.eval.results import ResultTable
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.similarity import SimilaritySearchEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _model_config(size: str, seed: int) -> BIGCityConfig:
    if size == "tiny":
        return BIGCityConfig.tiny(seed=seed)
    if size == "small":
        return BIGCityConfig.small(seed=seed)
    if size == "default":
        return BIGCityConfig(seed=seed)
    raise ValueError(f"unknown model size {size!r}")


def _print(text: str, stream=None) -> None:
    print(text, file=stream or sys.stdout)


def _tables_from_result(result) -> List[ResultTable]:
    if isinstance(result, ResultTable):
        return [result]
    if isinstance(result, dict):
        tables: List[ResultTable] = []
        for value in result.values():
            tables.extend(_tables_from_result(value))
        return tables
    raise TypeError(f"experiment runner returned unsupported type {type(result)!r}")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_datasets(args: argparse.Namespace) -> int:
    names = args.names or sorted(DATASET_PRESETS)
    table = ResultTable(title="Dataset statistics (Table II analogue)")
    for name in names:
        dataset = load_dataset(name, seed=args.seed)
        table.add_row(name, dataset.summary())
    if args.json:
        _print(table.to_json())
    else:
        _print(table.to_text())
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    model_config = _model_config(args.size, args.seed)
    training_config = TrainingConfig(
        stage1_epochs=args.stage1_epochs,
        stage2_epochs=args.stage2_epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    started = time.time()
    model, logs = train_bigcity(dataset, model_config=model_config, training_config=training_config)
    elapsed = time.time() - started
    for stage, stage_logs in logs.items():
        for log in stage_logs:
            _print(f"[{stage}] epoch {log.epoch}: loss={log.loss:.4f}")
    summary = model.parameter_summary()
    _print(f"trained BIGCity on {args.dataset} in {elapsed:.1f}s "
           f"({summary['total']} parameters, {summary['trainable']} trainable)")
    if args.output:
        path = save_state_dict(model, args.output, metadata={"dataset": args.dataset, "size": args.size})
        _print(f"saved model weights to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    model_config = _model_config(args.size, args.seed)
    training_config = TrainingConfig(
        stage1_epochs=args.stage1_epochs,
        stage2_epochs=args.stage2_epochs,
        seed=args.seed,
    )
    if args.checkpoint:
        from repro.core.model import BIGCity

        model = BIGCity.from_dataset(dataset, config=model_config)
        load_state_dict(model, args.checkpoint)
        model.eval()
    else:
        model, _ = train_bigcity(dataset, model_config=model_config, training_config=training_config)

    table = ResultTable(
        title=f"BIGCity evaluation on {args.dataset}",
        higher_is_better={"tte_mae": False, "tte_rmse": False, "next_acc": True, "next_mrr@5": True, "simi_hr@5": True},
    )
    metrics: Dict[str, float] = {}
    tte = TravelTimeEvaluator(dataset, max_samples=args.max_samples, seed=args.seed)
    tte_metrics = tte.evaluate(model.estimate_travel_time)
    metrics["tte_mae"] = tte_metrics["mae"]
    metrics["tte_rmse"] = tte_metrics["rmse"]
    nxt = NextHopEvaluator(dataset, max_samples=args.max_samples, seed=args.seed)
    next_metrics = nxt.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
    metrics["next_acc"] = next_metrics["acc"]
    metrics["next_mrr@5"] = next_metrics["mrr@5"]
    simi = SimilaritySearchEvaluator(dataset, num_queries=min(args.max_samples, 24), seed=args.seed)
    simi_metrics = simi.evaluate(embed_fn=model.trajectory_embeddings)
    metrics["simi_hr@5"] = simi_metrics["hr@5"]
    target = "user" if dataset.has_dynamic_features else "pattern"
    clas = TrajectoryClassificationEvaluator(dataset, target=target, max_samples=args.max_samples, seed=args.seed)
    clas_metrics = clas.evaluate(
        lambda ts: model.classify_trajectory(ts, target=target),
        lambda ts: model.classification_scores(ts, target=target),
    )
    for key, value in clas_metrics.items():
        metrics[f"clas_{key}"] = value
    table.add_row("bigcity", metrics)
    if args.json:
        _print(table.to_json())
    else:
        _print(table.to_text())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        for name, spec in EXPERIMENTS.items():
            _print(f"{name:10s} {spec.paper_reference:12s} {spec.description}")
        return 0
    names = list(args.name or [])
    if not names:
        _print("an experiment name is required (see --list)", stream=sys.stderr)
        return 2

    from repro.eval.parallel import resolve_workers
    from repro.eval.registry import run_registered

    workers = resolve_workers(args.workers)
    if len(names) == 1 and workers <= 1:
        # In-process path: shares one ExperimentContext (model cache) exactly
        # as before parallel evaluation existed.
        spec = get_experiment(names[0])
        context = ExperimentContext(get_profile(args.profile))
        results = {names[0]: spec.runner(context)}
    else:
        # Sharded path: unknown ids are rejected up front, then one seeded
        # worker process runs each experiment unit and the results merge
        # deterministically (see repro.eval.parallel).
        results = run_registered(names, profile_name=args.profile, num_workers=workers)
    payload = []
    for name in names:
        for table in _tables_from_result(results[name]):
            _print(table.to_text())
            _print("")
            payload.append(table.to_dict())
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        _print(f"saved experiment output to {path}")
    return 0


def _serving_pool(args: argparse.Namespace, dataset):
    """Build the warm model pool for ``serve``/``loadgen``.

    With ``--checkpoint`` the replicas are loaded straight from the
    archive; otherwise a model is trained with the quick schedule, saved to
    a temporary checkpoint, and the pool warm-loads that — so the serving
    path through :mod:`repro.core.checkpoints` is always the one exercised.
    """
    import tempfile

    from repro.core.checkpoints import save_bigcity
    from repro.serving.pool import ModelPool

    if args.checkpoint:
        return ModelPool.from_checkpoint(args.checkpoint, dataset, replicas=args.replicas)
    model_config = _model_config(args.size, args.seed)
    training_config = TrainingConfig(
        stage1_epochs=args.stage1_epochs,
        stage2_epochs=args.stage2_epochs,
        seed=args.seed,
    )
    _print(f"no --checkpoint given; training a {args.size} model first", stream=sys.stderr)
    model, _ = train_bigcity(dataset, model_config=model_config, training_config=training_config)
    with tempfile.TemporaryDirectory() as tmp:
        path = save_bigcity(model, Path(tmp) / "serve.npz", dataset_name=dataset.name)
        return ModelPool.from_checkpoint(path, dataset, replicas=args.replicas)


def _request_from_payload(payload: Dict, dataset):
    """Decode one JSON-line request of the ``repro serve`` protocol."""
    from repro.serving.requests import (
        NextHopRequest,
        RecoveryRequest,
        TrafficImputationRequest,
        TrafficPredictionRequest,
    )

    task = payload.get("task", "next_hop")
    deadline_s = payload.get("deadline_s")
    deadline_s = None if deadline_s is None else float(deadline_s)
    if task in ("next_hop", "recovery"):
        if "trajectory" in payload:
            trajectories = dataset.test_trajectories or dataset.trajectories
            trajectory = trajectories[int(payload["trajectory"]) % len(trajectories)]
        else:
            from repro.data.trajectory import Trajectory

            trajectory = Trajectory(
                trajectory_id=int(payload.get("trajectory_id", -1)),
                user_id=int(payload.get("user_id", 0)),
                segments=[int(s) for s in payload["segments"]],
                timestamps=[float(t) for t in payload["timestamps"]],
            )
        if task == "next_hop":
            return NextHopRequest(
                trajectory=trajectory,
                steps=int(payload.get("steps", 1)),
                deadline_s=deadline_s,
            )
        kept = payload.get("kept", list(range(0, len(trajectory), 2)) + [len(trajectory) - 1])
        # negative indices count from the end, so clients can say "kept": [0, 2, -1]
        # without knowing the length of a split-referenced trajectory
        return RecoveryRequest(
            trajectory=trajectory,
            kept_indices=tuple(sorted({int(i) % len(trajectory) for i in kept})),
            deadline_s=deadline_s,
        )
    if task == "traffic_prediction":
        return TrafficPredictionRequest(
            segment_id=int(payload["segment"]),
            start_slice=int(payload.get("start", 0)),
            history=int(payload.get("history", 4)),
            horizon=int(payload.get("horizon", 1)),
            deadline_s=deadline_s,
        )
    if task == "traffic_imputation":
        return TrafficImputationRequest(
            segment_id=int(payload["segment"]),
            start_slice=int(payload.get("start", 0)),
            num_slices=int(payload.get("num_slices", 6)),
            masked_positions=tuple(int(i) for i in payload.get("masked", (1,))),
            deadline_s=deadline_s,
        )
    raise ValueError(f"unknown task {task!r}")


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve JSON-line requests from stdin through the batching scheduler.

    Results are printed to stdout as JSON lines **in submission order** (a
    line is flushed as soon as every earlier request has finished), so a
    piped burst of requests is folded into continuous batches while the
    output stays aligned with the input.
    """
    import numpy as np

    from repro.serving.service import ServingConfig, ServingService

    dataset = load_dataset(args.dataset, seed=args.seed)
    pool = _serving_pool(args, dataset)
    config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_queue_depth=args.max_queue_depth,
        admission_policy=args.admission_policy,
    )
    service = ServingService(pool, config)
    service.start()
    _print(
        f"serving {args.dataset} with {pool.size} warm replica(s), "
        f"max batch {config.max_batch_size} (warm-up {pool.warmup_s:.2f}s); "
        "reading JSON requests from stdin",
        stream=sys.stderr,
    )

    def emit(handle) -> None:
        try:
            result = handle.result(timeout=args.request_timeout)
            value = result.tolist() if isinstance(result, np.ndarray) else result
            _print(json.dumps({
                "task": handle.request.kind,
                "result": value,
                "latency_s": round(handle.latency_s, 6),
                "batch_size": handle.batch_size,
            }))
        except Exception as error:  # noqa: BLE001 - reported on the wire
            _print(json.dumps({"error": str(error)}))

    pending = []
    stream = open(args.input, "r", encoding="utf-8") if args.input else sys.stdin
    try:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                request = _request_from_payload(json.loads(line), dataset)
                pending.append(service.submit(request))
            except Exception as error:  # noqa: BLE001 - reported on the wire
                _print(json.dumps({"error": str(error)}))
                continue
            while pending and pending[0].done():
                emit(pending.pop(0))
        for handle in pending:
            emit(handle)
    finally:
        if stream is not sys.stdin:
            stream.close()
        service.stop()
    summary = service.metrics.summary()
    _print(
        f"served {summary['requests']:.0f} request(s) at "
        f"{summary['requests_per_s']:.1f} req/s, p50 {summary['latency_p50_s'] * 1e3:.1f}ms, "
        f"mean batch {summary['batch_occupancy_mean']:.2f}",
        stream=sys.stderr,
    )
    failure_counters = {
        name: summary[name]
        for name in ("shed", "failed", "retried", "respawned", "quarantined", "rejected")
        if summary.get(name)
    }
    if failure_counters:
        _print(
            "failure counters: "
            + ", ".join(f"{name}={count:.0f}" for name, count in sorted(failure_counters.items())),
            stream=sys.stderr,
        )
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Open-loop load benchmark: serial baseline vs continuous batching."""
    from repro.serving.loadgen import LoadGenConfig, run_loadgen
    from repro.serving.service import ServingConfig

    dataset = load_dataset(args.dataset, seed=args.seed)
    pool = _serving_pool(args, dataset)
    load_config = LoadGenConfig(
        num_requests=args.num_requests,
        rate_hz=None if args.rate <= 0 else args.rate,
        steps=args.steps,
        seed=args.seed,
    )
    serving_config = ServingConfig(
        max_batch_size=args.max_batch_size,
        max_queue_depth=args.max_queue_depth,
    )
    # run_loadgen borrows one replica for the serial baseline and returns
    # it before starting the service over the full pool.
    result = run_loadgen(None, dataset, load_config, serving_config, pool=pool)
    table = ResultTable(title=f"serving load benchmark on {args.dataset}")
    table.add_row("serving", {k: v for k, v in sorted(result.items()) if not k.startswith("batch_occ_")})
    if args.json:
        _print(json.dumps(result, indent=2, sort_keys=True))
    else:
        _print(table.to_text())
        histogram = ", ".join(
            f"{key.removeprefix('batch_occ_')}: {value:.0f}"
            for key, value in sorted(result.items(), key=lambda kv: kv[0])
            if key.startswith("batch_occ_") and value
        )
        _print(f"batch-occupancy histogram (size: ticks): {histogram or 'empty'}")
    if args.output:
        Path(args.output).write_text(json.dumps(result, indent=2, sort_keys=True), encoding="utf-8")
        _print(f"saved load benchmark to {args.output}", stream=sys.stderr)
    if result["identical"] != 1.0:
        _print("ERROR: batched results diverged from serial execution", stream=sys.stderr)
        return 1
    if result.get("failure_rate", 0.0) > 0.0:
        _print(
            f"ERROR: {result['failure_rate']:.1%} of requests failed "
            f"(rejected {result.get('loadgen_rejected', 0):.0f}, "
            f"failed {result.get('loadgen_failed', 0):.0f}, "
            f"timed out {result.get('loadgen_timeouts', 0):.0f})",
            stream=sys.stderr,
        )
        return 1
    return 0


def cmd_radar(args: argparse.Namespace) -> int:
    from repro.eval.experiments import run_fig1_radar

    context = ExperimentContext(get_profile(args.profile))
    table = run_fig1_radar(context, args.dataset)
    _print(radar_from_table(table, width=args.width))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BIGCity reproduction: universal trajectory + traffic-state model",
    )
    subparsers = parser.add_subparsers(dest="command")

    datasets = subparsers.add_parser("datasets", help="print statistics of the synthetic city presets")
    datasets.add_argument("--names", nargs="*", default=None, help="presets to include (default: all)")
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--json", action="store_true", help="emit JSON instead of a text table")
    datasets.set_defaults(func=cmd_datasets)

    train = subparsers.add_parser("train", help="run the two-stage training procedure")
    train.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    train.add_argument("--size", default="tiny", choices=("tiny", "small", "default"))
    train.add_argument("--stage1-epochs", type=int, default=1)
    train.add_argument("--stage2-epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default=None, help="path to save the trained weights (.npz)")
    train.set_defaults(func=cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="train (or load) a model and score it on the main tasks")
    evaluate.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    evaluate.add_argument("--size", default="tiny", choices=("tiny", "small", "default"))
    evaluate.add_argument("--checkpoint", default=None, help="load weights instead of training")
    evaluate.add_argument("--stage1-epochs", type=int, default=1)
    evaluate.add_argument("--stage2-epochs", type=int, default=2)
    evaluate.add_argument("--max-samples", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--json", action="store_true")
    evaluate.set_defaults(func=cmd_evaluate)

    experiment = subparsers.add_parser("experiment", help="regenerate paper tables/figures")
    experiment.add_argument("name", nargs="*", default=None, help="experiment id(s), e.g. table3 fig1")
    experiment.add_argument("--list", action="store_true", help="list registered experiments")
    experiment.add_argument("--profile", default=None, help="benchmark profile (quick/full/smoke)")
    experiment.add_argument("--output", default=None, help="save the result tables as JSON")
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard experiments over N processes (default: $REPRO_EVAL_WORKERS or 1)",
    )
    experiment.set_defaults(func=cmd_experiment)

    def add_serving_arguments(sub) -> None:
        sub.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
        sub.add_argument("--size", default="tiny", choices=("tiny", "small", "default"))
        sub.add_argument("--checkpoint", default=None, help="warm the pool from this checkpoint instead of training")
        sub.add_argument("--stage1-epochs", type=int, default=1)
        sub.add_argument("--stage2-epochs", type=int, default=2)
        sub.add_argument("--replicas", type=int, default=1, help="warm model replicas in the pool")
        sub.add_argument("--max-batch-size", type=int, default=8)
        sub.add_argument("--max-queue-depth", type=int, default=64)
        sub.add_argument("--seed", type=int, default=0)

    serve = subparsers.add_parser(
        "serve", help="serve JSON-line inference requests with continuous batching"
    )
    add_serving_arguments(serve)
    serve.add_argument("--admission-policy", default="block", choices=("block", "reject"))
    serve.add_argument("--request-timeout", type=float, default=30.0, help="per-request result timeout (s)")
    serve.add_argument("--input", default=None, help="read JSON-line requests from this file instead of stdin")
    serve.set_defaults(func=cmd_serve)

    loadgen = subparsers.add_parser(
        "loadgen", help="open-loop load benchmark of the serving layer"
    )
    add_serving_arguments(loadgen)
    loadgen.add_argument("--num-requests", type=int, default=32)
    loadgen.add_argument(
        "--rate", type=float, default=40.0,
        help="Poisson arrival rate in req/s; <= 0 submits the whole trace as a backlog",
    )
    loadgen.add_argument("--steps", type=int, default=2, help="rollout depth of next-hop requests")
    loadgen.add_argument("--json", action="store_true")
    loadgen.add_argument("--output", default=None, help="save the metrics dict as JSON")
    loadgen.set_defaults(func=cmd_loadgen)

    radar = subparsers.add_parser("radar", help="render the Figure 1 radar chart as text")
    radar.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    radar.add_argument("--profile", default=None)
    radar.add_argument("--width", type=int, default=40)
    radar.set_defaults(func=cmd_radar)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro`
    raise SystemExit(main())
