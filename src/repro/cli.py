"""Command-line interface for the BIGCity reproduction.

The CLI covers the day-to-day entry points a user of the library needs
without writing Python:

``repro datasets``
    Print Table-II-style statistics of the built-in synthetic city presets.

``repro train``
    Run the two-stage training procedure on one preset and (optionally) save
    the resulting model weights.

``repro evaluate``
    Train (or load) a model and score it on the trajectory/traffic tasks.

``repro experiment``
    Regenerate one of the paper's tables or figures through the experiment
    registry (the same runners the benchmark suite uses).

``repro radar``
    Render the Figure-1 radar chart as text.

All commands are deterministic given ``--seed`` and run on CPU in minutes
with the default ``quick`` profile.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import BIGCityConfig
from repro.core.training import TrainingConfig, train_bigcity
from repro.data.datasets import DATASET_PRESETS, load_dataset
from repro.eval.harness import ExperimentContext, get_profile
from repro.eval.radar import radar_from_table
from repro.eval.registry import EXPERIMENTS, get_experiment
from repro.eval.results import ResultTable
from repro.nn.serialization import load_state_dict, save_state_dict
from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.similarity import SimilaritySearchEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator

__all__ = ["build_parser", "main"]


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _model_config(size: str, seed: int) -> BIGCityConfig:
    if size == "tiny":
        return BIGCityConfig.tiny(seed=seed)
    if size == "small":
        return BIGCityConfig.small(seed=seed)
    if size == "default":
        return BIGCityConfig(seed=seed)
    raise ValueError(f"unknown model size {size!r}")


def _print(text: str, stream=None) -> None:
    print(text, file=stream or sys.stdout)


def _tables_from_result(result) -> List[ResultTable]:
    if isinstance(result, ResultTable):
        return [result]
    if isinstance(result, dict):
        tables: List[ResultTable] = []
        for value in result.values():
            tables.extend(_tables_from_result(value))
        return tables
    raise TypeError(f"experiment runner returned unsupported type {type(result)!r}")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def cmd_datasets(args: argparse.Namespace) -> int:
    names = args.names or sorted(DATASET_PRESETS)
    table = ResultTable(title="Dataset statistics (Table II analogue)")
    for name in names:
        dataset = load_dataset(name, seed=args.seed)
        table.add_row(name, dataset.summary())
    if args.json:
        _print(table.to_json())
    else:
        _print(table.to_text())
    return 0


def cmd_train(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    model_config = _model_config(args.size, args.seed)
    training_config = TrainingConfig(
        stage1_epochs=args.stage1_epochs,
        stage2_epochs=args.stage2_epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    started = time.time()
    model, logs = train_bigcity(dataset, model_config=model_config, training_config=training_config)
    elapsed = time.time() - started
    for stage, stage_logs in logs.items():
        for log in stage_logs:
            _print(f"[{stage}] epoch {log.epoch}: loss={log.loss:.4f}")
    summary = model.parameter_summary()
    _print(f"trained BIGCity on {args.dataset} in {elapsed:.1f}s "
           f"({summary['total']} parameters, {summary['trainable']} trainable)")
    if args.output:
        path = save_state_dict(model, args.output, metadata={"dataset": args.dataset, "size": args.size})
        _print(f"saved model weights to {path}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, seed=args.seed)
    model_config = _model_config(args.size, args.seed)
    training_config = TrainingConfig(
        stage1_epochs=args.stage1_epochs,
        stage2_epochs=args.stage2_epochs,
        seed=args.seed,
    )
    if args.checkpoint:
        from repro.core.model import BIGCity

        model = BIGCity.from_dataset(dataset, config=model_config)
        load_state_dict(model, args.checkpoint)
        model.eval()
    else:
        model, _ = train_bigcity(dataset, model_config=model_config, training_config=training_config)

    table = ResultTable(
        title=f"BIGCity evaluation on {args.dataset}",
        higher_is_better={"tte_mae": False, "tte_rmse": False, "next_acc": True, "next_mrr@5": True, "simi_hr@5": True},
    )
    metrics: Dict[str, float] = {}
    tte = TravelTimeEvaluator(dataset, max_samples=args.max_samples, seed=args.seed)
    tte_metrics = tte.evaluate(model.estimate_travel_time)
    metrics["tte_mae"] = tte_metrics["mae"]
    metrics["tte_rmse"] = tte_metrics["rmse"]
    nxt = NextHopEvaluator(dataset, max_samples=args.max_samples, seed=args.seed)
    next_metrics = nxt.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
    metrics["next_acc"] = next_metrics["acc"]
    metrics["next_mrr@5"] = next_metrics["mrr@5"]
    simi = SimilaritySearchEvaluator(dataset, num_queries=min(args.max_samples, 24), seed=args.seed)
    simi_metrics = simi.evaluate(embed_fn=model.trajectory_embeddings)
    metrics["simi_hr@5"] = simi_metrics["hr@5"]
    target = "user" if dataset.has_dynamic_features else "pattern"
    clas = TrajectoryClassificationEvaluator(dataset, target=target, max_samples=args.max_samples, seed=args.seed)
    clas_metrics = clas.evaluate(
        lambda ts: model.classify_trajectory(ts, target=target),
        lambda ts: model.classification_scores(ts, target=target),
    )
    for key, value in clas_metrics.items():
        metrics[f"clas_{key}"] = value
    table.add_row("bigcity", metrics)
    if args.json:
        _print(table.to_json())
    else:
        _print(table.to_text())
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.list:
        for name, spec in EXPERIMENTS.items():
            _print(f"{name:10s} {spec.paper_reference:12s} {spec.description}")
        return 0
    names = list(args.name or [])
    if not names:
        _print("an experiment name is required (see --list)", stream=sys.stderr)
        return 2

    from repro.eval.parallel import resolve_workers
    from repro.eval.registry import run_registered

    workers = resolve_workers(args.workers)
    if len(names) == 1 and workers <= 1:
        # In-process path: shares one ExperimentContext (model cache) exactly
        # as before parallel evaluation existed.
        spec = get_experiment(names[0])
        context = ExperimentContext(get_profile(args.profile))
        results = {names[0]: spec.runner(context)}
    else:
        # Sharded path: unknown ids are rejected up front, then one seeded
        # worker process runs each experiment unit and the results merge
        # deterministically (see repro.eval.parallel).
        results = run_registered(names, profile_name=args.profile, num_workers=workers)
    payload = []
    for name in names:
        for table in _tables_from_result(results[name]):
            _print(table.to_text())
            _print("")
            payload.append(table.to_dict())
    if args.output:
        path = Path(args.output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2), encoding="utf-8")
        _print(f"saved experiment output to {path}")
    return 0


def cmd_radar(args: argparse.Namespace) -> int:
    from repro.eval.experiments import run_fig1_radar

    context = ExperimentContext(get_profile(args.profile))
    table = run_fig1_radar(context, args.dataset)
    _print(radar_from_table(table, width=args.width))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BIGCity reproduction: universal trajectory + traffic-state model",
    )
    subparsers = parser.add_subparsers(dest="command")

    datasets = subparsers.add_parser("datasets", help="print statistics of the synthetic city presets")
    datasets.add_argument("--names", nargs="*", default=None, help="presets to include (default: all)")
    datasets.add_argument("--seed", type=int, default=0)
    datasets.add_argument("--json", action="store_true", help="emit JSON instead of a text table")
    datasets.set_defaults(func=cmd_datasets)

    train = subparsers.add_parser("train", help="run the two-stage training procedure")
    train.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    train.add_argument("--size", default="tiny", choices=("tiny", "small", "default"))
    train.add_argument("--stage1-epochs", type=int, default=1)
    train.add_argument("--stage2-epochs", type=int, default=2)
    train.add_argument("--batch-size", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", default=None, help="path to save the trained weights (.npz)")
    train.set_defaults(func=cmd_train)

    evaluate = subparsers.add_parser("evaluate", help="train (or load) a model and score it on the main tasks")
    evaluate.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    evaluate.add_argument("--size", default="tiny", choices=("tiny", "small", "default"))
    evaluate.add_argument("--checkpoint", default=None, help="load weights instead of training")
    evaluate.add_argument("--stage1-epochs", type=int, default=1)
    evaluate.add_argument("--stage2-epochs", type=int, default=2)
    evaluate.add_argument("--max-samples", type=int, default=30)
    evaluate.add_argument("--seed", type=int, default=0)
    evaluate.add_argument("--json", action="store_true")
    evaluate.set_defaults(func=cmd_evaluate)

    experiment = subparsers.add_parser("experiment", help="regenerate paper tables/figures")
    experiment.add_argument("name", nargs="*", default=None, help="experiment id(s), e.g. table3 fig1")
    experiment.add_argument("--list", action="store_true", help="list registered experiments")
    experiment.add_argument("--profile", default=None, help="benchmark profile (quick/full/smoke)")
    experiment.add_argument("--output", default=None, help="save the result tables as JSON")
    experiment.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard experiments over N processes (default: $REPRO_EVAL_WORKERS or 1)",
    )
    experiment.set_defaults(func=cmd_experiment)

    radar = subparsers.add_parser("radar", help="render the Figure 1 radar chart as text")
    radar.add_argument("--dataset", default="xa_like", choices=sorted(DATASET_PRESETS))
    radar.add_argument("--profile", default=None)
    radar.add_argument("--width", type=int, default=40)
    radar.set_defaults(func=cmd_radar)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not getattr(args, "command", None):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via `python -m repro`
    raise SystemExit(main())
