"""Configuration of the BIGCity model and its training procedure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class BIGCityConfig:
    """Hyper-parameters of BIGCity.

    The defaults are scaled down from the paper (which uses a 117M-parameter
    GPT-2) so that the full two-stage training runs on a CPU in seconds while
    keeping every architectural component intact.
    """

    # --- spatiotemporal tokenizer -------------------------------------
    #: Hidden dimension ``D_h`` of the static/dynamic segment representations.
    hidden_dim: int = 32
    #: GAT depth / heads for both the static and the dynamic encoder.
    gat_layers: int = 2
    gat_heads: int = 2
    #: History window ``T'`` of the dynamic encoder (number of past slices).
    history_window: int = 3
    #: Drop the dynamic encoder (ablation ``w/o-Dyn`` and BJ-like datasets).
    use_dynamic_encoder: bool = True
    #: Drop the static encoder (ablation ``w/o-Sta``).
    use_static_encoder: bool = True
    #: Drop the fusion cross-attention (ablation ``w/o-Fus``).
    use_fusion: bool = True

    # --- backbone ------------------------------------------------------
    #: Model width of the causal backbone (GPT-2 ``d_model``).
    d_model: int = 64
    num_layers: int = 3
    num_heads: int = 4
    dropout: float = 0.0
    max_position: int = 256

    # --- LoRA ----------------------------------------------------------
    lora_rank: int = 8
    lora_alpha: float = 16.0
    #: Fraction ``n`` of transformer blocks that receive LoRA adapters.
    lora_coverage: float = 1.0
    #: Freeze the backbone and train only LoRA adapters (paper default).
    lora_only: bool = True
    #: Train the full backbone during stage-1 masked reconstruction.  The
    #: paper starts from a pretrained GPT-2 and never updates its base
    #: weights; no pretrained checkpoint is available offline, so stage 1
    #: doubles as that pre-training.  Stage-2 prompt tuning still freezes the
    #: base and updates only LoRA (plus heads), as in the paper.
    pretrain_full_backbone: bool = True

    # --- prompts ---------------------------------------------------------
    #: Use task-oriented prompts; ``False`` reproduces the ``w/o-Pro``
    #: ablation, where a task-specific head replaces the prompt mechanism.
    use_prompts: bool = True

    # --- loss weights (Eq. 16 / Eq. 17) ----------------------------------
    lambda_reg: float = 1.0
    lambda_tim: float = 1.0
    lambda_gen: float = 1.0

    #: Random seed controlling every parameter initialisation.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if not 0.0 < self.lora_coverage <= 1.0:
            raise ValueError("lora_coverage must be in (0, 1]")
        if self.history_window < 1:
            raise ValueError("history_window must be >= 1")
        if not (self.use_static_encoder or self.use_dynamic_encoder):
            raise ValueError("at least one of the static/dynamic encoders must be enabled")

    @classmethod
    def tiny(cls, seed: int = 0) -> "BIGCityConfig":
        """A very small configuration for unit tests."""
        return cls(
            hidden_dim=16,
            gat_layers=1,
            gat_heads=1,
            history_window=2,
            d_model=32,
            num_layers=2,
            num_heads=2,
            lora_rank=4,
            max_position=128,
            seed=seed,
        )

    @classmethod
    def small(cls, seed: int = 0) -> "BIGCityConfig":
        """The configuration used by the benchmark harness."""
        return cls(
            hidden_dim=32,
            gat_layers=2,
            gat_heads=2,
            history_window=3,
            d_model=64,
            num_layers=3,
            num_heads=4,
            lora_rank=8,
            max_position=256,
            seed=seed,
        )
