"""Two-stage training of BIGCity (Sec. VI).

Stage 1 — **masked reconstruction training**: ST-unit sequences from both
modalities are masked and reconstructed; the ST tokenizer and the LoRA
modules are trained jointly (Eq. 16).

Stage 2 — **task-oriented prompt tuning**: prompts from every task are mixed
into a single "full training set" and co-trained (Eq. 17); the tokenizer is
frozen and only LoRA modules, the task/special tokens and the general-task
heads are updated.

The trainers operate on laptop-scale synthetic datasets, so an "epoch" takes
seconds; the structure (what is frozen when, which losses apply) follows the
paper exactly.

**Prompt prefetching.**  Prompt assembly is pure Python over the dataset (no
model weights involved), so ``TrainingConfig.prefetch_prompts=True`` moves it
to a one-worker process pool that assembles the *next* epoch's prompts while
the current epoch's forward/backward runs.  The default stays single-process
and bit-identical to the historical trainer; the prefetched mode draws each
epoch's prompts from a dedicated ``(seed, epoch)`` RNG stream (it has to —
the serial mode interleaves prompt building with batch-order draws on one
shared generator), so it is deterministic given the seed but follows a
different sampling stream than the serial mode.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.core.prompts import Prompt, PromptBuilder, TaskType
from repro.core.st_unit import STUnitSequence, traffic_series_to_units
from repro.data.datasets import CityDataset
from repro.data.trajectory import Trajectory, subsample_trajectory
from repro.data.traffic_state import TrafficStateSeries
from repro.nn.optim import Adam, clip_grad_norm


@dataclass
class TrainingConfig:
    """Hyper-parameters of the two training stages."""

    stage1_epochs: int = 2
    stage2_epochs: int = 3
    batch_size: int = 8
    learning_rate: float = 2e-3
    stage2_learning_rate: float = 3e-3
    mask_ratio: float = 0.3
    grad_clip: float = 5.0
    #: Tasks included in stage-2 co-training.
    tasks: Tuple[TaskType, ...] = (
        TaskType.NEXT_HOP,
        TaskType.TRAVEL_TIME,
        TaskType.CLASSIFICATION,
        TaskType.RECOVERY,
        TaskType.TRAFFIC_MULTI_STEP,
        TaskType.TRAFFIC_IMPUTATION,
    )
    #: Cap on the number of trajectories used per epoch (keeps CPU time bounded).
    max_trajectories: Optional[int] = None
    #: Number of traffic-state sequences sampled per epoch for the traffic tasks.
    traffic_sequences_per_epoch: int = 32
    #: History/horizon of the traffic forecasting prompts.
    traffic_history: int = 6
    traffic_horizon: int = 6
    #: Extra next-hop prompts per trajectory cut at random intermediate
    #: positions (besides the prompt that uses the full prefix).
    next_hop_augmentation: int = 3
    #: Mask ratio for recovery prompts during training.
    recovery_keep_ratio: float = 0.3
    #: Mask ratio for imputation prompts during training.
    imputation_mask_ratio: float = 0.25
    #: Group prompts of similar length into the same batch.  ``forward_prompts``
    #: pads every prompt in a batch to the batch maximum, so mixing a 6-token
    #: traffic prompt with a 40-token trajectory prompt wastes most of the
    #: forward/backward work on padding; bucketing keeps batches dense while
    #: the batch *order* (and ties within a length) stay shuffled.  Off by
    #: default: prompt length correlates with task type, so bucketing makes
    #: batches near task-homogeneous and changes the optimisation trajectory —
    #: it is a perf lever to enable deliberately, not silently.
    bucket_by_length: bool = False
    #: Assemble the next epoch's prompts on a worker process while the current
    #: epoch trains.  Off by default (single-process, bit-identical to the
    #: historical trainer); see the module docstring for the RNG-stream
    #: caveat of the prefetched mode.
    prefetch_prompts: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if not 0.0 < self.mask_ratio < 1.0:
            raise ValueError("mask_ratio must be in (0, 1)")


@dataclass
class EpochLog:
    """Loss statistics of a single epoch."""

    epoch: int
    loss: float
    breakdown: Dict[str, float]
    seconds: float


# ----------------------------------------------------------------------
# Prompt assembly (module-level so a prefetch worker process can run it:
# it needs the dataset and the prompt builder, never the model weights)
# ----------------------------------------------------------------------
def _select_trajectories(dataset: CityDataset, max_trajectories: Optional[int], rng: np.random.Generator) -> List[Trajectory]:
    trajectories = dataset.train_trajectories
    if max_trajectories is not None and len(trajectories) > max_trajectories:
        index = rng.choice(len(trajectories), size=max_trajectories, replace=False)
        trajectories = [trajectories[i] for i in index]
    return trajectories


def _sample_traffic_sequences(dataset: CityDataset, count: int, length: int, rng: np.random.Generator) -> List[STUnitSequence]:
    traffic = dataset.traffic_states
    if traffic is None or count <= 0:
        return []
    sequences = []
    max_start = max(traffic.num_slices - length, 1)
    for _ in range(count):
        segment = int(rng.integers(0, traffic.num_segments))
        start = int(rng.integers(0, max_start))
        sequences.append(traffic_series_to_units(traffic, segment, start, length))
    return sequences


def assemble_stage1_prompts(
    dataset: CityDataset,
    traffic_states: Optional[TrafficStateSeries],
    builder: PromptBuilder,
    config: "TrainingConfig",
    rng: np.random.Generator,
) -> List[Prompt]:
    """Stage-1 masked-reconstruction prompts for one epoch (Sec. VI-A)."""
    from repro.core.st_unit import trajectory_to_units

    prompts: List[Prompt] = []
    for trajectory in _select_trajectories(dataset, config.max_trajectories, rng):
        sequence = trajectory_to_units(trajectory, traffic_states)
        prompts.append(builder.masked_reconstruction(sequence, config.mask_ratio, rng=rng))
    length = config.traffic_history + config.traffic_horizon
    for sequence in _sample_traffic_sequences(dataset, config.traffic_sequences_per_epoch, length, rng):
        prompts.append(builder.masked_reconstruction(sequence, config.mask_ratio, rng=rng))
    return prompts


def assemble_stage2_prompts(
    dataset: CityDataset,
    traffic_states: Optional[TrafficStateSeries],
    builder: PromptBuilder,
    config: "TrainingConfig",
    tasks: Tuple[TaskType, ...],
    rng: np.random.Generator,
) -> List[Prompt]:
    """The stage-2 "full training set": prompts from every enabled task (Sec. VI-B)."""
    from repro.core.st_unit import trajectory_to_units

    prompts: List[Prompt] = []
    trajectories = _select_trajectories(dataset, config.max_trajectories, rng)
    classification_target = "user" if dataset.has_dynamic_features else "pattern"

    for trajectory in trajectories:
        sequence = trajectory_to_units(trajectory, traffic_states)
        if TaskType.NEXT_HOP in tasks and len(sequence) >= 3:
            prompts.append(builder.next_hop(sequence))
            # Augment with prompts cut at random intermediate positions so
            # the successor structure of the road graph is seen from many
            # contexts, not only full-length prefixes.
            if len(sequence) > 3 and config.next_hop_augmentation > 0:
                cuts = rng.choice(
                    np.arange(3, len(sequence)),
                    size=min(config.next_hop_augmentation, len(sequence) - 3),
                    replace=False,
                )
                for cut in cuts:
                    prompts.append(builder.next_hop(sequence.slice(0, int(cut))))
        if TaskType.TRAVEL_TIME in tasks:
            prompts.append(builder.travel_time(sequence))
        if TaskType.CLASSIFICATION in tasks:
            prompts.append(builder.classification(sequence, target=classification_target))
        if TaskType.RECOVERY in tasks and len(sequence) >= 5:
            _, kept = subsample_trajectory(trajectory, config.recovery_keep_ratio, rng=rng)
            prompts.append(builder.recovery(sequence, kept))

    traffic = dataset.traffic_states
    if traffic is not None:
        history = config.traffic_history
        horizon = config.traffic_horizon
        count = config.traffic_sequences_per_epoch
        want_traffic = (
            TaskType.TRAFFIC_ONE_STEP in tasks
            or TaskType.TRAFFIC_MULTI_STEP in tasks
            or TaskType.TRAFFIC_IMPUTATION in tasks
        )
        if want_traffic:
            max_start = max(traffic.num_slices - history - horizon, 1)
            for _ in range(count):
                segment = int(rng.integers(0, traffic.num_segments))
                start = int(rng.integers(0, max_start))
                history_seq = traffic_series_to_units(traffic, segment, start, history)
                target = traffic.segment_series(segment)[start + history : start + history + horizon]
                if TaskType.TRAFFIC_MULTI_STEP in tasks:
                    prompts.append(builder.traffic_prediction(history_seq, target, multi_step=True))
                if TaskType.TRAFFIC_ONE_STEP in tasks:
                    prompts.append(builder.traffic_prediction(history_seq, target[:1], multi_step=False))
                if TaskType.TRAFFIC_IMPUTATION in tasks:
                    full_seq = traffic_series_to_units(traffic, segment, start, history + horizon)
                    num_masked = max(1, int(round(config.imputation_mask_ratio * len(full_seq))))
                    masked = rng.choice(len(full_seq), size=num_masked, replace=False)
                    prompts.append(builder.traffic_imputation(full_seq, masked))
    return prompts


#: Per-process state of the prompt-prefetch worker: ``(assemble_fn, args)``.
#: Installed once by the pool initializer so the dataset/builder arguments are
#: pickled to the worker a single time, not once per epoch.
_PREFETCH_STATE: Optional[Tuple[Callable, Tuple]] = None


def _prefetch_initializer(assemble_fn: Callable, args: Tuple) -> None:
    global _PREFETCH_STATE
    _PREFETCH_STATE = (assemble_fn, args)


def _assemble_with_stream(seed: int, stream_tag: int, epoch: int) -> List[Prompt]:
    """Prefetch-worker entry point: build one epoch's prompts on a fresh RNG stream."""
    assemble_fn, args = _PREFETCH_STATE
    rng = np.random.default_rng([abs(int(seed)), int(stream_tag), int(epoch)])
    return assemble_fn(*args, rng)


class _TrainerBase:
    def __init__(self, model: BIGCity, dataset: CityDataset, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.dataset = dataset
        self.config = config or TrainingConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.history: List[EpochLog] = []

    # ------------------------------------------------------------------
    def _train_trajectories(self) -> List[Trajectory]:
        return _select_trajectories(self.dataset, self.config.max_trajectories, self._rng)

    def _traffic_sequences(self, count: int, length: int) -> List[STUnitSequence]:
        return _sample_traffic_sequences(self.dataset, count, length, self._rng)

    # ------------------------------------------------------------------
    def _prompt_spec(self) -> Tuple[Callable, Tuple, int]:
        """``(assemble_fn, args, stream_tag)`` describing this trainer's prompt builder.

        ``assemble_fn(*args, rng)`` must be picklable (module-level function,
        dataset/builder/config arguments) so the prefetch worker can run it.
        """
        raise NotImplementedError

    def _epoch_prompt_lists(self, epochs: int) -> Iterator[List[Prompt]]:
        """Yield one prompt list per epoch, prefetching one epoch ahead when enabled.

        The default path builds prompts inline with the trainer's shared RNG —
        the exact draws (and therefore the exact optimisation trajectory) of
        the historical single-process trainer.  With
        ``config.prefetch_prompts`` a one-worker process pool assembles epoch
        ``e+1`` while epoch ``e`` trains; each epoch then uses its own
        ``(seed, stage, epoch)`` stream so the schedule is deterministic no
        matter how the overlap lands.
        """
        assemble_fn, args, stream_tag = self._prompt_spec()
        if not self.config.prefetch_prompts:
            for _ in range(epochs):
                yield assemble_fn(*args, self._rng)
            return
        pool: Executor = ProcessPoolExecutor(
            max_workers=1, initializer=_prefetch_initializer, initargs=(assemble_fn, args)
        )
        try:
            future = pool.submit(_assemble_with_stream, self.config.seed, stream_tag, 0)
            for epoch in range(epochs):
                prompts = future.result()
                if epoch + 1 < epochs:
                    future = pool.submit(_assemble_with_stream, self.config.seed, stream_tag, epoch + 1)
                yield prompts
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _batched_order(self, prompts: List[Prompt]) -> List[np.ndarray]:
        """Shuffled per-batch index groups, optionally bucketed by prompt length.

        Each group feeds ``prompt_loss`` as ONE padded-and-stacked batch (one
        backbone forward/backward), so grouping similar lengths minimises the
        padding the batch is inflated to.
        """
        order = self._rng.permutation(len(prompts))
        bucketing = self.config.bucket_by_length and len(order) > self.config.batch_size
        if bucketing:
            # Stable sort after the permutation: equal lengths stay shuffled.
            lengths = np.asarray(
                [len(prompts[i].sequence) + len(prompts[i].placeholders) for i in order]
            )
            order = order[np.argsort(lengths, kind="stable")]
        groups = [
            order[start : start + self.config.batch_size]
            for start in range(0, len(order), self.config.batch_size)
        ]
        if bucketing and len(groups) > 1:
            # Only bucketing re-shuffles the group order (so epochs don't
            # always go short-to-long); without it the single permutation
            # above already randomises batches, exactly like the original
            # epoch loop — same RNG draws, same optimisation trajectory.
            groups = [groups[i] for i in self._rng.permutation(len(groups))]
        return groups

    def _run_epoch(self, prompts: List[Prompt], optimizer: Adam, epoch: int) -> EpochLog:
        start_time = time.perf_counter()
        total_loss = 0.0
        breakdown_sum: Dict[str, float] = {}
        batches = 0
        for group in self._batched_order(prompts):
            batch = [prompts[i] for i in group]
            optimizer.zero_grad()
            loss, breakdown = self.model.prompt_loss(batch)
            if not loss.requires_grad:
                continue
            loss.backward()
            clip_grad_norm(optimizer.parameters, self.config.grad_clip)
            optimizer.step()
            total_loss += float(loss.item())
            for key, value in breakdown.items():
                breakdown_sum[key] = breakdown_sum.get(key, 0.0) + value
            batches += 1
        elapsed = time.perf_counter() - start_time
        mean_loss = total_loss / max(batches, 1)
        log = EpochLog(epoch=epoch, loss=mean_loss, breakdown=breakdown_sum, seconds=elapsed)
        self.history.append(log)
        return log


class MaskedReconstructionTrainer(_TrainerBase):
    """Stage 1: self-supervised masked reconstruction (Sec. VI-A)."""

    def _prompt_spec(self) -> Tuple[Callable, Tuple, int]:
        args = (self.dataset, self.model._traffic_states, self.model.prompt_builder, self.config)
        return assemble_stage1_prompts, args, 1

    def build_prompts(self) -> List[Prompt]:
        assemble_fn, args, _ = self._prompt_spec()
        return assemble_fn(*args, self._rng)

    def train(self, epochs: Optional[int] = None) -> List[EpochLog]:
        epochs = epochs if epochs is not None else self.config.stage1_epochs
        self.model.train()
        # Without a pretrained GPT-2 checkpoint, masked reconstruction doubles
        # as the backbone's pre-training: the base transformer weights are
        # updated here and frozen again before task-oriented prompt tuning.
        unfroze_backbone = False
        if getattr(self.model.config, "pretrain_full_backbone", False):
            self.model.backbone.llm.unfreeze()
            unfroze_backbone = True
        optimizer = Adam(self.model.trainable_parameters(), lr=self.config.learning_rate)
        logs = []
        for epoch, prompts in enumerate(self._epoch_prompt_lists(epochs)):
            logs.append(self._run_epoch(prompts, optimizer, epoch))
        if unfroze_backbone and self.model.config.lora_only:
            # Restore the paper's setting: frozen base, trainable LoRA only.
            self.model.backbone.freeze_base()
        return logs


class PromptTuningTrainer(_TrainerBase):
    """Stage 2: multi-task task-oriented prompt tuning (Sec. VI-B)."""

    def __init__(
        self,
        model: BIGCity,
        dataset: CityDataset,
        config: Optional[TrainingConfig] = None,
        tasks: Optional[Sequence[TaskType]] = None,
    ) -> None:
        super().__init__(model, dataset, config)
        self.tasks = tuple(tasks) if tasks is not None else self.config.tasks

    # ------------------------------------------------------------------
    def _prompt_spec(self) -> Tuple[Callable, Tuple, int]:
        args = (
            self.dataset,
            self.model._traffic_states,
            self.model.prompt_builder,
            self.config,
            tuple(self.tasks),
        )
        return assemble_stage2_prompts, args, 2

    def build_prompts(self) -> List[Prompt]:
        """The "full training set": prompts from every enabled task, mixed together."""
        assemble_fn, args, _ = self._prompt_spec()
        return assemble_fn(*args, self._rng)

    def train(self, epochs: Optional[int] = None, freeze_tokenizer: bool = True) -> List[EpochLog]:
        epochs = epochs if epochs is not None else self.config.stage2_epochs
        self.model.train()
        if freeze_tokenizer:
            self.model.tokenizer.freeze()
        parameters = self.model.trainable_parameters()
        if not parameters:
            raise RuntimeError("no trainable parameters left for prompt tuning")
        optimizer = Adam(parameters, lr=self.config.stage2_learning_rate)
        logs = []
        for epoch, prompts in enumerate(self._epoch_prompt_lists(epochs)):
            logs.append(self._run_epoch(prompts, optimizer, epoch))
        return logs


def train_bigcity(
    dataset: CityDataset,
    model_config: Optional[BIGCityConfig] = None,
    training_config: Optional[TrainingConfig] = None,
    tasks: Optional[Sequence[TaskType]] = None,
) -> Tuple[BIGCity, Dict[str, List[EpochLog]]]:
    """End-to-end convenience wrapper: build a model and run both stages.

    Returns the trained model and the per-stage epoch logs.
    """
    model = BIGCity.from_dataset(dataset, config=model_config)
    config = training_config or TrainingConfig()
    stage1 = MaskedReconstructionTrainer(model, dataset, config)
    stage1_logs = stage1.train()
    stage2 = PromptTuningTrainer(model, dataset, config, tasks=tasks)
    stage2_logs = stage2.train()
    model.eval()
    return model, {"stage1": stage1_logs, "stage2": stage2_logs}
