"""The LLM-based backbone with LoRA adapters (Sec. V-B).

The backbone is a GPT-2-architecture causal transformer.  Following the
paper, LoRA modules are attached to the query/key/value projections and the
feed-forward layers of (a configurable fraction of) the transformer blocks;
during training the base weights stay frozen and only the LoRA matrices (and
optionally the embeddings) receive gradients.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import BIGCityConfig
from repro.nn.lora import attach_lora, lora_parameters, mark_only_lora_trainable
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.nn.transformer import GPT2Config, GPT2Model


class BIGCityBackbone(Module):
    """Causal transformer backbone shared by every task.

    Parameters
    ----------
    config:
        Model configuration (width, depth, LoRA settings).
    text_vocab_size:
        Vocabulary size of the instruction tokenizer; 0 disables the textual
        branch entirely (used by the ``w/o-Pro`` ablation).
    """

    def __init__(self, config: Optional[BIGCityConfig] = None, text_vocab_size: int = 0) -> None:
        super().__init__()
        self.config = config or BIGCityConfig()
        gpt_config = GPT2Config(
            d_model=self.config.d_model,
            num_layers=self.config.num_layers,
            num_heads=self.config.num_heads,
            max_position=self.config.max_position,
            dropout=self.config.dropout,
            vocab_size=text_vocab_size,
            causal=True,
            seed=self.config.seed,
        )
        self.llm = GPT2Model(gpt_config)
        rng = np.random.default_rng(self.config.seed + 13)
        self._lora_names: List[str] = attach_lora(
            self.llm,
            rank=self.config.lora_rank,
            alpha=self.config.lora_alpha,
            coverage=self.config.lora_coverage,
            rng=rng,
        )
        if self.config.lora_only:
            self.freeze_base()

    # ------------------------------------------------------------------
    @property
    def d_model(self) -> int:
        return self.config.d_model

    @property
    def lora_module_names(self) -> List[str]:
        return list(self._lora_names)

    def freeze_base(self) -> Tuple[int, int]:
        """Freeze everything except LoRA matrices; returns (trainable, total) sizes."""
        return mark_only_lora_trainable(self.llm)

    def trainable_parameter_count(self) -> int:
        return self.llm.num_parameters(trainable_only=True)

    def total_parameter_count(self) -> int:
        return self.llm.num_parameters(trainable_only=False)

    # ------------------------------------------------------------------
    def embed_text(self, token_ids: np.ndarray) -> Tensor:
        """Embed instruction token ids into the model width."""
        return self.llm.embed_tokens(np.asarray(token_ids, dtype=np.int64))

    def new_caches(self):
        """Fresh per-layer KV caches for autoregressive decoding."""
        return self.llm.new_caches()

    def forward(
        self,
        embeddings: Tensor,
        padding_mask: Optional[np.ndarray] = None,
        caches=None,
        position_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Run the causal transformer over an embedded prompt sequence (Eq. 10).

        ``caches`` enables KV-cached incremental decoding (inference only):
        pass only the new positions and the attention layers reuse the cached
        prefix keys/values.  ``position_ids`` gives per-row positional indices
        (batched decoding over rows of different prompt lengths).
        """
        return self.llm(embeddings, padding_mask=padding_mask, caches=caches, position_ids=position_ids)
