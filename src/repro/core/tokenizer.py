"""The spatiotemporal tokenizer (Sec. IV-B).

The tokenizer turns ST-unit sequences into ST tokens through four modules:

* **static feature encoder** — a GAT over the road network's static features
  (Eq. 4), producing ``H^(s)``;
* **dynamic feature encoder** — a GAT over the dynamic road network whose node
  features are the concatenated traffic-state history window (Eq. 5),
  producing ``H^(d)_t`` for a given time slice ``t``;
* **fusion encoder** — a cross-attention over all segments that fuses static
  and dynamic representations into ``s_{i,t}`` capturing long-range
  dependencies (Eq. 6–7);
* **temporal integration** — an MLP combining the fused spatial
  representation with the timestamp features and the inter-sample interval
  ``delta tau`` into the final ST token (Eq. 8).

The static representation is shared by every token; dynamic/fused
representations are computed once per time slice appearing in a batch and
cached for the duration of that forward pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BIGCityConfig
from repro.core.st_unit import STUnitSequence
from repro.data.timeutils import TIMESTAMP_FEATURE_DIM, TimeAxis, timestamp_features
from repro.data.traffic_state import TrafficStateSeries
from repro.nn.attention import CrossAttentionPool
from repro.nn.gat import GAT
from repro.nn.layers import MLP, Embedding, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.roadnet.network import RoadNetwork


class SpatioTemporalTokenizer(Module):
    """Encode ST-unit sequences into ST-token sequences."""

    def __init__(
        self,
        network: RoadNetwork,
        time_axis: TimeAxis,
        config: Optional[BIGCityConfig] = None,
        traffic_states: Optional[TrafficStateSeries] = None,
    ) -> None:
        super().__init__()
        self.config = config or BIGCityConfig()
        self.network = network
        self.time_axis = time_axis
        rng = np.random.default_rng(self.config.seed)

        hidden = self.config.hidden_dim
        self._static_features = network.static_features
        self._adjacency = network.adjacency.astype(bool)

        if self.config.use_static_encoder:
            self.static_gat = GAT(
                in_features=network.static_feature_dim,
                hidden_features=hidden,
                out_features=hidden,
                num_layers=self.config.gat_layers,
                num_heads=self.config.gat_heads,
                rng=rng,
            )
            self.static_ffn = Linear(hidden, hidden, rng=rng)
            # Definition 1 lists the road ID among the static attributes; a
            # learnable per-segment embedding carries that identity alongside
            # the GAT-encoded topology/attribute features.
            self.segment_id_embedding = Embedding(network.num_segments, hidden, rng=rng, std=0.5)
        else:
            self.static_gat = None
            self.static_ffn = None
            self.segment_id_embedding = None

        self._traffic_values: Optional[np.ndarray] = None
        self._traffic_mean: Optional[np.ndarray] = None
        self._traffic_std: Optional[np.ndarray] = None
        self.num_channels = 0
        if self.config.use_dynamic_encoder and traffic_states is not None:
            self.num_channels = traffic_states.num_channels
            window = self.config.history_window
            self.dynamic_gat = GAT(
                in_features=self.num_channels * (window + 1),
                hidden_features=hidden,
                out_features=hidden,
                num_layers=self.config.gat_layers,
                num_heads=self.config.gat_heads,
                rng=rng,
            )
            self.dynamic_ffn = Linear(hidden, hidden, rng=rng)
            self.set_traffic_states(traffic_states)
        else:
            self.dynamic_gat = None
            self.dynamic_ffn = None

        fused_dim = hidden * (int(self.has_static_encoder) + int(self.has_dynamic_encoder))
        self._fused_dim = fused_dim
        if self.config.use_fusion:
            self.fusion = CrossAttentionPool(fused_dim, rng=rng)
        else:
            self.fusion = None

        token_input = fused_dim + TIMESTAMP_FEATURE_DIM + 1  # + delta tau
        self.token_mlp = MLP(
            in_features=token_input,
            hidden_features=[2 * self.config.d_model],
            out_features=self.config.d_model,
            activation="gelu",
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def has_static_encoder(self) -> bool:
        return self.static_gat is not None

    @property
    def has_dynamic_encoder(self) -> bool:
        return self.dynamic_gat is not None

    @property
    def d_model(self) -> int:
        return self.config.d_model

    @property
    def fused_dim(self) -> int:
        return self._fused_dim

    # ------------------------------------------------------------------
    # Traffic-state plumbing
    # ------------------------------------------------------------------
    def set_traffic_states(self, traffic_states: TrafficStateSeries) -> None:
        """Register (and z-score) the traffic tensor used by the dynamic encoder."""
        values = traffic_states.values
        mean = values.reshape(-1, values.shape[-1]).mean(axis=0)
        std = values.reshape(-1, values.shape[-1]).std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        self._traffic_values = values
        self._traffic_mean = mean
        self._traffic_std = std

    def _normalised_traffic(self, traffic_override: Optional[np.ndarray]) -> np.ndarray:
        values = self._traffic_values if traffic_override is None else traffic_override
        if values is None:
            raise RuntimeError("the dynamic encoder is enabled but no traffic states were registered")
        return (values - self._traffic_mean) / self._traffic_std

    def _dynamic_window_features(self, slice_index: int, traffic: np.ndarray) -> np.ndarray:
        """Concatenated history window ``~e^(d)_t`` for every segment (Eq. 5)."""
        window = self.config.history_window
        pieces = []
        for t in range(slice_index - window, slice_index + 1):
            if t < 0:
                pieces.append(np.zeros((traffic.shape[0], traffic.shape[2])))
            else:
                pieces.append(traffic[:, t, :])
        return np.concatenate(pieces, axis=1)

    # ------------------------------------------------------------------
    # Spatial representations
    # ------------------------------------------------------------------
    def static_representations(self) -> Optional[Tensor]:
        """``H^(s)``: static representation of every segment (Eq. 4).

        The GAT encodes the attribute/topology features; the road-ID
        embedding (part of the static attributes per Definition 1) is added
        so that every segment keeps a distinguishable identity.
        """
        if not self.has_static_encoder:
            return None
        features = Tensor(self._static_features)
        encoded = self.static_ffn(self.static_gat(features, self._adjacency))
        identity = self.segment_id_embedding(np.arange(self.network.num_segments))
        return encoded + identity

    def dynamic_representations(self, slice_index: int, traffic_override: Optional[np.ndarray] = None) -> Optional[Tensor]:
        """``H^(d)_t``: dynamic representation of every segment at a slice (Eq. 5)."""
        if not self.has_dynamic_encoder:
            return None
        traffic = self._normalised_traffic(traffic_override)
        window_features = self._dynamic_window_features(slice_index, traffic)
        return self.dynamic_ffn(self.dynamic_gat(Tensor(window_features), self._adjacency))

    def fused_representations(
        self,
        slice_indices: Sequence[int],
        traffic_override: Optional[np.ndarray] = None,
    ) -> Dict[int, Tensor]:
        """Fused spatial representations ``s_{i, t}`` for each requested slice.

        Returns a mapping ``slice_index -> (num_segments, fused_dim)`` tensor.
        The static part is computed once and shared across slices.
        """
        unique_slices = sorted({int(s) for s in slice_indices})
        static = self.static_representations()
        fused: Dict[int, Tensor] = {}
        for slice_index in unique_slices:
            parts: List[Tensor] = []
            if static is not None:
                parts.append(static)
            dynamic = self.dynamic_representations(slice_index, traffic_override)
            if dynamic is not None:
                parts.append(dynamic)
            h = parts[0] if len(parts) == 1 else Tensor.concat(parts, axis=-1)
            fused[slice_index] = self.fusion(h) if self.fusion is not None else h
        return fused

    # ------------------------------------------------------------------
    # Token construction
    # ------------------------------------------------------------------
    def encode_sequence(
        self,
        sequence: STUnitSequence,
        time_feature_mask: Optional[np.ndarray] = None,
        traffic_override: Optional[np.ndarray] = None,
        fused_cache: Optional[Dict[int, Tensor]] = None,
    ) -> Tensor:
        """Encode one ST-unit sequence into ``(L, d_model)`` ST tokens (Eq. 8).

        Parameters
        ----------
        sequence:
            The ST-unit sequence (trajectory or traffic-state series).
        time_feature_mask:
            Optional boolean ``(L,)`` array; where ``True`` the timestamp
            features and the interval are zeroed.  This implements the
            "ST token without temporal features" variant of the TTE prompt
            template (Fig. 3b).
        traffic_override:
            Optional replacement traffic tensor (used by the imputation task
            so that masked cells are not leaked through the dynamic encoder).
        fused_cache:
            Pre-computed fused representations (from :meth:`fused_representations`)
            to share across several sequences of the same batch.
        """
        slice_indices = [self.time_axis.slice_of(t) for t in sequence.timestamps]
        if fused_cache is None:
            fused_cache = self.fused_representations(slice_indices, traffic_override)
        missing = [s for s in set(slice_indices) if s not in fused_cache]
        if missing:
            fused_cache.update(self.fused_representations(missing, traffic_override))

        time_feats = sequence.time_features(self.time_axis.slice_seconds)
        intervals = sequence.time_intervals() / self.time_axis.slice_seconds
        if time_feature_mask is not None:
            mask = np.asarray(time_feature_mask, dtype=bool)
            time_feats = np.where(mask[:, None], 0.0, time_feats)
            intervals = np.where(mask, 0.0, intervals)

        spatial_rows: List[Tensor] = []
        for position, (segment, slice_index) in enumerate(zip(sequence.segment_ids, slice_indices)):
            spatial_rows.append(fused_cache[slice_index][int(segment)])
        spatial = Tensor.stack(spatial_rows, axis=0)
        temporal = Tensor(np.concatenate([time_feats, intervals[:, None]], axis=1))
        return self.token_mlp(Tensor.concat([spatial, temporal], axis=-1))

    def encode_batch(
        self,
        sequences: Sequence[STUnitSequence],
        time_feature_masks: Optional[Sequence[Optional[np.ndarray]]] = None,
        traffic_override: Optional[np.ndarray] = None,
    ) -> List[Tensor]:
        """Encode several sequences, sharing the per-slice fused representations.

        Returns a list of ``(L_i, d_model)`` tensors (ragged; padding is the
        caller's concern because the downstream prompt assembly interleaves
        these tokens with text and task tokens).
        """
        all_slices: List[int] = []
        for sequence in sequences:
            all_slices.extend(self.time_axis.slice_of(t) for t in sequence.timestamps)
        fused_cache = self.fused_representations(all_slices, traffic_override)
        outputs = []
        for index, sequence in enumerate(sequences):
            mask = None
            if time_feature_masks is not None:
                mask = time_feature_masks[index]
            outputs.append(
                self.encode_sequence(
                    sequence,
                    time_feature_mask=mask,
                    traffic_override=traffic_override,
                    fused_cache=fused_cache,
                )
            )
        return outputs

    def encode_partial(
        self,
        segment_id: Optional[int] = None,
        timestamp: Optional[float] = None,
        static_cache: Optional[Tensor] = None,
    ) -> Tensor:
        """Encode a *partially known* ST-unit into a ``(d_model,)`` token.

        This realises the partially filled ST tokens annotated in Fig. 3 of
        the paper: the spatial part uses only the static representation of the
        segment (never the traffic state), or zeros when the segment is
        unknown; the temporal part uses the timestamp features, or zeros when
        the time is unknown.  ``static_cache`` can pass a pre-computed
        ``static_representations()`` tensor so a batch of partial tokens
        shares one GAT forward pass.
        """
        hidden = self.config.hidden_dim
        if segment_id is not None and self.has_static_encoder:
            static = static_cache if static_cache is not None else self.static_representations()
            spatial_static = static[int(segment_id)]
        else:
            spatial_static = Tensor(np.zeros(hidden)) if self.has_static_encoder else None
        parts: List[Tensor] = []
        if self.has_static_encoder:
            parts.append(spatial_static)
        if self.has_dynamic_encoder:
            parts.append(Tensor(np.zeros(hidden)))
        spatial = parts[0] if len(parts) == 1 else Tensor.concat(parts, axis=-1)
        if timestamp is not None:
            time_features = timestamp_features(float(timestamp), self.time_axis.slice_seconds)
        else:
            time_features = np.zeros(TIMESTAMP_FEATURE_DIM)
        temporal = Tensor(np.concatenate([time_features, np.zeros(1)]))
        return self.token_mlp(Tensor.concat([spatial, temporal], axis=-1))

    def forward(self, sequence: STUnitSequence) -> Tensor:
        return self.encode_sequence(sequence)
