"""Cross-city transfer of a trained backbone (Sec. VII-C, Table VI).

The paper pre-trains BIGCity on the large BJ dataset and transfers its
backbone to the smaller XA/CD datasets: the target city gets its own
spatiotemporal tokenizer, the transferred backbone stays fixed, and only the
tokenizer's final MLP (plus the task heads) is fine-tuned on the target data.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.core.prompts import TaskType
from repro.core.training import EpochLog, PromptTuningTrainer, TrainingConfig
from repro.data.datasets import CityDataset


def transfer_backbone(
    source_model: BIGCity,
    target_dataset: CityDataset,
    training_config: Optional[TrainingConfig] = None,
    tasks: Optional[Sequence[TaskType]] = None,
    finetune_epochs: int = 2,
) -> Tuple[BIGCity, List[EpochLog]]:
    """Transfer a trained backbone to a new city and lightly fine-tune.

    Parameters
    ----------
    source_model:
        A BIGCity model trained on the source city (e.g. the BJ-like preset).
    target_dataset:
        The target city's dataset; a fresh tokenizer is built for its road
        network and traffic states.
    training_config:
        Fine-tuning hyper-parameters (defaults to a short schedule).
    tasks:
        Tasks used for the fine-tuning pass; defaults to the standard stage-2
        task mix.
    finetune_epochs:
        Number of prompt-tuning epochs on the target city.

    Returns
    -------
    (transferred_model, fine-tuning epoch logs)
    """
    config = source_model.config
    target_model = BIGCity.from_dataset(target_dataset, config=config)

    # Copy the backbone (frozen base + LoRA adapters) and the shared task
    # tokens from the source model.  Tokenizer and heads stay city-specific.
    target_model.backbone.load_state_dict(source_model.backbone.state_dict())
    target_model.clas_token.data = source_model.clas_token.data.copy()
    target_model.reg_token.data = source_model.reg_token.data.copy()
    target_model.mask_token.data = source_model.mask_token.data.copy()

    # Freeze everything except: the tokenizer's final MLP, the task heads and
    # the special tokens.  This mirrors "only fine-tuned the last MLP layer of
    # tokenizers" in the paper (the heads must adapt to the new label space).
    target_model.tokenizer.freeze()
    target_model.tokenizer.token_mlp.unfreeze()
    for parameter in target_model.backbone.parameters():
        parameter.requires_grad = False

    finetune_config = training_config or TrainingConfig(stage2_epochs=finetune_epochs, stage2_learning_rate=2e-3)
    trainer = PromptTuningTrainer(target_model, target_dataset, finetune_config, tasks=tasks)
    logs = trainer.train(epochs=finetune_epochs, freeze_tokenizer=False)
    target_model.eval()
    return target_model, logs
