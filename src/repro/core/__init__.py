"""BIGCity core: unified ST representation and the versatile task-prompted model.

The sub-modules follow the paper's structure:

* :mod:`repro.core.st_unit` — ST-units, the unified representation of
  trajectories and traffic states (Sec. IV-A).
* :mod:`repro.core.tokenizer` — the spatiotemporal tokenizer turning ST-unit
  sequences into ST tokens (Sec. IV-B).
* :mod:`repro.core.prompts` — task-oriented prompts: textual instructions,
  ST tokens and task placeholders (Sec. V-A).
* :mod:`repro.core.backbone` — the LoRA-adapted causal (GPT-2 style)
  backbone (Sec. V-B).
* :mod:`repro.core.heads` — the general task heads (Sec. V-C).
* :mod:`repro.core.model` — the assembled BIGCity model.
* :mod:`repro.core.training` — the two-stage training strategy (Sec. VI).
* :mod:`repro.core.transfer` — cross-city backbone transfer (Sec. VII-C).
* :mod:`repro.core.fewshot` — few-/zero-shot cross-city adaptation built on
  the transfer machinery.
"""

from repro.core.config import BIGCityConfig
from repro.core.st_unit import STUnit, STUnitSequence, trajectory_to_units, traffic_series_to_units
from repro.core.tokenizer import SpatioTemporalTokenizer
from repro.core.prompts import (
    TaskType,
    Prompt,
    PromptBuilder,
    TextTokenizer,
    INSTRUCTION_BANK,
)
from repro.core.heads import GeneralTaskHeads, LabelSpace
from repro.core.backbone import BIGCityBackbone
from repro.core.model import BIGCity
from repro.core.training import (
    MaskedReconstructionTrainer,
    PromptTuningTrainer,
    TrainingConfig,
    train_bigcity,
)
from repro.core.transfer import transfer_backbone
from repro.core.checkpoints import save_bigcity, load_bigcity, read_checkpoint_metadata
from repro.core.fewshot import (
    few_shot_transfer,
    zero_shot_transfer,
    limit_training_trajectories,
    evaluate_adaptation,
)

__all__ = [
    "BIGCityConfig",
    "STUnit",
    "STUnitSequence",
    "trajectory_to_units",
    "traffic_series_to_units",
    "SpatioTemporalTokenizer",
    "TaskType",
    "Prompt",
    "PromptBuilder",
    "TextTokenizer",
    "INSTRUCTION_BANK",
    "GeneralTaskHeads",
    "LabelSpace",
    "BIGCityBackbone",
    "BIGCity",
    "MaskedReconstructionTrainer",
    "PromptTuningTrainer",
    "TrainingConfig",
    "train_bigcity",
    "transfer_backbone",
    "save_bigcity",
    "load_bigcity",
    "read_checkpoint_metadata",
    "few_shot_transfer",
    "zero_shot_transfer",
    "limit_training_trajectories",
    "evaluate_adaptation",
]
