"""General-task heads and the unified label space (Sec. V-C).

The paper decodes every output token with one of three shared MLPs:
``MLP_c`` for classification, ``MLP_t`` for timestamp regression and
``MLP_r`` for general regression (Eq. 11).  Because classification targets
come from different task families (road segments for next-hop/recovery, user
ids for trajectory–user linkage, traffic-pattern classes for the binary
classification task), the single classification head operates over a unified
label space that concatenates those families; :class:`LabelSpace` handles
the offset bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.core.config import BIGCityConfig
from repro.nn.layers import MLP
from repro.nn.module import Module
from repro.nn.tensor import Tensor


@dataclass(frozen=True)
class LabelSpace:
    """Unified classification label space: segments ++ users ++ pattern classes."""

    num_segments: int
    num_users: int
    num_patterns: int = 2

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError("label space needs at least one segment")
        if self.num_users < 0 or self.num_patterns < 0:
            raise ValueError("user / pattern counts cannot be negative")

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return self.num_segments + self.num_users + self.num_patterns

    @property
    def segment_offset(self) -> int:
        return 0

    @property
    def user_offset(self) -> int:
        return self.num_segments

    @property
    def pattern_offset(self) -> int:
        return self.num_segments + self.num_users

    # ------------------------------------------------------------------
    def segment_label(self, segment_id: int) -> int:
        if not 0 <= segment_id < self.num_segments:
            raise ValueError(f"segment id {segment_id} outside [0, {self.num_segments})")
        return self.segment_offset + segment_id

    def user_label(self, user_id: int) -> int:
        if not 0 <= user_id < self.num_users:
            raise ValueError(f"user id {user_id} outside [0, {self.num_users})")
        return self.user_offset + user_id

    def pattern_label(self, pattern: int) -> int:
        if not 0 <= pattern < self.num_patterns:
            raise ValueError(f"pattern class {pattern} outside [0, {self.num_patterns})")
        return self.pattern_offset + pattern

    # ------------------------------------------------------------------
    def segment_slice(self) -> slice:
        return slice(self.segment_offset, self.segment_offset + self.num_segments)

    def user_slice(self) -> slice:
        return slice(self.user_offset, self.user_offset + self.num_users)

    def pattern_slice(self) -> slice:
        return slice(self.pattern_offset, self.pattern_offset + self.num_patterns)

    def family_slice(self, family: str) -> slice:
        if family == "segment":
            return self.segment_slice()
        if family == "user":
            return self.user_slice()
        if family == "pattern":
            return self.pattern_slice()
        raise ValueError(f"unknown label family {family!r}")


class GeneralTaskHeads(Module):
    """The three shared decoders ``MLP_c``, ``MLP_t`` and ``MLP_r`` (Eq. 11)."""

    def __init__(
        self,
        d_model: int,
        label_space: LabelSpace,
        regression_dim: int,
        config: Optional[BIGCityConfig] = None,
    ) -> None:
        super().__init__()
        config = config or BIGCityConfig()
        rng = np.random.default_rng(config.seed + 7)
        self.label_space = label_space
        self.regression_dim = max(regression_dim, 1)
        hidden = max(d_model, 32)
        self.classifier = MLP(d_model, [hidden], label_space.size, activation="gelu", rng=rng)
        self.timestamp_head = MLP(d_model, [hidden], 1, activation="gelu", rng=rng)
        self.regression_head = MLP(d_model, [hidden], self.regression_dim, activation="gelu", rng=rng)

    # ------------------------------------------------------------------
    def classification_logits(self, tokens: Tensor, family: Optional[str] = None) -> Tensor:
        """Logits over the unified label space (optionally restricted to one family)."""
        logits = self.classifier(tokens)
        if family is None:
            return logits
        restriction = self.label_space.family_slice(family)
        return logits[..., restriction]

    def timestamp_prediction(self, tokens: Tensor) -> Tensor:
        """Predicted time interval(s) in units of time slices (``MLP_t``)."""
        return self.timestamp_head(tokens)

    def regression_prediction(self, tokens: Tensor) -> Tensor:
        """Predicted dynamic features (``MLP_r``)."""
        return self.regression_head(tokens)

    def forward(self, tokens: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Return all three decoded views of ``tokens``."""
        return (
            self.classification_logits(tokens),
            self.timestamp_prediction(tokens),
            self.regression_prediction(tokens),
        )
