"""The assembled BIGCity model.

``BIGCity`` wires together the spatiotemporal tokenizer (Sec. IV), the
task-oriented prompt machinery (Sec. V-A), the LoRA-adapted causal backbone
(Sec. V-B) and the general-task heads (Sec. V-C).  It exposes:

* :meth:`forward_prompts` — run a batch of :class:`~repro.core.prompts.Prompt`
  objects through the full pipeline, returning the output tokens ``Z``
  aligned with each prompt's task placeholders;
* :meth:`prompt_loss` — the multi-task loss of Eq. 16 / Eq. 17;
* task-level inference helpers (``predict_next_hop``, ``estimate_travel_time``,
  ``classify_trajectory``, ``trajectory_embeddings``, ``recover_trajectory``,
  ``predict_traffic_state``, ``impute_traffic_state``) used by the evaluation
  harness and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.backbone import BIGCityBackbone
from repro.core.config import BIGCityConfig
from repro.core.heads import GeneralTaskHeads, LabelSpace
from repro.core.prompts import CLAS, REG, Prompt, PromptBuilder, TaskAnchor, TaskType, TextTokenizer
from repro.core.st_unit import STUnitSequence, traffic_series_to_units, trajectory_to_units
from repro.core.tokenizer import SpatioTemporalTokenizer
from repro.data.datasets import CityDataset
from repro.data.timeutils import TimeAxis
from repro.data.traffic_state import TrafficStateSeries
from repro.data.trajectory import Trajectory
from repro.nn import functional as F
from repro.nn import losses
from repro.nn.layers import Dropout
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, fused_enabled, is_grad_enabled, no_grad
from repro.nn import init
from repro.roadnet.network import RoadNetwork
from repro.tasks.decoding import (
    constrained_next_hop_ranking,
    constrained_recovery_choice,
    gap_candidates,
    greedy_next_hop_batch,
    open_gap_candidates,
)


@dataclass
class PromptOutput:
    """Outputs of the backbone for a single prompt."""

    prompt: Prompt
    #: Output tokens ``Z`` aligned with the prompt's placeholders, ``(K, d_model)``.
    task_outputs: Tensor
    #: Mean-pooled hidden state over the data (ST-token) positions, ``(d_model,)``.
    pooled: Tensor


class BIGCity(Module):
    """Multi-task, multi-data-modality spatiotemporal model."""

    def __init__(
        self,
        network: RoadNetwork,
        time_axis: TimeAxis,
        num_users: int,
        config: Optional[BIGCityConfig] = None,
        traffic_states: Optional[TrafficStateSeries] = None,
        num_patterns: int = 2,
    ) -> None:
        super().__init__()
        self.config = config or BIGCityConfig()
        self.network = network
        self.time_axis = time_axis
        rng = np.random.default_rng(self.config.seed + 101)

        self.label_space = LabelSpace(
            num_segments=network.num_segments,
            num_users=max(num_users, 1),
            num_patterns=num_patterns,
        )
        self.text_tokenizer = TextTokenizer()
        self.prompt_builder = PromptBuilder(self.label_space)

        self.tokenizer = SpatioTemporalTokenizer(
            network=network,
            time_axis=time_axis,
            config=self.config,
            traffic_states=traffic_states,
        )
        self.backbone = BIGCityBackbone(
            config=self.config,
            text_vocab_size=self.text_tokenizer.vocab_size,
        )
        regression_dim = traffic_states.num_channels if traffic_states is not None else 1
        self._regression_dim = regression_dim
        self.heads = GeneralTaskHeads(
            d_model=self.config.d_model,
            label_space=self.label_space,
            regression_dim=regression_dim,
            config=self.config,
        )

        #: scale (seconds) used to normalise timestamp-regression targets; one
        #: minute keeps typical per-step travel intervals in a well-conditioned
        #: range for the MSE loss of MLP_t.
        self.time_scale = 60.0
        d_model = self.config.d_model
        self.clas_token = Parameter(init.normal((d_model,), std=0.02, rng=rng))
        self.reg_token = Parameter(init.normal((d_model,), std=0.02, rng=rng))
        self.mask_token = Parameter(init.normal((d_model,), std=0.02, rng=rng))

        self._traffic_states = traffic_states
        if traffic_states is not None:
            flat = traffic_states.values.reshape(-1, traffic_states.num_channels)
            self._traffic_mean = flat.mean(axis=0)
            std = flat.std(axis=0)
            self._traffic_std = np.where(std < 1e-9, 1.0, std)
        else:
            self._traffic_mean = np.zeros(regression_dim)
            self._traffic_std = np.ones(regression_dim)

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dataset(cls, dataset: CityDataset, config: Optional[BIGCityConfig] = None) -> "BIGCity":
        """Build a BIGCity model sized for a :class:`CityDataset`."""
        num_users = max((t.user_id for t in dataset.trajectories), default=0) + 1
        return cls(
            network=dataset.network,
            time_axis=dataset.time_axis,
            num_users=num_users,
            config=config,
            traffic_states=dataset.traffic_states,
        )

    # ------------------------------------------------------------------
    # Sequence helpers
    # ------------------------------------------------------------------
    def sequence_from_trajectory(self, trajectory: Trajectory) -> STUnitSequence:
        return trajectory_to_units(trajectory, self._traffic_states)

    def sequence_from_traffic(self, segment_id: int, start_slice: int, num_slices: int) -> STUnitSequence:
        if self._traffic_states is None:
            raise RuntimeError("this model was built without traffic states")
        return traffic_series_to_units(self._traffic_states, segment_id, start_slice, num_slices)

    def normalise_traffic(self, values: np.ndarray) -> np.ndarray:
        return (np.asarray(values, dtype=np.float64) - self._traffic_mean) / self._traffic_std

    def denormalise_traffic(self, values: np.ndarray) -> np.ndarray:
        return np.asarray(values, dtype=np.float64) * self._traffic_std + self._traffic_mean

    # ------------------------------------------------------------------
    # Prompt assembly and forward pass
    # ------------------------------------------------------------------
    def _assemble_prompt(
        self,
        prompt: Prompt,
        st_tokens: Tensor,
        static_cache: Optional[Tensor] = None,
    ) -> Tuple[List[Tensor], List[int], Tuple[int, int]]:
        """Build the embedded prompt sequence for one prompt.

        Returns ``(rows, task_positions, data_span)`` where ``rows`` is the
        list of per-position embeddings, ``task_positions`` the indices of
        the task placeholders within the assembled sequence, and
        ``data_span`` the ``(start, stop)`` range occupied by the ST tokens.

        Task tokens are the learnable ``[CLAS]`` / ``[REG]`` vectors plus the
        anchor information attached by the prompt builder (the partially
        filled ST tokens of Fig. 3).
        """
        rows: List[Tensor] = []
        if self.config.use_prompts:
            text_ids = self.text_tokenizer.encode(prompt.instruction)
            text_embeddings = self.backbone.embed_text(text_ids)
            for index in range(text_embeddings.shape[0]):
                rows.append(text_embeddings[index])
        data_start = len(rows)
        masked = set(prompt.mask_positions)
        for position in range(st_tokens.shape[0]):
            if position in masked:
                rows.append(self.mask_token)
            else:
                rows.append(st_tokens[position])
        data_stop = len(rows)
        task_positions: List[int] = []
        anchors = prompt.anchors if prompt.anchors else (None,) * len(prompt.placeholders)
        for kind, anchor in zip(prompt.placeholders, anchors):
            task_positions.append(len(rows))
            token = self.clas_token if kind == CLAS else self.reg_token
            if anchor is not None:
                if anchor.kind == "data":
                    token = token + st_tokens[anchor.position]
                else:
                    token = token + self.tokenizer.encode_partial(
                        segment_id=anchor.segment_id,
                        timestamp=anchor.timestamp,
                        static_cache=static_cache,
                    )
            rows.append(token)
        return rows, task_positions, (data_start, data_stop)

    def _check_max_position(self, max_length: int) -> None:
        if max_length > self.config.max_position:
            raise ValueError(
                f"prompt length {max_length} exceeds the backbone's max_position "
                f"{self.config.max_position}; shorten the input or enlarge the config"
            )

    def _stack_prompt_batch(
        self,
        prompts: Sequence[Prompt],
        st_token_list: Sequence[Tensor],
        static_cache: Optional[Tensor],
    ) -> Tuple[Tensor, np.ndarray, List[Tuple[List[int], Tuple[int, int]]]]:
        """Pad and stack per-prompt row lists into one batch (autograd path).

        Each prompt's rows stay individual :class:`Tensor` nodes so gradients
        flow back into the tokenizer, the text embeddings and the task-token
        parameters; inference uses :meth:`_assemble_prompt_batch` instead,
        which writes the identical values into one pre-allocated array.
        """
        assembled: List[Tuple[List[Tensor], List[int], Tuple[int, int]]] = []
        for prompt, st_tokens in zip(prompts, st_token_list):
            assembled.append(self._assemble_prompt(prompt, st_tokens, static_cache=static_cache))

        max_length = max(len(rows) for rows, _, _ in assembled)
        self._check_max_position(max_length)
        zero_row = Tensor(np.zeros(self.config.d_model))
        padded_rows: List[Tensor] = []
        padding_mask = np.zeros((len(prompts), max_length), dtype=bool)
        for batch_index, (rows, _, _) in enumerate(assembled):
            padding = [zero_row] * (max_length - len(rows))
            padded_rows.append(Tensor.stack(rows + padding, axis=0))
            padding_mask[batch_index, len(rows):] = True
        batch_embeddings = Tensor.stack(padded_rows, axis=0)
        layouts = [(task_positions, data_span) for _, task_positions, data_span in assembled]
        return batch_embeddings, padding_mask, layouts

    def _assemble_prompt_batch(
        self,
        prompts: Sequence[Prompt],
        st_token_list: Sequence[Tensor],
        static_cache: Optional[Tensor],
    ) -> Tuple[Tensor, np.ndarray, List[Tuple[List[int], Tuple[int, int]]]]:
        """Assemble ``N`` prompts straight into one pre-allocated padded buffer.

        Inference twin of :meth:`_stack_prompt_batch`: every embedding row is
        written in place into a single ``(N, L_max, d_model)`` array instead
        of building one Python list of row tensors per prompt plus two
        ``Tensor.stack`` allocations each.  Text instructions are embedded
        once per distinct string (evaluation batches share one template).
        The values written are exactly the arrays the stacking path stacks,
        so both paths feed the backbone bit-identical batches.
        """
        text_cache: Dict[str, np.ndarray] = {}
        text_list: List[Optional[np.ndarray]] = []
        lengths: List[int] = []
        for prompt, st_tokens in zip(prompts, st_token_list):
            text: Optional[np.ndarray] = None
            if self.config.use_prompts:
                text = text_cache.get(prompt.instruction)
                if text is None:
                    text_ids = self.text_tokenizer.encode(prompt.instruction)
                    text = self.backbone.embed_text(text_ids).data
                    text_cache[prompt.instruction] = text
            text_list.append(text)
            text_length = 0 if text is None else int(text.shape[0])
            lengths.append(text_length + int(st_tokens.shape[0]) + len(prompt.placeholders))

        max_length = max(lengths)
        self._check_max_position(max_length)
        d_model = self.config.d_model
        # The stacking path pads with policy-dtype zeros; mirror its dtype
        # promotion so mixed-precision inputs land in the same array dtype.
        dtype = np.result_type(
            Tensor.zeros(0).dtype,
            self.clas_token.data.dtype,
            *[st_tokens.data.dtype for st_tokens in st_token_list],
        )
        buffer = np.zeros((len(prompts), max_length, d_model), dtype=dtype)
        padding_mask = np.zeros((len(prompts), max_length), dtype=bool)
        layouts: List[Tuple[List[int], Tuple[int, int]]] = []
        for index, (prompt, st_tokens, text) in enumerate(zip(prompts, st_token_list, text_list)):
            cursor = 0
            if text is not None:
                buffer[index, : text.shape[0]] = text
                cursor = int(text.shape[0])
            data_start = cursor
            st_data = st_tokens.data
            data_stop = cursor + int(st_data.shape[0])
            buffer[index, data_start:data_stop] = st_data
            for position in prompt.mask_positions:
                buffer[index, data_start + position] = self.mask_token.data
            cursor = data_stop
            task_positions = list(range(cursor, cursor + len(prompt.placeholders)))
            anchors = prompt.anchors if prompt.anchors else (None,) * len(prompt.placeholders)
            for kind, anchor in zip(prompt.placeholders, anchors):
                token = (self.clas_token if kind == CLAS else self.reg_token).data
                if anchor is not None:
                    if anchor.kind == "data":
                        token = token + st_data[anchor.position]
                    else:
                        token = token + self.tokenizer.encode_partial(
                            segment_id=anchor.segment_id,
                            timestamp=anchor.timestamp,
                            static_cache=static_cache,
                        ).data
                buffer[index, cursor] = token
                cursor += 1
            padding_mask[index, cursor:] = True
            layouts.append((task_positions, (data_start, data_stop)))
        return Tensor(buffer), padding_mask, layouts

    def forward_prompts(self, prompts: Sequence[Prompt], traffic_override: Optional[np.ndarray] = None) -> List[PromptOutput]:
        """Run a batch of prompts through tokenizer, backbone and gather ``Z``."""
        if not prompts:
            return []
        sequences = [p.sequence for p in prompts]
        masks = [p.time_feature_mask for p in prompts]
        st_token_list = self.tokenizer.encode_batch(sequences, time_feature_masks=masks, traffic_override=traffic_override)

        needs_static = any(
            anchor is not None and anchor.kind == "partial" and anchor.segment_id is not None
            for prompt in prompts
            for anchor in (prompt.anchors or ())
        )
        static_cache = self.tokenizer.static_representations() if needs_static else None

        if is_grad_enabled():
            batch_embeddings, padding_mask, layouts = self._stack_prompt_batch(
                prompts, st_token_list, static_cache
            )
        else:
            batch_embeddings, padding_mask, layouts = self._assemble_prompt_batch(
                prompts, st_token_list, static_cache
            )

        hidden = self.backbone(batch_embeddings, padding_mask=padding_mask)

        d_model = self.config.d_model
        if fused_enabled():
            return self._collect_outputs_fused(prompts, layouts, hidden, d_model)
        outputs: List[PromptOutput] = []
        for batch_index, (prompt, (task_positions, data_span)) in enumerate(zip(prompts, layouts)):
            if task_positions:
                task_rows = [hidden[batch_index, position] for position in task_positions]
                task_outputs = Tensor.stack(task_rows, axis=0)
            else:
                task_outputs = Tensor(np.zeros((0, d_model)))
            if data_span[1] > data_span[0]:
                data_rows = [hidden[batch_index, position] for position in range(data_span[0], data_span[1])]
                pooled = Tensor.stack(data_rows, axis=0).mean(axis=0)
            else:
                pooled = Tensor(np.zeros(d_model))
            outputs.append(PromptOutput(prompt=prompt, task_outputs=task_outputs, pooled=pooled))
        return outputs

    def _collect_outputs_fused(self, prompts, layouts, hidden: Tensor, d_model: int) -> List[PromptOutput]:
        """Pull task/data rows out of the backbone output with TWO gather nodes.

        All prompts' task placeholders (and all data spans) are gathered in
        one :func:`~repro.nn.functional.gather_rows` call each, then sliced
        per prompt; the per-prompt slices backpropagate into the small
        ``(rows, d_model)`` gather buffer, so the backward allocates two
        hidden-sized buffers per batch instead of two per prompt.
        """
        task_batch: List[int] = []
        task_rows: List[int] = []
        task_slices: List[Tuple[int, int]] = []
        data_batch: List[int] = []
        data_rows: List[int] = []
        data_slices: List[Tuple[int, int]] = []
        for batch_index, (task_positions, data_span) in enumerate(layouts):
            start = len(task_rows)
            task_batch.extend([batch_index] * len(task_positions))
            task_rows.extend(task_positions)
            task_slices.append((start, len(task_rows)))
            start = len(data_rows)
            span = range(data_span[0], data_span[1])
            data_batch.extend([batch_index] * len(span))
            data_rows.extend(span)
            data_slices.append((start, len(data_rows)))
        all_task = F.gather_rows(hidden, task_batch, task_rows) if task_rows else None
        all_data = F.gather_rows(hidden, data_batch, data_rows) if data_rows else None

        outputs: List[PromptOutput] = []
        for prompt, (task_start, task_stop), (data_start, data_stop) in zip(
            prompts, task_slices, data_slices
        ):
            if task_stop > task_start:
                task_outputs = all_task[task_start:task_stop]
            else:
                task_outputs = Tensor(np.zeros((0, d_model)))
            if data_stop > data_start:
                pooled = all_data[data_start:data_stop].mean(axis=0)
            else:
                pooled = Tensor(np.zeros(d_model))
            outputs.append(PromptOutput(prompt=prompt, task_outputs=task_outputs, pooled=pooled))
        return outputs

    # ------------------------------------------------------------------
    # Losses
    # ------------------------------------------------------------------
    def prompt_loss(self, prompts: Sequence[Prompt], traffic_override: Optional[np.ndarray] = None) -> Tuple[Tensor, Dict[str, float]]:
        """Multi-task loss over a batch of prompts (Eq. 16 for stage 1, Eq. 17 for stage 2).

        Returns the scalar loss tensor plus a breakdown dictionary with float
        values (for logging).
        """
        outputs = self.forward_prompts(prompts, traffic_override=traffic_override)
        total: Optional[Tensor] = None
        breakdown = {"clas": 0.0, "reg": 0.0, "tim": 0.0, "count": 0.0}

        def accumulate(term: Optional[Tensor], weight: float, key: str) -> None:
            nonlocal total
            if term is None:
                return
            weighted = term * weight
            total = weighted if total is None else total + weighted
            breakdown[key] += float(term.item())
            breakdown["count"] += 1.0

        for output in outputs:
            prompt = output.prompt
            clas_term = self._classification_loss(prompt, output)
            reg_term = self._regression_loss(prompt, output)
            tim_term = self._timestamp_loss(prompt, output)
            accumulate(clas_term, 1.0, "clas")
            accumulate(reg_term, self.config.lambda_reg, "reg")
            accumulate(tim_term, self.config.lambda_tim, "tim")

        if total is None:
            total = Tensor(np.zeros(()), requires_grad=False)
        else:
            total = total * (1.0 / max(len(outputs), 1))
        breakdown["total"] = float(total.item())
        return total, breakdown

    def _clas_indices(self, prompt: Prompt) -> List[int]:
        return [i for i, kind in enumerate(prompt.placeholders) if kind == CLAS]

    def _reg_indices(self, prompt: Prompt) -> List[int]:
        return [i for i, kind in enumerate(prompt.placeholders) if kind == REG]

    def _classification_loss(self, prompt: Prompt, output: PromptOutput) -> Optional[Tensor]:
        indices = self._clas_indices(prompt)
        targets = [t for t in prompt.classification_targets if t >= 0]
        if not indices or not targets or len(targets) != len(indices):
            return None
        rows = Tensor.stack([output.task_outputs[i] for i in indices], axis=0)
        logits = self.heads.classification_logits(rows)
        return losses.cross_entropy(logits, np.asarray(targets, dtype=np.int64))

    def _regression_loss(self, prompt: Prompt, output: PromptOutput) -> Optional[Tensor]:
        indices = self._reg_indices(prompt)
        if not indices or not prompt.regression_targets:
            return None
        targets = [np.asarray(t, dtype=np.float64) for t in prompt.regression_targets]
        if any(t.size == 0 for t in targets):
            return None
        if len(targets) != len(indices):
            return None
        rows = Tensor.stack([output.task_outputs[i] for i in indices], axis=0)
        predictions = self.heads.regression_prediction(rows)
        normalised_targets = np.stack([self.normalise_traffic(t) for t in targets])
        return losses.mse_loss(predictions, normalised_targets)

    def _timestamp_loss(self, prompt: Prompt, output: PromptOutput) -> Optional[Tensor]:
        indices = self._reg_indices(prompt)
        if not indices or not prompt.timestamp_targets:
            return None
        if len(prompt.timestamp_targets) != len(indices):
            return None
        rows = Tensor.stack([output.task_outputs[i] for i in indices], axis=0)
        predictions = self.heads.timestamp_prediction(rows).reshape(len(indices))
        targets = np.asarray(prompt.timestamp_targets, dtype=np.float64) / self.time_scale
        return losses.mse_loss(predictions, targets)

    # ------------------------------------------------------------------
    # Inference helpers (all run without building a gradient graph)
    # ------------------------------------------------------------------
    def predict_next_hop(
        self,
        trajectories: Sequence[Trajectory],
        top_k: int = 5,
        constrain_to_network: bool = True,
    ) -> List[np.ndarray]:
        """Ranked candidate next segments for each trajectory (best first).

        With ``constrain_to_network=True`` (the default, matching the paper's
        road-network scenario) graph successors of the last observed segment
        are ranked ahead of unreachable segments; set it to ``False`` to rank
        the raw segment logits.
        """
        prompts = [self.prompt_builder.next_hop(self.sequence_from_trajectory(t)) for t in trajectories]
        with no_grad():
            outputs = self.forward_prompts(prompts)
            rankings = []
            for trajectory, output in zip(trajectories, outputs):
                logits = self.heads.classification_logits(output.task_outputs, family="segment").data[0]
                if constrain_to_network:
                    # The prompt predicts the hop after the second-to-last
                    # sample (the builder strips the final sample itself), so
                    # the constraint anchors on that segment.
                    anchor = int(trajectory.segments[-2]) if len(trajectory) >= 2 else int(trajectory.segments[-1])
                    rankings.append(
                        constrained_next_hop_ranking(logits, anchor, self.network, top_k=top_k)
                    )
                else:
                    rankings.append(np.argsort(-logits)[:top_k])
        return rankings

    def rollout_next_hops(
        self,
        trajectory: Trajectory,
        steps: int = 1,
        use_cache: bool = True,
        constrain_to_network: bool = True,
    ) -> np.ndarray:
        """Autoregressively extend a trajectory by ``steps`` segments.

        Each step ranks the next segment with the segment-classification head,
        appends the chosen segment as a partially-filled ST token (plus a fresh
        ``[CLAS]`` placeholder anchored on it) and decodes again.  With
        ``use_cache=True`` the backbone keeps per-layer :class:`KVCache`
        buffers, so a step pushes only the two new positions through the
        transformer — O(prefix) work — instead of re-encoding the whole prompt
        from scratch — O(prefix²).  ``use_cache=False`` keeps the re-encoding
        path available for equivalence tests and benchmarking; both paths see
        byte-identical input sequences and therefore produce identical logits.

        This is the single-trajectory view of :meth:`rollout_next_hops_batch`.
        """
        return self.rollout_next_hops_batch(
            [trajectory],
            steps=steps,
            use_cache=use_cache,
            constrain_to_network=constrain_to_network,
        )[0]

    def rollout_next_hops_batch(
        self,
        trajectories: Sequence[Trajectory],
        steps: int = 1,
        use_cache: bool = True,
        constrain_to_network: bool = True,
    ) -> List[np.ndarray]:
        """Autoregressively extend ``N`` trajectories through ONE padded batch.

        All prompts are assembled into a single right-padded batch (padded key
        positions are excluded from attention, so a row never sees another
        row's padding) and every decode step pushes one ``(N, 2, d_model)``
        slab through the KV-cached backbone instead of ``N`` separate
        2-token forwards.  Because rows have different prompt lengths, the two
        new tokens of row ``i`` live at *physical* cache slots shared by the
        whole batch but carry row ``i``'s own positional indices
        (``position_ids``) — logically each row continues its own sequence
        exactly as in the per-trajectory rollout, and the chosen segments
        match :meth:`rollout_next_hops` trajectory-for-trajectory (see
        ``tests/test_core_model.py``).

        Returns one ``(steps,)`` array of segment ids per input trajectory.
        """
        if steps < 1:
            raise ValueError("steps must be >= 1")
        if not trajectories:
            return []
        sequences = [self.sequence_from_trajectory(t) for t in trajectories]
        intervals: List[float] = []
        last_times: List[float] = []
        for sequence in sequences:
            timestamps = np.asarray(sequence.timestamps, dtype=np.float64)
            intervals.append(
                float(np.diff(timestamps).mean()) if len(timestamps) >= 2 else self.time_scale
            )
            last_times.append(float(timestamps[-1]))
        current = np.asarray([int(s.segment_ids[-1]) for s in sequences], dtype=np.int64)
        network = self.network if constrain_to_network else None
        batch_size = len(sequences)
        d_model = self.config.d_model

        with no_grad():
            st_token_list = self.tokenizer.encode_batch(sequences)
            static_cache = (
                self.tokenizer.static_representations()
                if self.tokenizer.has_static_encoder
                else None
            )
            # Canonical next-hop prompt assembly per row (same layout the
            # segment head was trained on); only the per-step appends below
            # are decode-specific.
            rows_list: List[List[Tensor]] = []
            for sequence, st_tokens in zip(sequences, st_token_list):
                prompt = Prompt(
                    task=TaskType.NEXT_HOP,
                    sequence=sequence,
                    placeholders=(CLAS,),
                    anchors=(TaskAnchor(kind="data", position=len(sequence) - 1),),
                    metadata={"source_id": sequence.source_id},
                )
                rows, _, _ = self._assemble_prompt(prompt, st_tokens, static_cache=static_cache)
                rows_list.append(rows)
            lengths = np.asarray([len(rows) for rows in rows_list], dtype=np.int64)

            def padded_batch() -> Tuple[Tensor, Optional[np.ndarray]]:
                max_length = int(lengths.max())
                zero_row = Tensor(np.zeros(d_model))
                padded: List[Tensor] = []
                mask = np.zeros((batch_size, max_length), dtype=bool)
                for index, rows in enumerate(rows_list):
                    padding = [zero_row] * (max_length - len(rows))
                    padded.append(Tensor.stack(rows + padding, axis=0))
                    mask[index, len(rows):] = True
                stacked = Tensor.stack(padded, axis=0)
                return stacked, (mask if mask.any() else None)

            batch, pad_mask = padded_batch()
            prefill_length = batch.shape[1]
            caches = self.backbone.new_caches() if use_cache else None
            hidden = self.backbone(batch, padding_mask=pad_mask, caches=caches)

            def task_logits(task_positions: np.ndarray) -> np.ndarray:
                rows = F.gather_rows(hidden, np.arange(batch_size), task_positions)
                return self.heads.classification_logits(rows, family="segment").data

            chosen: List[np.ndarray] = []
            logits = task_logits(lengths - 1)
            for step in range(steps):
                current = greedy_next_hop_batch(logits, current, network)
                chosen.append(current.copy())
                if step == steps - 1:
                    break
                data_tokens = [
                    self.tokenizer.encode_partial(
                        segment_id=int(segment),
                        timestamp=last_times[index] + (step + 1) * intervals[index],
                        static_cache=static_cache,
                    )
                    for index, segment in enumerate(current)
                ]
                if use_cache:
                    new_rows = Tensor.stack(
                        [
                            Tensor.stack([token, self.clas_token + token], axis=0)
                            for token in data_tokens
                        ],
                        axis=0,
                    )
                    # Row i's new tokens continue its own sequence: positions
                    # L_i + 2*step + {0, 1}, while the physical cache slot is
                    # shared batch-wide; padded key positions stay masked.
                    positions = (lengths + 2 * step)[:, None] + np.arange(2)[None, :]
                    kv_length = caches[0].length + 2
                    step_mask: Optional[np.ndarray] = None
                    if pad_mask is not None:
                        step_mask = np.zeros((batch_size, kv_length), dtype=bool)
                        step_mask[:, :prefill_length] = pad_mask
                    hidden = self.backbone(
                        new_rows,
                        padding_mask=step_mask,
                        caches=caches,
                        position_ids=positions,
                    )
                    logits = self.heads.classification_logits(
                        hidden[:, 1], family="segment"
                    ).data
                else:
                    for index, token in enumerate(data_tokens):
                        rows_list[index].extend([token, self.clas_token + token])
                    lengths = lengths + 2
                    batch, pad_mask_step = padded_batch()
                    hidden = self.backbone(batch, padding_mask=pad_mask_step)
                    logits = task_logits(lengths - 1)
        stacked = np.stack(chosen, axis=1)
        return [stacked[index] for index in range(batch_size)]

    def estimate_travel_time(self, trajectories: Sequence[Trajectory]) -> np.ndarray:
        """Predicted total travel time in seconds for each trajectory."""
        prompts = [self.prompt_builder.travel_time(self.sequence_from_trajectory(t)) for t in trajectories]
        with no_grad():
            outputs = self.forward_prompts(prompts)
            estimates = []
            for output in outputs:
                intervals = self.heads.timestamp_prediction(output.task_outputs).data.reshape(-1)
                estimates.append(float(np.clip(intervals, 0.0, None).sum() * self.time_scale))
        return np.asarray(estimates)

    def classify_trajectory(self, trajectories: Sequence[Trajectory], target: str = "user") -> np.ndarray:
        """Predicted class index (within the chosen family) for each trajectory."""
        family = "user" if target == "user" else "pattern"
        prompts = [
            self.prompt_builder.classification(self.sequence_from_trajectory(t), target=target)
            for t in trajectories
        ]
        with no_grad():
            outputs = self.forward_prompts(prompts)
            predictions = []
            for output in outputs:
                logits = self.heads.classification_logits(output.task_outputs, family=family).data[0]
                predictions.append(int(np.argmax(logits)))
        return np.asarray(predictions, dtype=np.int64)

    def classification_scores(self, trajectories: Sequence[Trajectory], target: str = "user") -> np.ndarray:
        """Softmax scores over the chosen family (used for AUC on the binary task)."""
        family = "user" if target == "user" else "pattern"
        if not trajectories:
            restriction = self.heads.label_space.family_slice(family)
            return np.zeros((0, restriction.stop - restriction.start))
        prompts = [
            self.prompt_builder.classification(self.sequence_from_trajectory(t), target=target)
            for t in trajectories
        ]
        with no_grad():
            outputs = self.forward_prompts(prompts)
            scores = []
            for output in outputs:
                logits = self.heads.classification_logits(output.task_outputs, family=family).data[0]
                exp = np.exp(logits - logits.max())
                scores.append(exp / exp.sum())
        return np.stack(scores)

    def trajectory_embeddings(self, trajectories: Sequence[Trajectory], batch_size: int = 16) -> np.ndarray:
        """Dense embeddings used for most-similar trajectory search."""
        if not trajectories:
            return np.zeros((0, self.config.d_model))
        embeddings = []
        with no_grad():
            for start in range(0, len(trajectories), batch_size):
                chunk = trajectories[start : start + batch_size]
                prompts = [self.prompt_builder.similarity(self.sequence_from_trajectory(t)) for t in chunk]
                outputs = self.forward_prompts(prompts)
                for output in outputs:
                    embeddings.append(output.pooled.data.copy())
        return np.stack(embeddings)

    def recover_trajectory(
        self,
        trajectory: Trajectory,
        kept_indices: Sequence[int],
        constrain_to_network: bool = True,
    ) -> np.ndarray:
        """Predicted segment ids at the masked positions of a low-rate trajectory.

        With ``constrain_to_network=True`` each masked position is decoded
        among the segments reachable from the surrounding observed samples
        (map-constrained decoding, as in the recovery baselines); with
        ``False`` the raw segment logits are argmax-decoded.  A masked
        position before the first (or after the last) kept sample is decoded
        against its nearest kept neighbour on the open side.

        This is the single-trajectory view of
        :meth:`recover_trajectories_batch`.
        """
        return self.recover_trajectories_batch(
            [trajectory], [kept_indices], constrain_to_network=constrain_to_network
        )[0]

    def recover_trajectories_batch(
        self,
        trajectories: Sequence[Trajectory],
        kept_indices_list: Sequence[Sequence[int]],
        constrain_to_network: bool = True,
    ) -> List[np.ndarray]:
        """Recover the masked positions of ``N`` trajectories in ONE padded batch.

        All recovery prompts run through a single :meth:`forward_prompts`
        call (one right-padded batch, assembled into a pre-allocated array on
        the inference path), then each trajectory's logits are decoded with
        the same map-constrained rule the serial method uses — so the results
        match :meth:`recover_trajectory` trajectory-for-trajectory,
        bit-for-bit.  Returns one ``(num_missing,)`` int64 array per input.
        """
        if len(trajectories) != len(kept_indices_list):
            raise ValueError(
                f"got {len(trajectories)} trajectories but {len(kept_indices_list)} kept-index sets"
            )
        if not trajectories:
            return []
        prompts = [
            self.prompt_builder.recovery(self.sequence_from_trajectory(t), kept)
            for t, kept in zip(trajectories, kept_indices_list)
        ]
        with no_grad():
            outputs = self.forward_prompts(prompts)
            results: List[np.ndarray] = []
            for trajectory, kept_indices, output in zip(trajectories, kept_indices_list, outputs):
                logits = self.heads.classification_logits(output.task_outputs, family="segment").data
                results.append(
                    self._decode_recovery(trajectory, kept_indices, logits, constrain_to_network)
                )
        return results

    def _decode_recovery(
        self,
        trajectory: Trajectory,
        kept_indices: Sequence[int],
        logits: np.ndarray,
        constrain_to_network: bool,
    ) -> np.ndarray:
        """Decode one trajectory's per-mask segment logits (shared serial/batch)."""
        if not constrain_to_network:
            return np.argmax(logits, axis=-1).astype(np.int64)
        kept = np.asarray(sorted(set(int(i) for i in kept_indices)), dtype=np.int64)
        missing = np.setdiff1d(np.arange(len(trajectory)), kept)
        recovered = []
        for row, position in zip(logits, missing):
            earlier = kept[kept < position]
            later = kept[kept > position]
            if earlier.size and later.size:
                previous_kept = int(earlier.max())
                next_kept = int(later.min())
                candidates = gap_candidates(
                    self.network,
                    previous_segment=int(trajectory.segments[previous_kept]),
                    next_segment=int(trajectory.segments[next_kept]),
                    gap_length=next_kept - previous_kept - 1,
                )
            elif later.size:
                # Masked position precedes the first kept sample: constrain
                # against the nearest kept neighbour on the open side.
                anchor = int(later.min())
                candidates = open_gap_candidates(
                    self.network,
                    anchor_segment=int(trajectory.segments[anchor]),
                    gap_length=anchor - int(position),
                    before=True,
                )
            else:
                # Masked position follows the last kept sample.
                anchor = int(earlier.max())
                candidates = open_gap_candidates(
                    self.network,
                    anchor_segment=int(trajectory.segments[anchor]),
                    gap_length=int(position) - anchor,
                    before=False,
                )
            recovered.append(constrained_recovery_choice(row, candidates))
        return np.asarray(recovered, dtype=np.int64)

    def predict_traffic_state(self, segment_id: int, start_slice: int, history: int, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` traffic states of one segment (denormalised).

        This is the single-case view of :meth:`predict_traffic_states_batch`.
        """
        return self.predict_traffic_states_batch([(segment_id, start_slice, history, horizon)])[0]

    def predict_traffic_states_batch(
        self, cases: Sequence[Tuple[int, int, int, int]]
    ) -> List[np.ndarray]:
        """Forecast ``N`` traffic-prediction cases through ONE padded batch.

        ``cases`` is a sequence of ``(segment_id, start_slice, history,
        horizon)`` tuples; histories and horizons may differ between cases —
        prompt padding absorbs the raggedness.  Returns one denormalised
        ``(horizon, channels)`` array per case, bit-for-bit identical to
        calling :meth:`predict_traffic_state` case by case.
        """
        if not cases:
            return []
        prompts = []
        for segment_id, start_slice, history, horizon in cases:
            history_sequence = self.sequence_from_traffic(int(segment_id), int(start_slice), int(history))
            dummy_targets = np.zeros((int(horizon), self._regression_dim))
            prompts.append(
                self.prompt_builder.traffic_prediction(
                    history_sequence, dummy_targets, multi_step=int(horizon) > 1
                )
            )
        with no_grad():
            outputs = self.forward_prompts(prompts)
            return [
                self.denormalise_traffic(self.heads.regression_prediction(output.task_outputs).data)
                for output in outputs
            ]

    def impute_traffic_state(
        self,
        segment_id: int,
        start_slice: int,
        num_slices: int,
        masked_positions: Sequence[int],
        traffic_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Impute masked traffic states of one segment (denormalised).

        This is the single-case view of :meth:`impute_traffic_states_batch`.
        """
        return self.impute_traffic_states_batch(
            [(segment_id, start_slice, num_slices, masked_positions)],
            traffic_override=traffic_override,
        )[0]

    def impute_traffic_states_batch(
        self,
        cases: Sequence[Tuple[int, int, int, Sequence[int]]],
        traffic_override: Optional[np.ndarray] = None,
    ) -> List[np.ndarray]:
        """Impute ``N`` traffic-imputation cases through ONE padded batch.

        ``cases`` is a sequence of ``(segment_id, start_slice, num_slices,
        masked_positions)`` tuples sharing one optional ``traffic_override``
        (the evaluator masks the whole tensor once for all cases).  Returns
        one denormalised ``(len(masked), channels)`` array per case,
        bit-for-bit identical to the serial :meth:`impute_traffic_state`.
        """
        if not cases:
            return []
        prompts = [
            self.prompt_builder.traffic_imputation(
                self.sequence_from_traffic(int(segment_id), int(start_slice), int(num_slices)),
                masked_positions,
            )
            for segment_id, start_slice, num_slices, masked_positions in cases
        ]
        with no_grad():
            outputs = self.forward_prompts(prompts, traffic_override=traffic_override)
            return [
                self.denormalise_traffic(self.heads.regression_prediction(output.task_outputs).data)
                for output in outputs
            ]

    # ------------------------------------------------------------------
    def trainable_parameters(self):
        return [p for p in self.parameters() if p.requires_grad]

    def parameter_summary(self) -> Dict[str, int]:
        """Parameter counts per component (used by the efficiency experiments)."""
        return {
            "tokenizer": self.tokenizer.num_parameters(),
            "backbone_total": self.backbone.total_parameter_count(),
            "backbone_trainable": self.backbone.trainable_parameter_count(),
            "heads": self.heads.num_parameters(),
            "total": self.num_parameters(),
            "trainable": self.num_parameters(trainable_only=True),
        }

    def forward(self, prompts: Sequence[Prompt]) -> List[PromptOutput]:
        return self.forward_prompts(prompts)
