"""ST-units: the unified representation of trajectories and traffic states.

Sec. IV-A of the paper defines the basic spatiotemporal unit as the triple
``U_{i, tau} = (e^(s)_i, e^(d)_{i, t_tau}, iota_tau)`` — a road segment with
its traffic state sampled at a specific time.  Both trajectories (Eq. 3) and
traffic-state series (Eq. 2) become sequences of such units, which is what
lets a single model process both modalities.

For efficient batch processing the sequence form is array-based:
:class:`STUnitSequence` stores segment ids, timestamps and (optionally)
dynamic features for all units of one sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.data.timeutils import TimeAxis, timestamp_features
from repro.data.traffic_state import TrafficStateSeries
from repro.data.trajectory import Trajectory


@dataclass(frozen=True)
class STUnit:
    """A single spatiotemporal unit ``(segment, traffic state, sampling time)``."""

    segment_id: int
    timestamp: float
    static_features: np.ndarray
    dynamic_features: Optional[np.ndarray]
    time_features: np.ndarray

    @property
    def has_dynamic(self) -> bool:
        return self.dynamic_features is not None


@dataclass
class STUnitSequence:
    """A sequence of ST-units representing a trajectory or a traffic-state series.

    Attributes
    ----------
    segment_ids:
        ``(L,)`` road-segment id of every unit.
    timestamps:
        ``(L,)`` sampling timestamps (seconds).
    dynamic_features:
        ``(L, D_d)`` dynamic features, or ``None`` when the dataset has no
        traffic states (the paper sets ``e^(d) = NULL`` in that case).
    kind:
        ``"trajectory"`` or ``"traffic_state"`` — only used for bookkeeping,
        the downstream model treats both identically.
    source_id:
        Trajectory id or segment id of the originating object.
    user_id / label:
        Supervision carried along for the trajectory tasks.
    """

    segment_ids: np.ndarray
    timestamps: np.ndarray
    dynamic_features: Optional[np.ndarray]
    kind: str
    source_id: int = -1
    user_id: int = -1
    label: int = -1

    def __post_init__(self) -> None:
        self.segment_ids = np.asarray(self.segment_ids, dtype=np.int64)
        self.timestamps = np.asarray(self.timestamps, dtype=np.float64)
        if self.segment_ids.shape != self.timestamps.shape:
            raise ValueError("segment_ids and timestamps must align")
        if self.segment_ids.ndim != 1 or len(self.segment_ids) < 1:
            raise ValueError("an ST-unit sequence must be a non-empty 1-D sequence")
        if self.dynamic_features is not None:
            self.dynamic_features = np.asarray(self.dynamic_features, dtype=np.float64)
            if self.dynamic_features.shape[0] != len(self.segment_ids):
                raise ValueError("dynamic features must have one row per unit")
        if self.kind not in ("trajectory", "traffic_state"):
            raise ValueError("kind must be 'trajectory' or 'traffic_state'")

    def __len__(self) -> int:
        return len(self.segment_ids)

    @property
    def has_dynamic(self) -> bool:
        return self.dynamic_features is not None

    def time_features(self, slice_seconds: float = 1800.0) -> np.ndarray:
        """Per-unit timestamp feature vectors ``iota_tau`` (Definition 4)."""
        return np.stack([timestamp_features(t, slice_seconds) for t in self.timestamps])

    def time_intervals(self) -> np.ndarray:
        """Per-unit interval ``delta tau_l = tau_l - tau_{l-1}`` with a leading zero."""
        intervals = np.zeros(len(self), dtype=np.float64)
        if len(self) > 1:
            intervals[1:] = np.diff(self.timestamps)
        return intervals

    def slice(self, start: int, stop: int) -> "STUnitSequence":
        return STUnitSequence(
            segment_ids=self.segment_ids[start:stop].copy(),
            timestamps=self.timestamps[start:stop].copy(),
            dynamic_features=None if self.dynamic_features is None else self.dynamic_features[start:stop].copy(),
            kind=self.kind,
            source_id=self.source_id,
            user_id=self.user_id,
            label=self.label,
        )

    def take(self, indices: Sequence[int]) -> "STUnitSequence":
        indices = np.asarray(indices, dtype=np.int64)
        return STUnitSequence(
            segment_ids=self.segment_ids[indices].copy(),
            timestamps=self.timestamps[indices].copy(),
            dynamic_features=None if self.dynamic_features is None else self.dynamic_features[indices].copy(),
            kind=self.kind,
            source_id=self.source_id,
            user_id=self.user_id,
            label=self.label,
        )

    def units(self, static_features: np.ndarray, slice_seconds: float = 1800.0) -> List[STUnit]:
        """Materialise the sequence into individual :class:`STUnit` objects."""
        time_feats = self.time_features(slice_seconds)
        out = []
        for position in range(len(self)):
            segment = int(self.segment_ids[position])
            dynamic = None if self.dynamic_features is None else self.dynamic_features[position]
            out.append(
                STUnit(
                    segment_id=segment,
                    timestamp=float(self.timestamps[position]),
                    static_features=static_features[segment],
                    dynamic_features=dynamic,
                    time_features=time_feats[position],
                )
            )
        return out


def trajectory_to_units(
    trajectory: Trajectory,
    traffic_states: Optional[TrafficStateSeries] = None,
) -> STUnitSequence:
    """ST-unit sequence of a trajectory (Eq. 3).

    When ``traffic_states`` is provided, the dynamic feature of each unit is
    the traffic state of the visited segment at the time slice containing the
    sample's timestamp; otherwise dynamic features are ``NULL`` as in the
    paper's BJ dataset.
    """
    dynamic = None
    if traffic_states is not None:
        dynamic = np.stack(
            [traffic_states.at(segment, timestamp) for segment, timestamp in zip(trajectory.segments, trajectory.timestamps)]
        )
    return STUnitSequence(
        segment_ids=trajectory.segment_array(),
        timestamps=trajectory.timestamp_array(),
        dynamic_features=dynamic,
        kind="trajectory",
        source_id=trajectory.trajectory_id,
        user_id=trajectory.user_id,
        label=-1 if trajectory.label is None else int(trajectory.label),
    )


def traffic_series_to_units(
    traffic_states: TrafficStateSeries,
    segment_id: int,
    start_slice: int = 0,
    num_slices: Optional[int] = None,
) -> STUnitSequence:
    """ST-unit sequence of one segment's traffic-state series (Eq. 2).

    Every unit refers to the same road segment; the timestamp of unit ``t``
    is the start time of time slice ``t`` and its dynamic feature is the
    traffic state of that slice.
    """
    axis = traffic_states.time_axis
    if num_slices is None:
        num_slices = axis.num_slices - start_slice
    if start_slice < 0 or start_slice + num_slices > axis.num_slices:
        raise ValueError("requested slice range is outside the time axis")
    slices = np.arange(start_slice, start_slice + num_slices)
    timestamps = np.array([axis.slice_start(int(t)) for t in slices])
    dynamic = traffic_states.segment_series(segment_id)[slices]
    return STUnitSequence(
        segment_ids=np.full(num_slices, segment_id, dtype=np.int64),
        timestamps=timestamps,
        dynamic_features=dynamic,
        kind="traffic_state",
        source_id=segment_id,
    )
