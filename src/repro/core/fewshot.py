"""Few-shot and zero-shot cross-city adaptation.

Section VII-C of the paper shows that a backbone pre-trained on the large BJ
dataset transfers to XA/CD with only the tokenizer's final MLP fine-tuned.
The natural extension (and the promise of "ST foundation models" the paper
positions itself in) is to ask how little target-city data that fine-tuning
step actually needs.  This module provides that machinery:

* :func:`limit_training_trajectories` — restrict a dataset's *training* split
  to ``shots`` trajectories (optionally balanced across users) while keeping
  validation/test untouched, so evaluation stays comparable.
* :func:`few_shot_transfer` — transfer a trained backbone to a target city
  and fine-tune on only ``shots`` trajectories.
* :func:`zero_shot_transfer` — transfer with no target-city fine-tuning at
  all (the tokenizer is still built from the target road network, which
  requires no labels).
* :func:`evaluate_adaptation` — score an adapted model on the three headline
  transfer tasks of Table VI (travel time, next hop, classification).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import BIGCity
from repro.core.prompts import TaskType
from repro.core.training import EpochLog, TrainingConfig
from repro.core.transfer import transfer_backbone
from repro.data.datasets import CityDataset, DatasetSplits
from repro.tasks.classification import TrajectoryClassificationEvaluator
from repro.tasks.next_hop import NextHopEvaluator
from repro.tasks.travel_time import TravelTimeEvaluator

__all__ = [
    "limit_training_trajectories",
    "few_shot_transfer",
    "zero_shot_transfer",
    "evaluate_adaptation",
    "AdaptationResult",
]


@dataclass
class AdaptationResult:
    """An adapted model together with how it was produced."""

    model: BIGCity
    shots: int
    finetune_logs: List[EpochLog]
    dataset_name: str


def limit_training_trajectories(
    dataset: CityDataset,
    shots: int,
    seed: int = 0,
    balance_users: bool = True,
) -> CityDataset:
    """Return a copy of ``dataset`` whose training split has ``shots`` items.

    Validation and test splits are left untouched so that models adapted on
    different shot counts are evaluated on identical data.  When
    ``balance_users`` is set the kept trajectories are spread round-robin
    across users, which keeps the user-linkage task meaningful even at small
    shot counts.
    """
    if shots < 1:
        raise ValueError("shots must be at least 1")
    train_indices = list(dataset.splits.train)
    if shots >= len(train_indices):
        return dataset
    rng = np.random.default_rng(seed)
    if balance_users:
        by_user: Dict[int, List[int]] = {}
        for index in train_indices:
            by_user.setdefault(dataset.trajectories[index].user_id, []).append(index)
        for indices in by_user.values():
            rng.shuffle(indices)
        users = list(by_user)
        rng.shuffle(users)
        selected: List[int] = []
        cursor = 0
        while len(selected) < shots:
            progressed = False
            for user in users:
                bucket = by_user[user]
                if cursor < len(bucket):
                    selected.append(bucket[cursor])
                    progressed = True
                    if len(selected) == shots:
                        break
            cursor += 1
            if not progressed:
                break
        selected = selected[:shots]
    else:
        selected = list(rng.choice(train_indices, size=shots, replace=False))
    new_splits = DatasetSplits(
        train=tuple(int(i) for i in selected),
        validation=dataset.splits.validation,
        test=dataset.splits.test,
    )
    return replace(dataset, splits=new_splits)


def few_shot_transfer(
    source_model: BIGCity,
    target_dataset: CityDataset,
    shots: int,
    finetune_epochs: int = 2,
    seed: int = 0,
    training_config: Optional[TrainingConfig] = None,
    tasks: Optional[Sequence[TaskType]] = None,
) -> AdaptationResult:
    """Transfer ``source_model``'s backbone and fine-tune on ``shots`` trajectories."""
    limited = limit_training_trajectories(target_dataset, shots=shots, seed=seed)
    model, logs = transfer_backbone(
        source_model,
        limited,
        training_config=training_config,
        tasks=tasks,
        finetune_epochs=finetune_epochs,
    )
    return AdaptationResult(model=model, shots=min(shots, len(target_dataset.splits.train)), finetune_logs=logs, dataset_name=target_dataset.name)


def zero_shot_transfer(
    source_model: BIGCity,
    target_dataset: CityDataset,
) -> AdaptationResult:
    """Transfer the backbone with no target-city fine-tuning at all.

    The target tokenizer is still constructed from the target road network
    and traffic statistics (both label-free); every learnable parameter keeps
    its transferred or freshly initialised value.
    """
    model, logs = transfer_backbone(source_model, target_dataset, finetune_epochs=0)
    return AdaptationResult(model=model, shots=0, finetune_logs=logs, dataset_name=target_dataset.name)


def evaluate_adaptation(
    result: AdaptationResult,
    dataset: CityDataset,
    max_eval_samples: int = 40,
    seed: int = 0,
) -> Dict[str, float]:
    """Score an adapted model on the Table VI transfer tasks.

    Returns travel-time MAE/RMSE, next-hop accuracy/MRR@5 and the
    classification micro/macro F1 on the *target* dataset's test split.
    """
    model = result.model
    target = "user" if dataset.has_dynamic_features else "pattern"
    tte = TravelTimeEvaluator(dataset, max_samples=max_eval_samples, seed=seed)
    nxt = NextHopEvaluator(dataset, max_samples=max_eval_samples, seed=seed)
    clas = TrajectoryClassificationEvaluator(dataset, target=target, max_samples=max_eval_samples, seed=seed)

    tte_metrics = tte.evaluate(model.estimate_travel_time)
    next_metrics = nxt.evaluate(lambda ts: model.predict_next_hop(ts, top_k=10))
    clas_metrics = clas.evaluate(
        lambda ts: model.classify_trajectory(ts, target=target),
        lambda ts: model.classification_scores(ts, target=target),
    )
    report = {
        "shots": float(result.shots),
        "tte_mae": tte_metrics["mae"],
        "tte_rmse": tte_metrics["rmse"],
        "next_acc": next_metrics["acc"],
        "next_mrr@5": next_metrics["mrr@5"],
    }
    for key in ("micro_f1", "macro_f1", "f1", "acc"):
        if key in clas_metrics:
            report[f"clas_{key}"] = clas_metrics[key]
    return report
