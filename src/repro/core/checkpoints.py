"""Whole-model checkpoints: weights plus configuration in one artefact.

:mod:`repro.nn.serialization` saves bare state dicts; rebuilding a BIGCity
model from one additionally requires the exact :class:`BIGCityConfig` it was
created with (otherwise parameter shapes do not line up) and the dataset the
tokenizer was built for.  This module bundles weights and configuration into
a single ``.npz`` archive so a trained model can be reloaded with one call:

.. code-block:: python

    from repro.core.checkpoints import load_bigcity, save_bigcity

    save_bigcity(model, "xa_model.npz", dataset_name="xa_like")
    restored = load_bigcity("xa_model.npz", dataset)

The dataset itself is *not* serialised (it is either a named synthetic preset
that can be regenerated from its seed, or the user's own data); the caller
passes it when loading, and the checkpoint records its name so mismatches are
detected early.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from repro.core.config import BIGCityConfig
from repro.core.model import BIGCity
from repro.data.datasets import CityDataset
from repro.nn.serialization import load_state_dict, save_state_dict

__all__ = ["save_bigcity", "load_bigcity", "read_checkpoint_metadata"]

PathLike = Union[str, os.PathLike]

#: Metadata key under which the model configuration is stored.
_CONFIG_KEY = "bigcity_config"
_DATASET_KEY = "dataset_name"
_FORMAT_KEY = "checkpoint_format"
_FORMAT_VERSION = "1"


def save_bigcity(
    model: BIGCity,
    path: PathLike,
    dataset_name: Optional[str] = None,
    extra_metadata: Optional[Dict[str, str]] = None,
) -> Path:
    """Save a trained BIGCity model (weights + configuration) to ``path``.

    Parameters
    ----------
    model:
        The model to serialise.
    path:
        Destination file (``.npz``).
    dataset_name:
        Name of the dataset the model was built for; recorded so that
        :func:`load_bigcity` can warn about mismatches.
    extra_metadata:
        Additional string-valued metadata stored alongside the weights.
    """
    metadata: Dict[str, str] = dict(extra_metadata or {})
    metadata[_CONFIG_KEY] = json.dumps(dataclasses.asdict(model.config))
    metadata[_FORMAT_KEY] = _FORMAT_VERSION
    if dataset_name is not None:
        metadata[_DATASET_KEY] = dataset_name
    return save_state_dict(model, path, metadata=metadata)


def read_checkpoint_metadata(path: PathLike) -> Dict[str, str]:
    """Return the metadata of a checkpoint without building a model.

    Useful to inspect which dataset and configuration a checkpoint belongs to
    before paying the cost of constructing the tokenizer.
    """
    import numpy as np

    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__metadata__" not in archive.files:
            return {}
        return dict(json.loads(str(archive["__metadata__"])))


def load_bigcity(
    path: PathLike,
    dataset: CityDataset,
    strict_dataset: bool = True,
) -> Tuple[BIGCity, Dict[str, str]]:
    """Rebuild a BIGCity model from a checkpoint written by :func:`save_bigcity`.

    Parameters
    ----------
    path:
        Checkpoint file.
    dataset:
        The dataset the model's tokenizer should be built against (normally
        the same one used at save time).
    strict_dataset:
        When the checkpoint records a dataset name, raise if it differs from
        ``dataset.name``; set to ``False`` to permit cross-city loading (the
        Table VI transfer scenario), where only shape-compatible weights can
        be restored.

    Returns
    -------
    (model, metadata)
        The reconstructed model in eval mode and the checkpoint metadata.
    """
    metadata = read_checkpoint_metadata(path)
    if _CONFIG_KEY not in metadata:
        raise ValueError(
            f"{path} does not look like a BIGCity checkpoint (missing {_CONFIG_KEY!r} metadata); "
            "use repro.nn.serialization.load_state_dict for bare state dicts"
        )
    recorded_dataset = metadata.get(_DATASET_KEY)
    if strict_dataset and recorded_dataset is not None and recorded_dataset != dataset.name:
        raise ValueError(
            f"checkpoint was trained on dataset {recorded_dataset!r} but {dataset.name!r} was provided; "
            "pass strict_dataset=False to load across cities"
        )
    config = BIGCityConfig(**json.loads(metadata[_CONFIG_KEY]))
    model = BIGCity.from_dataset(dataset, config=config)
    load_state_dict(model, path, strict=strict_dataset)
    model.eval()
    return model, metadata
