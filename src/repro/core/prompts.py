"""Task-oriented prompts (Sec. V-A).

A prompt is the concatenation of three parts:

* **textual instruction tokens** ``X^(txt)`` — a fixed natural-language
  description of the task, tokenised by a small word-level tokenizer (the
  paper reuses GPT-2's BPE; the backbone here owns its own vocabulary built
  from the instruction bank);
* **input data tokens** ``X^(st)`` — the ST tokens of the trajectory or
  traffic-state series, possibly with ``[MASK]`` embeddings inserted at
  positions to be generated;
* **task placeholder tokens** ``X^(tsk)`` — learnable ``[CLAS]`` / ``[REG]``
  vectors, one per expected output.

:class:`PromptBuilder` assembles :class:`Prompt` descriptions for each of the
eight tasks, following the templates of Fig. 3.  The descriptions are purely
structural — embedding happens inside :class:`repro.core.model.BIGCity`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.st_unit import STUnitSequence


class TaskType(str, Enum):
    """The eight ST analysis tasks of Table I."""

    NEXT_HOP = "next_hop"
    TRAVEL_TIME = "travel_time"
    CLASSIFICATION = "classification"
    SIMILARITY = "similarity"
    RECOVERY = "recovery"
    TRAFFIC_ONE_STEP = "traffic_one_step"
    TRAFFIC_MULTI_STEP = "traffic_multi_step"
    TRAFFIC_IMPUTATION = "traffic_imputation"
    MASKED_RECONSTRUCTION = "masked_reconstruction"


#: Placeholder kinds used in task-token sequences.
CLAS = "clas"
REG = "reg"


@dataclass(frozen=True)
class TaskAnchor:
    """What a task placeholder already knows about the position it predicts.

    Fig. 3 of the paper annotates the placeholder positions with partially
    filled ST tokens — "ST token without spatial feature" (next hop,
    recovery), "ST token without temporal features" (travel time), "ST token
    lacks traffic state feature" (traffic prediction).  A ``TaskAnchor``
    carries that partial information so the model can embed it into the
    corresponding ``[CLAS]`` / ``[REG]`` task token:

    * ``kind="data"`` — the placeholder refers to an existing data position of
      the prompt; its (possibly feature-masked) ST token is added to the task
      token.  Used by next-hop (the last observed sample) and travel-time
      estimation (the sample whose arrival interval is regressed).
    * ``kind="partial"`` — the placeholder refers to a position that is not in
      the data tokens; a partial ST token is built from whatever is known:
      the road segment (``segment_id``) and/or the sampling time
      (``timestamp``), never the traffic state.  Used by traffic
      prediction/imputation (segment and future/missing slice time known) and
      by recovery / masked reconstruction (only an interpolated time known).
    """

    kind: str
    position: Optional[int] = None
    segment_id: Optional[int] = None
    timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("data", "partial"):
            raise ValueError(f"unknown anchor kind {self.kind!r}")
        if self.kind == "data" and self.position is None:
            raise ValueError("data anchors need a position")


#: The selected instruction per task (the paper generates candidates with a
#: language model and keeps the best one; we ship the final selections).
INSTRUCTION_BANK: Dict[TaskType, str] = {
    TaskType.NEXT_HOP: "predict the next road segment of the input trajectory",
    TaskType.TRAVEL_TIME: "regress the travel time interval on each placeholder based on the input trajectory",
    TaskType.CLASSIFICATION: "classify the input trajectory and output its class label",
    TaskType.SIMILARITY: "encode the input trajectory for most similar trajectory search",
    TaskType.RECOVERY: "generate the road segment on each placeholder to recover the masked trajectory",
    TaskType.TRAFFIC_ONE_STEP: "regress the traffic state of the next time slice based on the input series",
    TaskType.TRAFFIC_MULTI_STEP: "regress the traffic state on each placeholder based on the input series",
    TaskType.TRAFFIC_IMPUTATION: "regress the missing traffic state on each placeholder based on the input series",
    TaskType.MASKED_RECONSTRUCTION: "reconstruct the masked spatiotemporal units of the input sequence",
}


class TextTokenizer:
    """Word-level tokenizer over the instruction bank vocabulary."""

    PAD = "<pad>"
    UNK = "<unk>"

    def __init__(self, extra_sentences: Optional[Sequence[str]] = None) -> None:
        vocabulary = {self.PAD: 0, self.UNK: 1}
        sentences = list(INSTRUCTION_BANK.values()) + list(extra_sentences or [])
        for sentence in sentences:
            for word in self._split(sentence):
                if word not in vocabulary:
                    vocabulary[word] = len(vocabulary)
        self._vocabulary = vocabulary
        self._inverse = {index: word for word, index in vocabulary.items()}

    @staticmethod
    def _split(sentence: str) -> List[str]:
        return sentence.lower().split()

    @property
    def vocab_size(self) -> int:
        return len(self._vocabulary)

    def encode(self, sentence: str) -> np.ndarray:
        ids = [self._vocabulary.get(word, self._vocabulary[self.UNK]) for word in self._split(sentence)]
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Sequence[int]) -> str:
        return " ".join(self._inverse.get(int(i), self.UNK) for i in ids)


@dataclass
class Prompt:
    """Structural description of one task-oriented prompt.

    Attributes
    ----------
    task:
        Which task the prompt encodes (selects the instruction text).
    sequence:
        The ST-unit sequence providing the input data tokens.
    mask_positions:
        Positions (indices into ``sequence``) whose ST token must be replaced
        by the learnable ``[MASK]`` embedding (recovery / reconstruction /
        imputation inputs).
    time_feature_mask:
        Positions whose temporal features are hidden from the tokenizer
        (travel-time estimation hides every timestamp except the first).
    placeholders:
        Task-token kinds, in order (``"clas"`` / ``"reg"``).
    classification_targets / regression_targets / timestamp_targets:
        Supervision aligned with ``placeholders`` — classification targets
        are label-space indices, regression targets are arrays (one per REG
        placeholder), timestamp targets are seconds.
    metadata:
        Free-form extras used by evaluation code (e.g. the originating
        trajectory id).
    """

    task: TaskType
    sequence: STUnitSequence
    mask_positions: Tuple[int, ...] = ()
    time_feature_mask: Optional[np.ndarray] = None
    placeholders: Tuple[str, ...] = ()
    anchors: Tuple[Optional[TaskAnchor], ...] = ()
    classification_targets: Tuple[int, ...] = ()
    regression_targets: Tuple[np.ndarray, ...] = ()
    timestamp_targets: Tuple[float, ...] = ()
    metadata: Dict = field(default_factory=dict)

    @property
    def instruction(self) -> str:
        return INSTRUCTION_BANK[self.task]

    @property
    def num_placeholders(self) -> int:
        return len(self.placeholders)

    def __post_init__(self) -> None:
        for kind in self.placeholders:
            if kind not in (CLAS, REG):
                raise ValueError(f"unknown placeholder kind {kind!r}")
        if any(p < 0 or p >= len(self.sequence) for p in self.mask_positions):
            raise ValueError("mask positions must index into the sequence")
        if self.anchors and len(self.anchors) != len(self.placeholders):
            raise ValueError("anchors, when provided, must align with placeholders")
        for anchor in self.anchors:
            if anchor is not None and anchor.kind == "data":
                if not 0 <= anchor.position < len(self.sequence):
                    raise ValueError("data anchors must point inside the sequence")


class PromptBuilder:
    """Build task-oriented prompts from ST-unit sequences (templates of Fig. 3)."""

    def __init__(self, label_space: "LabelSpaceProtocol") -> None:
        self.label_space = label_space

    # ------------------------------------------------------------------
    # Trajectory tasks
    # ------------------------------------------------------------------
    def next_hop(self, sequence: STUnitSequence) -> Prompt:
        """Template of Fig. 3a: the trajectory prefix predicts the segment after it."""
        if len(sequence) < 3:
            raise ValueError("next-hop prompts need at least three samples")
        prefix = sequence.slice(0, len(sequence) - 1)
        target_segment = int(sequence.segment_ids[-1])
        # The [CLAS] placeholder is anchored on the last observed sample (the
        # prediction context), matching the causal "next token" convention.
        anchor = TaskAnchor(kind="data", position=len(prefix) - 1)
        return Prompt(
            task=TaskType.NEXT_HOP,
            sequence=prefix,
            placeholders=(CLAS,),
            anchors=(anchor,),
            classification_targets=(self.label_space.segment_label(target_segment),),
            metadata={"source_id": sequence.source_id},
        )

    def travel_time(self, sequence: STUnitSequence) -> Prompt:
        """Template of Fig. 3b: timestamps are hidden, intervals are regressed."""
        if len(sequence) < 2:
            raise ValueError("travel-time prompts need at least two samples")
        length = len(sequence)
        hide_times = np.ones(length, dtype=bool)
        hide_times[0] = False  # departure time is known
        intervals = np.diff(sequence.timestamps)
        placeholders = tuple(REG for _ in range(length - 1))
        # Each [REG] is anchored on the sample whose arrival interval it
        # regresses; those data tokens carry spatial but no temporal features
        # ("ST token without temporal features", Fig. 3b).
        anchors = tuple(TaskAnchor(kind="data", position=k + 1) for k in range(length - 1))
        return Prompt(
            task=TaskType.TRAVEL_TIME,
            sequence=sequence,
            time_feature_mask=hide_times,
            placeholders=placeholders,
            anchors=anchors,
            timestamp_targets=tuple(float(v) for v in intervals),
            metadata={"source_id": sequence.source_id, "total_time": float(sequence.timestamps[-1] - sequence.timestamps[0])},
        )

    def classification(self, sequence: STUnitSequence, target: str = "user") -> Prompt:
        """Trajectory classification: user linkage (XA/CD) or binary pattern (BJ)."""
        if target == "user":
            label = self.label_space.user_label(int(sequence.user_id))
        elif target == "pattern":
            label = self.label_space.pattern_label(int(sequence.label))
        else:
            raise ValueError("target must be 'user' or 'pattern'")
        # The [CLAS] placeholder is anchored on the final observed sample; the
        # trip destination is highly informative for both user linkage and
        # traffic-pattern classification, and the rest of the route remains
        # accessible through causal attention.
        anchor = TaskAnchor(kind="data", position=len(sequence) - 1)
        return Prompt(
            task=TaskType.CLASSIFICATION,
            sequence=sequence,
            placeholders=(CLAS,),
            anchors=(anchor,),
            classification_targets=(label,),
            metadata={"source_id": sequence.source_id, "target": target},
        )

    def similarity(self, sequence: STUnitSequence) -> Prompt:
        """Embedding prompt: no placeholder outputs, the pooled hidden state is used."""
        return Prompt(
            task=TaskType.SIMILARITY,
            sequence=sequence,
            placeholders=(CLAS,),
            classification_targets=(-1,),
            metadata={"source_id": sequence.source_id},
        )

    def recovery(self, full_sequence: STUnitSequence, kept_indices: Sequence[int]) -> Prompt:
        """Template of Fig. 3d: ``[MASK]`` inserted at dropped positions, ``[CLAS]`` per mask.

        The endpoints need not be kept: a masked position before the first
        (or after the last) kept sample anchors its partial ST token on the
        nearest kept neighbour on the open side, mirroring the open-sided
        gap handling of the constrained decoder.
        """
        kept = np.asarray(sorted(set(int(i) for i in kept_indices)), dtype=np.int64)
        if kept.size == 0:
            raise ValueError("recovery prompts need at least one kept index")
        if kept[0] < 0 or kept[-1] >= len(full_sequence):
            raise ValueError(
                f"kept indices must lie in [0, {len(full_sequence) - 1}], got "
                f"[{int(kept[0])}, {int(kept[-1])}]"
            )
        all_positions = np.arange(len(full_sequence))
        missing = np.setdiff1d(all_positions, kept)
        placeholders = tuple(CLAS for _ in missing)
        targets = tuple(self.label_space.segment_label(int(full_sequence.segment_ids[i])) for i in missing)
        # Each [CLAS] is anchored on a partial ST token: the sampling time of
        # the missing position is approximated by linear interpolation between
        # the nearest kept samples, and the spatial part uses the last *kept*
        # segment before the gap (both are known to a low-rate GPS pipeline at
        # inference time; the dropped segment itself is not).
        anchors = tuple(
            TaskAnchor(
                kind="partial",
                segment_id=int(full_sequence.segment_ids[kept[kept < i].max()]) if np.any(kept < i) else int(full_sequence.segment_ids[kept[0]]),
                timestamp=_interpolated_timestamp(full_sequence.timestamps, kept, int(i)),
            )
            for i in missing
        )
        return Prompt(
            task=TaskType.RECOVERY,
            sequence=full_sequence,
            mask_positions=tuple(int(i) for i in missing),
            placeholders=placeholders,
            anchors=anchors,
            classification_targets=targets,
            metadata={"source_id": full_sequence.source_id, "kept_indices": kept},
        )

    # ------------------------------------------------------------------
    # Traffic-state tasks
    # ------------------------------------------------------------------
    def traffic_prediction(
        self,
        history: STUnitSequence,
        target_values: np.ndarray,
        multi_step: bool = True,
    ) -> Prompt:
        """Template of Fig. 3c: history ST tokens, one ``[REG]`` per future slice."""
        target_values = np.atleast_2d(np.asarray(target_values, dtype=np.float64))
        horizon = target_values.shape[0]
        task = TaskType.TRAFFIC_MULTI_STEP if multi_step else TaskType.TRAFFIC_ONE_STEP
        if not multi_step and horizon != 1:
            raise ValueError("one-step prediction expects exactly one target row")
        # Each [REG] knows the segment and the future slice's time, but not its
        # traffic state ("ST token lacks traffic state feature", Fig. 3c).
        if len(history) > 1:
            slice_seconds = float(history.timestamps[1] - history.timestamps[0])
        else:
            slice_seconds = 1800.0
        segment = int(history.segment_ids[0])
        last_time = float(history.timestamps[-1])
        anchors = tuple(
            TaskAnchor(kind="partial", segment_id=segment, timestamp=last_time + (k + 1) * slice_seconds)
            for k in range(horizon)
        )
        return Prompt(
            task=task,
            sequence=history,
            placeholders=tuple(REG for _ in range(horizon)),
            anchors=anchors,
            regression_targets=tuple(target_values[i] for i in range(horizon)),
            metadata={"segment_id": segment},
        )

    def traffic_imputation(self, sequence: STUnitSequence, masked_positions: Sequence[int]) -> Prompt:
        """Mask a subset of slices and regress their traffic state."""
        masked = tuple(sorted(int(i) for i in masked_positions))
        if not masked:
            raise ValueError("imputation prompts need at least one masked position")
        if sequence.dynamic_features is None:
            raise ValueError("imputation requires dynamic features on the input sequence")
        targets = tuple(sequence.dynamic_features[i].copy() for i in masked)
        # The segment and the masked slice's time are known; its traffic state is not.
        anchors = tuple(
            TaskAnchor(
                kind="partial",
                segment_id=int(sequence.segment_ids[i]),
                timestamp=float(sequence.timestamps[i]),
            )
            for i in masked
        )
        return Prompt(
            task=TaskType.TRAFFIC_IMPUTATION,
            sequence=sequence,
            mask_positions=masked,
            placeholders=tuple(REG for _ in masked),
            anchors=anchors,
            regression_targets=targets,
            metadata={"segment_id": int(sequence.segment_ids[0])},
        )

    # ------------------------------------------------------------------
    # Stage-1 pre-training
    # ------------------------------------------------------------------
    def masked_reconstruction(
        self,
        sequence: STUnitSequence,
        mask_ratio: float = 0.3,
        rng: Optional[np.random.Generator] = None,
    ) -> Prompt:
        """Stage-1 prompt: mask K units, emit a ([CLAS], [REG]) pair per mask (Eq. 12)."""
        rng = rng or np.random.default_rng()
        length = len(sequence)
        num_masked = max(1, int(round(mask_ratio * length)))
        candidates = np.arange(1, length) if length > 1 else np.arange(length)
        masked = np.sort(rng.choice(candidates, size=min(num_masked, len(candidates)), replace=False))
        placeholders: List[str] = []
        anchors: List[Optional[TaskAnchor]] = []
        clas_targets: List[int] = []
        reg_targets: List[np.ndarray] = []
        tim_targets: List[float] = []
        channels = sequence.dynamic_features.shape[1] if sequence.dynamic_features is not None else 0
        unmasked = np.setdiff1d(np.arange(length), masked)
        for position in masked:
            placeholders.extend([CLAS, REG])
            earlier_unmasked = unmasked[unmasked < position]
            anchor_segment = int(sequence.segment_ids[earlier_unmasked.max()]) if len(earlier_unmasked) else None
            anchor = TaskAnchor(
                kind="partial",
                segment_id=anchor_segment,
                timestamp=_interpolated_timestamp(sequence.timestamps, unmasked, int(position)),
            )
            anchors.extend([anchor, anchor])
            clas_targets.append(self.label_space.segment_label(int(sequence.segment_ids[position])))
            if channels:
                reg_targets.append(sequence.dynamic_features[position].copy())
            else:
                reg_targets.append(np.zeros(0))
            tim_targets.append(float(sequence.timestamps[position] - sequence.timestamps[max(position - 1, 0)]))
        return Prompt(
            task=TaskType.MASKED_RECONSTRUCTION,
            sequence=sequence,
            mask_positions=tuple(int(i) for i in masked),
            placeholders=tuple(placeholders),
            anchors=tuple(anchors),
            classification_targets=tuple(clas_targets),
            regression_targets=tuple(reg_targets),
            timestamp_targets=tuple(tim_targets),
            metadata={"source_id": sequence.source_id},
        )


def _interpolated_timestamp(timestamps: np.ndarray, known_indices: np.ndarray, position: int) -> float:
    """Approximate the timestamp of ``position`` from the nearest known samples."""
    timestamps = np.asarray(timestamps, dtype=np.float64)
    known = np.asarray(sorted(int(i) for i in known_indices), dtype=np.int64)
    earlier = known[known < position]
    later = known[known > position]
    if len(earlier) == 0 and len(later) == 0:
        return float(timestamps[position])
    if len(earlier) == 0:
        return float(timestamps[later.min()])
    if len(later) == 0:
        return float(timestamps[earlier.max()])
    a, b = int(earlier.max()), int(later.min())
    fraction = (position - a) / max(b - a, 1)
    return float(timestamps[a] + fraction * (timestamps[b] - timestamps[a]))


class LabelSpaceProtocol:
    """Protocol-ish documentation of what :class:`PromptBuilder` needs.

    Implemented by :class:`repro.core.heads.LabelSpace`; declared here only to
    avoid a circular import in type checking and documentation.
    """

    def segment_label(self, segment_id: int) -> int:  # pragma: no cover - interface stub
        raise NotImplementedError

    def user_label(self, user_id: int) -> int:  # pragma: no cover - interface stub
        raise NotImplementedError

    def pattern_label(self, pattern: int) -> int:  # pragma: no cover - interface stub
        raise NotImplementedError
