"""Gradient-descent optimisers and learning-rate schedulers.

Under a float32 compute policy (see :func:`repro.nn.tensor.compute_dtype`)
the Adam/AdamW moment estimates are still accumulated in float64 — exponential
moving averages are exactly the kind of long-horizon sum float32 degrades —
and every update is cast back to the parameter's own dtype, so parameters
never silently change precision across a ``step()``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and the ``zero_grad``/``step`` API."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self._step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    @property
    def step_count(self) -> int:
        return self._step_count


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                velocity = grad if velocity is None else self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = velocity
            param.data = (param.data - self.lr * grad).astype(param.data.dtype, copy=False)


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param), np.zeros_like(param.data, dtype=np.float64))
            v = self._v.get(id(param), np.zeros_like(param.data, dtype=np.float64))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            update = self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
            param.data = (param.data - update).astype(param.data.dtype, copy=False)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter, 2019)."""

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            m = self._m.get(id(param), np.zeros_like(param.data, dtype=np.float64))
            v = self._v.get(id(param), np.zeros_like(param.data, dtype=np.float64))
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / (1 - self.beta1**t)
            v_hat = v / (1 - self.beta2**t)
            update = m_hat / (np.sqrt(v_hat) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            param.data = (param.data - self.lr * update).astype(param.data.dtype, copy=False)


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        self.optimizer.lr = self.get_lr()

    def get_lr(self) -> float:
        raise NotImplementedError


class StepLR(_Scheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.5) -> None:
        super().__init__(optimizer)
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self._epoch // self.step_size)


class CosineAnnealingLR(_Scheduler):
    """Cosine-anneal the learning rate to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        self.total_epochs = max(1, total_epochs)
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(1.0, self._epoch / self.total_epochs)
        return self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (1 + np.cos(np.pi * progress))


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Clip gradients in place to a maximum global L2 norm; returns the norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum(dtype=np.float64)) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
