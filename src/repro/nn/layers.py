"""Standard neural-network layers."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, fused_enabled


class Linear(Module):
    """Affine transform ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng=rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.02,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=std, rng=rng))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices.data if isinstance(indices, Tensor) else indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): "
                f"min={indices.min()}, max={indices.max()}"
            )
        return self.weight.index_select(indices, axis=0)

    def __repr__(self) -> str:
        return f"Embedding(num={self.num_embeddings}, dim={self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)))
        self.bias = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        if fused_enabled():
            return F.fused_layer_norm(x, self.weight, self.bias, eps=self.eps)
        return F.layer_norm_composed(x, self.weight, self.bias, eps=self.eps)


class Dropout(Module):
    """Randomly zero activations during training."""

    def __init__(self, p: float = 0.1) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must be in [0, 1)")
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return x.dropout(self.p, training=self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    The paper uses MLPs in the temporal-integration module of the tokenizer
    (Eq. 8) and as the general-task heads (Eq. 11).
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "gelu",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        activations = {"relu": ReLU, "gelu": GELU, "tanh": Tanh, "sigmoid": Sigmoid}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}; choose from {sorted(activations)}")
        dims = [in_features, *hidden_features, out_features]
        layers = []
        for i in range(len(dims) - 1):
            layers.append(Linear(dims[i], dims[i + 1], rng=rng))
            if i < len(dims) - 2:
                layers.append(activations[activation]())
                if dropout > 0:
                    layers.append(Dropout(dropout))
        self.layers = _as_sequential(layers)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        return self.layers(x)


def _as_sequential(layers) -> "Sequential":
    from repro.nn.module import Sequential

    return Sequential(*layers)
