"""Functional helpers operating on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor


def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    return x.gelu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def dropout(x: Tensor, p: float, training: bool = True) -> Tensor:
    return x.dropout(p, training=training)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Apply ``x @ weight.T + bias`` (same convention as ``torch.nn.functional.linear``)."""
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    return Tensor.concat(tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return Tensor.stack(tensors, axis=axis)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=np.float64)
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask that is ``True`` above the diagonal (positions to hide)."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def padding_mask(lengths: Sequence[int], max_length: Optional[int] = None) -> np.ndarray:
    """Boolean mask that is ``True`` at padded positions.

    Parameters
    ----------
    lengths:
        Valid sequence length per batch element.
    max_length:
        Padded length; defaults to ``max(lengths)``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    max_length = int(max_length if max_length is not None else lengths.max())
    positions = np.arange(max_length)[None, :]
    return positions >= lengths[:, None]


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean over ``axis`` ignoring positions where ``mask`` is ``True``.

    ``mask`` follows the padding-mask convention (True = ignore) and must be
    broadcastable against ``x`` without its feature dimension.
    """
    keep = (~np.asarray(mask, dtype=bool)).astype(np.float64)
    while keep.ndim < x.ndim:
        keep = keep[..., None]
    keep_t = Tensor(keep)
    total = (x * keep_t).sum(axis=axis)
    count = keep_t.sum(axis=axis).clip(1e-9, np.inf)
    return total / count


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-9) -> Tensor:
    """Cosine similarity along ``axis``."""
    dot = (a * b).sum(axis=axis)
    norm_a = (a * a).sum(axis=axis).clip(eps, np.inf).sqrt()
    norm_b = (b * b).sum(axis=axis).clip(eps, np.inf).sqrt()
    return dot / (norm_a * norm_b)


def pairwise_cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Dense cosine-similarity matrix between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
    return a_norm @ b_norm.T
