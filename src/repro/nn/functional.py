"""Functional helpers operating on :class:`repro.nn.tensor.Tensor`.

Besides thin wrappers around the :class:`Tensor` methods, this module hosts
the *fused kernels* of the engine fast path: scaled-dot-product attention,
layer normalisation, GELU and softmax cross-entropy each run their forward
pass in plain NumPy and record a single tape node with an analytic backward,
instead of the 5-10 nodes (and full-size temporaries) the composed
formulation creates.  The composed formulations are kept as ``*_composed``
fallbacks; :func:`repro.nn.tensor.fused_kernels` switches between the two so
the speedup can be measured rather than asserted (see
``repro.eval.perfbench``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor, apply_op, fused_enabled, get_compute_dtype


def relu(x: Tensor) -> Tensor:
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """GELU activation; dispatches to the fused kernel or the legacy method."""
    if fused_enabled():
        return fused_gelu(x)
    return x.gelu()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return x.log_softmax(axis=axis)


def dropout(x: Tensor, p: float, training: bool = True) -> Tensor:
    return x.dropout(p, training=training)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Apply ``x @ weight.T + bias`` (same convention as ``torch.nn.functional.linear``)."""
    if fused_enabled():
        return fused_linear(x, weight, bias)
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def fused_linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """``x @ weight.T (+ bias)`` as a single tape node.

    The composed formulation records a transpose node, a matmul node and a
    broadcast-add node whose backward un-broadcasts the bias gradient over
    the full activation; here the transpose is a free view, the bias add is
    in place and its gradient a single row-sum.
    """
    x_data = x.data
    out = x_data @ weight.data.T
    if bias is not None:
        out += bias.data

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate_owned(grad @ weight.data)
        flat_grad = grad.reshape(-1, grad.shape[-1])
        if weight.requires_grad:
            weight._accumulate_owned(flat_grad.T @ x_data.reshape(-1, x_data.shape[-1]))
        if bias is not None and bias.requires_grad:
            bias._accumulate_owned(flat_grad.sum(axis=0))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return apply_op(out, parents, backward)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    return Tensor.concat(tensors, axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return Tensor.stack(tensors, axis=axis)


def one_hot(indices: np.ndarray, num_classes: int) -> np.ndarray:
    """Return a dense one-hot encoding of ``indices`` (compute-policy dtype)."""
    indices = np.asarray(indices, dtype=np.int64)
    out = np.zeros(indices.shape + (num_classes,), dtype=get_compute_dtype())
    np.put_along_axis(out, indices[..., None], 1.0, axis=-1)
    return out


_GELU_C = float(np.sqrt(2.0 / np.pi))


def fused_gelu(x: Tensor) -> Tensor:
    """GELU (tanh approximation) as a single tape node.

    The forward pass stages everything through two reusable buffers (no
    ``x**3`` power calls, one ``tanh``); the backward reuses the saved
    ``x²`` and ``tanh`` buffers in place, so the whole op touches a fraction
    of the temporaries :meth:`Tensor.gelu` allocates.
    """
    data_x = x.data
    x_sq = data_x * data_x
    inner = x_sq * 0.044715
    inner += 1.0
    inner *= data_x
    inner *= _GELU_C
    tanh_inner = np.tanh(inner, out=inner)
    out = tanh_inner + 1.0
    out *= data_x
    out *= 0.5

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        # derivative = 0.5*(1+t) + 0.5*x*(1-t²)*c*(1+3a*x²), computed by
        # destroying the saved x² / tanh buffers (a tape node's backward
        # runs exactly once).
        sech2 = tanh_inner * tanh_inner
        np.subtract(1.0, sech2, out=sech2)
        poly = x_sq
        poly *= 3.0 * 0.044715
        poly += 1.0
        poly *= _GELU_C
        sech2 *= poly
        sech2 *= data_x
        np.add(tanh_inner, 1.0, out=poly)
        sech2 += poly
        sech2 *= 0.5
        sech2 *= grad
        x._accumulate_owned(sech2)

    return apply_op(out, (x,), backward)


def gelu_composed(x: Tensor) -> Tensor:
    """GELU built from primitive tape ops (reference for the fused kernel)."""
    inner = (x + x * x * x * 0.044715) * _GELU_C
    return x * 0.5 * (inner.tanh() + 1.0)


def fused_layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis as a single tape node."""
    data_x = x.data
    mean = data_x.mean(axis=-1, keepdims=True)
    centered = data_x - mean
    variance = np.mean(centered * centered, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(variance + eps)
    normalised = centered * inv_std
    out = normalised * weight.data + bias.data

    def backward(grad: np.ndarray) -> None:
        feature_dim = grad.shape[-1]
        if x.requires_grad:
            grad_norm = grad * weight.data
            mean_grad = grad_norm.mean(axis=-1, keepdims=True)
            mean_grad_norm = np.mean(grad_norm * normalised, axis=-1, keepdims=True)
            x._accumulate_owned(inv_std * (grad_norm - mean_grad - normalised * mean_grad_norm))
        if weight.requires_grad:
            weight._accumulate_owned((grad * normalised).reshape(-1, feature_dim).sum(axis=0))
        if bias.requires_grad:
            bias._accumulate_owned(grad.reshape(-1, feature_dim).sum(axis=0))

    return apply_op(out, (x, weight, bias), backward)


def layer_norm_composed(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """The legacy multi-node layer-norm formulation (reference/benchmark path)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalised = centered / (variance + eps).sqrt()
    return normalised * weight + bias


def fused_cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy from raw logits as a single tape node.

    Fuses ``log_softmax`` + gather + negate + reduce: the backward is the
    analytic ``softmax(logits) - one_hot(targets)`` without materialising the
    one-hot matrix or any intermediate graph nodes.
    """
    target_idx = np.asarray(
        targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64
    ).reshape(-1)
    num_classes = logits.shape[-1]
    flat = logits.data.reshape(-1, num_classes)
    num_rows = flat.shape[0]
    if target_idx.shape[0] != num_rows:
        raise ValueError(
            f"targets have {target_idx.shape[0]} entries but logits have {num_rows} rows"
        )
    shifted = flat - flat.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - logsumexp
    rows = np.arange(num_rows)
    per_row = -log_probs[rows, target_idx]
    # Loss reductions accumulate in float64 even under a float32 policy; the
    # scalar is cast back so the output stays in the policy dtype.
    if reduction == "mean":
        out = per_row.mean(dtype=np.float64).astype(per_row.dtype)
    elif reduction == "sum":
        out = per_row.sum(dtype=np.float64).astype(per_row.dtype)
    elif reduction == "none":
        # Flat (rows,) losses, matching the composed formulation exactly.
        out = per_row
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(grad: np.ndarray) -> None:
        if not logits.requires_grad:
            return
        if reduction == "mean":
            row_grad = np.full(num_rows, float(np.asarray(grad).reshape(())) / num_rows, dtype=log_probs.dtype)
        elif reduction == "sum":
            row_grad = np.full(num_rows, float(np.asarray(grad).reshape(())), dtype=log_probs.dtype)
        else:
            row_grad = np.asarray(grad, dtype=log_probs.dtype).reshape(-1)
        grad_logits = np.exp(log_probs) * row_grad[:, None]
        grad_logits[rows, target_idx] -= row_grad
        logits._accumulate_owned(grad_logits.reshape(logits.shape))

    return apply_op(out, (logits,), backward)


def scaled_dot_product_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: Optional[np.ndarray] = None,
    dropout_p: float = 0.0,
    training: bool = False,
    scale: Optional[float] = None,
    return_weights: bool = False,
    is_causal: bool = False,
):
    """``softmax(q @ k^T * scale + mask) @ v`` as a single tape node.

    ``q`` is ``(..., q_len, head_dim)``, ``k``/``v`` are ``(..., kv_len,
    head_dim)`` with identical leading dimensions.  ``mask`` is a boolean
    array broadcastable to ``(..., q_len, kv_len)``, ``True`` at positions to
    hide.  With ``return_weights=True`` the (pre-dropout) attention
    probabilities are returned as a plain array alongside the output.

    ``is_causal=True`` (self-attention, no other mask) dispatches to a
    block-causal kernel that never touches the masked upper triangle: rows
    are processed in blocks whose key extent stops at the diagonal, so the
    forward and backward skip ~half of the ``q_len × kv_len`` work instead
    of computing it and masking it away.  The composed formulation cannot do
    this — it materialises the full score matrix by construction.
    """
    if (
        is_causal
        and mask is None
        and not return_weights
        and q.shape[-2] == k.shape[-2]
        and q.shape[-2] >= 2 * _CAUSAL_BLOCK
    ):
        return _sdpa_causal_blocked(q, k, v, dropout_p=dropout_p, training=training, scale=scale)
    if is_causal and mask is None:
        mask = cached_causal_mask(q.shape[-2], k.shape[-2])
    q_data, k_data, v_data = q.data, k.data, v.data
    if scale is None:
        scale = 1.0 / np.sqrt(q_data.shape[-1])
    # The softmax runs entirely inside the ``scores`` buffer and every
    # elementwise pass over the (..., q_len, kv_len) array is either in place
    # or skipped: the scale is folded into the (much smaller) query before
    # the matmul, and the max-shift subtraction only happens when the scores
    # are actually large enough to overflow ``exp``.
    scaled_q = q_data * scale
    scores = scaled_q @ np.swapaxes(k_data, -1, -2)
    if mask is not None:
        np.copyto(scores, -1e9, where=mask)
    row_max = scores.max(axis=-1, keepdims=True)
    if row_max.max() > 50.0 or row_max.min() < -50.0:
        scores -= row_max
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    attention = scores
    if dropout_p > 0.0 and training:
        keep = 1.0 - dropout_p
        drop_mask = (np.random.random(attention.shape) < keep).astype(attention.dtype) / keep
        dropped = attention * drop_mask
    else:
        drop_mask = None
        dropped = attention
    out = dropped @ v_data

    def backward(grad: np.ndarray) -> None:
        if v.requires_grad:
            v._accumulate_owned(np.swapaxes(dropped, -1, -2) @ grad)
        if not (q.requires_grad or k.requires_grad):
            return
        grad_attention = grad @ np.swapaxes(v_data, -1, -2)
        if drop_mask is not None:
            grad_attention *= drop_mask
        # Fused multiply-reduce: no (..., q_len, kv_len) temporary.
        dot = np.einsum("...ij,...ij->...i", grad_attention, attention)[..., None]
        # grad_scores = attention * (grad_attention - dot), in place.
        grad_scores = grad_attention
        grad_scores -= dot
        grad_scores *= attention
        if mask is not None:
            np.copyto(grad_scores, 0.0, where=mask)
        # ``scores`` was (q * scale) @ k^T, so the scale re-enters through the
        # small per-head arrays instead of another full pass over the scores.
        if q.requires_grad:
            grad_q = grad_scores @ k_data
            grad_q *= scale
            q._accumulate_owned(grad_q)
        if k.requires_grad:
            k._accumulate_owned(np.swapaxes(grad_scores, -1, -2) @ scaled_q)

    result = apply_op(out, (q, k, v), backward)
    if return_weights:
        return result, attention
    return result


#: Row-block size of the block-causal attention kernel.  Blocks trade Python
#: overhead (more blocks) against wasted masked work (fewer blocks); 64 rows
#: keeps per-block score slabs comfortably inside the cache at tier-1 sizes.
_CAUSAL_BLOCK = 64


def _sdpa_causal_blocked(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    dropout_p: float = 0.0,
    training: bool = False,
    scale: Optional[float] = None,
) -> Tensor:
    """Causal attention over row blocks, skipping the masked upper triangle.

    Rows ``[r0, r1)`` of the query only attend to keys ``[0, r1)``, so each
    block computes a ``(r1 - r0, r1)`` score slab instead of a full
    ``(q_len, kv_len)`` row; summed over blocks this does ~55% of the
    all-pairs work (down to 50% as blocks shrink).  Only the ``(rb, rb)``
    diagonal corner of each slab needs masking.
    """
    q_data, k_data, v_data = q.data, k.data, v.data
    length = q_data.shape[-2]
    if scale is None:
        scale = 1.0 / np.sqrt(q_data.shape[-1])
    scaled_q = q_data * scale
    out = np.empty(q_data.shape[:-1] + (v_data.shape[-1],), dtype=q_data.dtype)
    starts = list(range(0, length, _CAUSAL_BLOCK))
    blocks = []  # (r0, r1, attention_slab, drop_mask_slab)
    for r0 in starts:
        r1 = min(r0 + _CAUSAL_BLOCK, length)
        rb = r1 - r0
        scores = scaled_q[..., r0:r1, :] @ np.swapaxes(k_data[..., :r1, :], -1, -2)
        corner = cached_causal_mask(rb, rb)
        if corner is not None:
            np.copyto(scores[..., r0:r1], -1e9, where=corner)
        row_max = scores.max(axis=-1, keepdims=True)
        if row_max.max() > 50.0 or row_max.min() < -50.0:
            scores -= row_max
        np.exp(scores, out=scores)
        scores /= scores.sum(axis=-1, keepdims=True)
        if dropout_p > 0.0 and training:
            keep = 1.0 - dropout_p
            drop_mask = (np.random.random(scores.shape) < keep).astype(scores.dtype) / keep
            dropped = scores * drop_mask
        else:
            drop_mask = None
            dropped = scores
        out[..., r0:r1, :] = dropped @ v_data[..., :r1, :]
        blocks.append((r0, r1, scores, drop_mask))

    def backward(grad: np.ndarray) -> None:
        need_qk = q.requires_grad or k.requires_grad
        grad_q = np.zeros_like(q_data) if q.requires_grad else None
        grad_k = np.zeros_like(k_data) if k.requires_grad else None
        grad_v = np.zeros_like(v_data) if v.requires_grad else None
        for r0, r1, attention, drop_mask in blocks:
            rb = r1 - r0
            grad_block = grad[..., r0:r1, :]
            dropped_blk = attention * drop_mask if drop_mask is not None else attention
            if grad_v is not None:
                grad_v[..., :r1, :] += np.swapaxes(dropped_blk, -1, -2) @ grad_block
            if not need_qk:
                continue
            grad_attention = grad_block @ np.swapaxes(v_data[..., :r1, :], -1, -2)
            if drop_mask is not None:
                grad_attention *= drop_mask
            dot = np.einsum("...ij,...ij->...i", grad_attention, attention)[..., None]
            grad_scores = grad_attention
            grad_scores -= dot
            grad_scores *= attention
            corner = cached_causal_mask(rb, rb)
            if corner is not None:
                np.copyto(grad_scores[..., r0:r1], 0.0, where=corner)
            if grad_q is not None:
                gq = grad_scores @ k_data[..., :r1, :]
                gq *= scale
                grad_q[..., r0:r1, :] = gq
            if grad_k is not None:
                grad_k[..., :r1, :] += np.swapaxes(grad_scores, -1, -2) @ scaled_q[..., r0:r1, :]
        if grad_q is not None:
            q._accumulate_owned(grad_q)
        if grad_k is not None:
            k._accumulate_owned(grad_k)
        if grad_v is not None:
            v._accumulate_owned(grad_v)

    return apply_op(out, (q, k, v), backward)


def gather_rows(x: Tensor, batch_index, row_index) -> Tensor:
    """``x[batch_index, row_index]`` as a single tape node.

    ``x`` is ``(batch, seq, features)`` and the two index arrays select ``K``
    rows, producing ``(K, features)``.  The composed formulation — one
    ``__getitem__`` node per row plus a ``stack`` over all of them — records
    ``K + 1`` tape nodes; this kernel records one, with a scatter-add
    backward.  Used by ``BIGCity.forward_prompts`` to pull the task-placeholder
    and data rows out of the backbone output.
    """
    batch_idx = np.asarray(batch_index, dtype=np.int64).reshape(-1)
    row_idx = np.asarray(row_index, dtype=np.int64).reshape(-1)
    if batch_idx.shape != row_idx.shape:
        raise ValueError("batch_index and row_index must have the same length")
    out = x.data[batch_idx, row_idx]

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        full = np.zeros_like(x.data, dtype=x.data.dtype if x.data.dtype.kind == "f" else np.float64)
        np.add.at(full, (batch_idx, row_idx), grad)
        x._accumulate_owned(full)

    return apply_op(out, (x,), backward)


_CAUSAL_MASK_CACHE: Dict[Tuple[int, int, int], Optional[np.ndarray]] = {}


def causal_mask(length: int) -> np.ndarray:
    """Boolean mask that is ``True`` above the diagonal (positions to hide)."""
    return np.triu(np.ones((length, length), dtype=bool), k=1)


def cached_causal_mask(q_len: int, kv_len: int, offset: int = 0) -> Optional[np.ndarray]:
    """Shared, read-only causal mask for queries at ``offset .. offset+q_len``.

    Entry ``(i, j)`` is ``True`` when key ``j`` lies in the future of query
    ``offset + i`` (the KV-cached decoding case where cached keys precede the
    new queries).  Returns ``None`` when nothing would be masked — e.g. a
    single-token decode step attending over its full prefix — so callers can
    skip the masking branch entirely.  Masks are cached per shape; repeated
    forward passes at the same lengths reuse one immutable array instead of
    allocating a fresh ``(1, 1, q_len, kv_len)`` buffer per call.
    """
    key = (q_len, kv_len, offset)
    cached = _CAUSAL_MASK_CACHE.get(key, False)
    if cached is not False:
        return cached
    if len(_CAUSAL_MASK_CACHE) > 512:
        _CAUSAL_MASK_CACHE.clear()
    positions = np.arange(kv_len)[None, :] > (offset + np.arange(q_len))[:, None]
    if positions.any():
        mask = positions[None, None]
        mask.setflags(write=False)
    else:
        mask = None
    _CAUSAL_MASK_CACHE[key] = mask
    return mask


def padding_mask(lengths: Sequence[int], max_length: Optional[int] = None) -> np.ndarray:
    """Boolean mask that is ``True`` at padded positions.

    Parameters
    ----------
    lengths:
        Valid sequence length per batch element.
    max_length:
        Padded length; defaults to ``max(lengths)``.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    max_length = int(max_length if max_length is not None else lengths.max())
    positions = np.arange(max_length)[None, :]
    return positions >= lengths[:, None]


def masked_mean(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean over ``axis`` ignoring positions where ``mask`` is ``True``.

    ``mask`` follows the padding-mask convention (True = ignore) and must be
    broadcastable against ``x`` without its feature dimension.
    """
    keep = (~np.asarray(mask, dtype=bool)).astype(x.data.dtype if x.data.dtype.kind == "f" else np.float64)
    while keep.ndim < x.ndim:
        keep = keep[..., None]
    keep_t = Tensor(keep)
    total = (x * keep_t).sum(axis=axis)
    count = keep_t.sum(axis=axis).clip(1e-9, np.inf)
    return total / count


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-9) -> Tensor:
    """Cosine similarity along ``axis``."""
    dot = (a * b).sum(axis=axis)
    norm_a = (a * a).sum(axis=axis).clip(eps, np.inf).sqrt()
    norm_b = (b * b).sum(axis=axis).clip(eps, np.inf).sqrt()
    return dot / (norm_a * norm_b)


def pairwise_cosine_similarity(a: np.ndarray, b: np.ndarray, eps: float = 1e-9) -> np.ndarray:
    """Dense cosine-similarity matrix between rows of ``a`` and rows of ``b``."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    a_norm = a / np.maximum(np.linalg.norm(a, axis=1, keepdims=True), eps)
    b_norm = b / np.maximum(np.linalg.norm(b, axis=1, keepdims=True), eps)
    return a_norm @ b_norm.T
