"""Low-Rank Adaptation (LoRA) of linear layers.

BIGCity keeps the GPT-2 backbone frozen and learns only low-rank update
matrices attached to the query/key/value projections and the feed-forward
layers of each transformer block (Sec. V-B).  :func:`attach_lora` rewrites a
built backbone in place, replacing selected :class:`~repro.nn.layers.Linear`
modules with :class:`LoRALinear` wrappers that share the frozen base weight.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn import init
from repro.nn.layers import Linear
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class LoRALinear(Module):
    """A frozen linear layer plus a trainable low-rank update.

    Computes ``y = x @ (W + (alpha / r) * B A).T + b`` where ``W`` and ``b``
    are frozen and only ``A`` (``r x in``) and ``B`` (``out x r``) are
    trained.  ``B`` is initialised to zero so the wrapped layer starts out
    exactly equal to the base layer.
    """

    def __init__(
        self,
        base: Linear,
        rank: int = 8,
        alpha: float = 16.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rank < 1:
            raise ValueError("LoRA rank must be >= 1")
        rng = rng or np.random.default_rng()
        self.in_features = base.in_features
        self.out_features = base.out_features
        self.rank = rank
        self.alpha = alpha
        self.scaling = alpha / rank
        self.base = base
        self.base.freeze()
        self.lora_a = Parameter(init.normal((rank, base.in_features), std=0.02, rng=rng))
        self.lora_b = Parameter(init.zeros((base.out_features, rank)))

    def forward(self, x: Tensor) -> Tensor:
        out = self.base(x)
        update = x.matmul(self.lora_a.transpose()).matmul(self.lora_b.transpose())
        return out + update * self.scaling

    def merged_weight(self) -> np.ndarray:
        """Return the effective weight ``W + scaling * B A`` as an array."""
        return self.base.weight.data + self.scaling * (self.lora_b.data @ self.lora_a.data)

    def __repr__(self) -> str:
        return (
            f"LoRALinear(in={self.in_features}, out={self.out_features}, "
            f"rank={self.rank}, alpha={self.alpha})"
        )


_DEFAULT_TARGETS = ("q_proj", "k_proj", "v_proj", "fc_in", "fc_out")


def attach_lora(
    module: Module,
    rank: int = 8,
    alpha: float = 16.0,
    target_names: Sequence[str] = _DEFAULT_TARGETS,
    coverage: float = 1.0,
    rng: Optional[np.random.Generator] = None,
) -> List[str]:
    """Attach LoRA adapters to matching linear sub-modules of ``module``.

    Parameters
    ----------
    module:
        Root module (typically the GPT-2 backbone).
    rank:
        Low-rank dimension ``r`` (the paper sweeps 4/8/16/32 and picks 8).
    alpha:
        LoRA scaling numerator.
    target_names:
        Attribute names whose :class:`Linear` children should be wrapped.
        The defaults cover attention Q/K/V and the feed-forward layers, as
        in the paper.
    coverage:
        Fraction ``n`` of transformer blocks to adapt (the paper sweeps
        1, 1/2, 1/3).  Blocks are counted from the top (closest to the
        output), which is where adaptation matters most.
    rng:
        Random generator for the ``A`` matrices.

    Returns
    -------
    list of str
        Qualified names of the wrapped linear layers.
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    rng = rng or np.random.default_rng()

    blocks = _find_blocks(module)
    if blocks:
        num_adapted = max(1, int(round(len(blocks) * coverage)))
        adapted_blocks = set(id(b) for b in blocks[-num_adapted:])
    else:
        adapted_blocks = None

    wrapped: List[str] = []
    for qualified_name, owner in _owners_of_target_linears(module, target_names):
        if adapted_blocks is not None and not _within(owner_chain=qualified_name, module=module, allowed=adapted_blocks, blocks=blocks):
            continue
        attr = qualified_name.rsplit(".", 1)[-1]
        base = getattr(owner, attr)
        if isinstance(base, LoRALinear):
            continue
        setattr(owner, attr, LoRALinear(base, rank=rank, alpha=alpha, rng=rng))
        wrapped.append(qualified_name)
    return wrapped


def lora_parameters(module: Module) -> List[Parameter]:
    """All trainable LoRA parameters below ``module``."""
    params: List[Parameter] = []
    for name, param in module.named_parameters():
        if ".lora_a" in name or ".lora_b" in name or name.endswith("lora_a") or name.endswith("lora_b"):
            params.append(param)
    return params


def mark_only_lora_trainable(module: Module) -> Tuple[int, int]:
    """Freeze every parameter except LoRA matrices.

    Returns ``(trainable_count, total_count)`` of parameter entries.
    """
    total = 0
    trainable = 0
    for name, param in module.named_parameters():
        total += param.size
        is_lora = "lora_a" in name or "lora_b" in name
        param.requires_grad = is_lora
        if is_lora:
            trainable += param.size
    return trainable, total


# ----------------------------------------------------------------------
# Internal helpers
# ----------------------------------------------------------------------
def _find_blocks(module: Module) -> List[Module]:
    from repro.nn.transformer import TransformerBlock

    return [m for m in module.modules() if isinstance(m, TransformerBlock)]


def _owners_of_target_linears(module: Module, target_names: Sequence[str]) -> Iterable[Tuple[str, Module]]:
    """Yield ``(qualified_name, owner_module)`` for every matching Linear."""
    targets = set(target_names)
    for name, owner in module.named_modules():
        for attr, child in list(owner._modules.items()):
            if attr in targets and isinstance(child, Linear):
                qualified = f"{name}.{attr}" if name else attr
                yield qualified, owner


def _within(owner_chain: str, module: Module, allowed: set, blocks: List[Module]) -> bool:
    """Check whether the linear at ``owner_chain`` lives inside an adapted block."""
    block_names = {}
    for name, mod in module.named_modules():
        if id(mod) in {id(b) for b in blocks}:
            block_names[name] = id(mod)
    for block_name, block_id in block_names.items():
        if block_name and owner_chain.startswith(block_name + "."):
            return block_id in allowed
    # Linears outside any transformer block (e.g. task heads) are never
    # adapted through the coverage mechanism.
    return False
