"""Loss functions used across BIGCity and the baselines."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor, fused_enabled


def _ensure_tensor(value) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(value)


def cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Cross-entropy between raw ``logits`` and integer class ``targets``.

    ``logits`` has shape ``(..., num_classes)`` and ``targets`` the matching
    leading shape of integer labels.  Uses the single-node fused kernel
    (logits -> loss with analytic gradient) unless fusion is disabled.
    """
    if fused_enabled():
        return F.fused_cross_entropy(logits, targets, reduction=reduction)
    targets = np.asarray(targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64)
    log_probs = logits.log_softmax(axis=-1)
    flat = log_probs.reshape(-1, logits.shape[-1])
    index = (np.arange(flat.shape[0]), targets.reshape(-1))
    picked = flat[index]
    loss = -picked
    return _reduce(loss, reduction)


def mse_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    target = _ensure_tensor(target).detach()
    diff = prediction - target
    return _reduce(diff * diff, reduction)


def mae_loss(prediction: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean absolute error."""
    target = _ensure_tensor(target).detach()
    return _reduce((prediction - target).abs(), reduction)


def huber_loss(prediction: Tensor, target, delta: float = 1.0, reduction: str = "mean") -> Tensor:
    """Huber (smooth L1) loss, robust to outliers in traffic-state regression."""
    target = _ensure_tensor(target).detach()
    diff = prediction - target
    abs_diff = diff.abs()
    quadratic = abs_diff.clip(0.0, delta)
    linear = abs_diff - quadratic
    loss = quadratic * quadratic * 0.5 + linear * delta
    return _reduce(loss, reduction)


def binary_cross_entropy_with_logits(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    target = _ensure_tensor(targets).detach()
    # log(1 + exp(-|x|)) + max(x, 0) - x * y
    max_part = logits.clip(0.0, np.inf)
    softplus = ((-(logits.abs())).exp() + 1.0).log()
    loss = max_part - logits * target + softplus
    return _reduce(loss, reduction)


def info_nce(anchor: Tensor, positive: Tensor, temperature: float = 0.1) -> Tensor:
    """InfoNCE contrastive loss over in-batch negatives.

    ``anchor`` and ``positive`` are ``(batch, dim)`` embeddings; the i-th
    positive is the matching pair and all other rows serve as negatives.
    Used by the contrastive trajectory-representation baselines (JCLRNT,
    START) and available for extensions of BIGCity.
    """
    if anchor.shape != positive.shape:
        raise ValueError("anchor and positive must have the same shape")
    anchor_norm = _l2_normalise(anchor)
    positive_norm = _l2_normalise(positive)
    logits = anchor_norm.matmul(positive_norm.transpose()) * (1.0 / temperature)
    labels = np.arange(anchor.shape[0])
    return cross_entropy(logits, labels)


def masked_mse_loss(prediction: Tensor, target, mask: np.ndarray) -> Tensor:
    """MSE restricted to positions where ``mask`` is True."""
    mask_dtype = prediction.data.dtype if prediction.data.dtype.kind == "f" else np.float64
    mask = np.asarray(mask, dtype=mask_dtype)
    target = _ensure_tensor(target).detach()
    diff = prediction - target
    weighted = diff * diff * Tensor(mask)
    denom = max(float(mask.sum()), 1.0)
    return weighted.sum() * (1.0 / denom)


def _l2_normalise(x: Tensor, eps: float = 1e-9) -> Tensor:
    norm = (x * x).sum(axis=-1, keepdims=True).clip(eps, np.inf).sqrt()
    return x / norm


def _reduce(loss: Tensor, reduction: str) -> Tensor:
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
