"""Attention mechanisms: multi-head self/cross attention and attention pooling."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, fused_enabled, is_grad_enabled


class KVCache:
    """Per-layer key/value cache for autoregressive decoding.

    Keys and values are stored in pre-allocated buffers that grow by doubling,
    so appending one decode step is amortised O(1) instead of re-encoding the
    whole prefix.  The cache holds plain arrays (inference only); attention
    layers refuse to use it while gradients are being recorded.
    """

    __slots__ = ("_keys", "_values", "_length")

    def __init__(self) -> None:
        self._keys: Optional[np.ndarray] = None
        self._values: Optional[np.ndarray] = None
        self._length = 0

    @property
    def length(self) -> int:
        """Number of cached key/value positions."""
        return self._length

    def reset(self) -> None:
        """Empty the cache (a fresh decode session may use any batch shape)."""
        self._keys = None
        self._values = None
        self._length = 0

    def append(self, keys: np.ndarray, values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Append ``(batch, heads, new, head_dim)`` keys/values; return the full views."""
        new = keys.shape[2]
        needed = self._length + new
        if self._keys is None:
            capacity = max(16, needed)
            shape = keys.shape[:2] + (capacity,) + keys.shape[3:]
            self._keys = np.empty(shape, dtype=keys.dtype)
            self._values = np.empty(shape, dtype=values.dtype)
            self._length = 0
            needed = new
        elif self._keys.shape[:2] != keys.shape[:2]:
            # Callers (GPT2Model, MultiHeadAttention) compute position and
            # mask offsets from the cache length BEFORE appending, so a
            # batch/head mismatch cannot be absorbed here without silently
            # corrupting those offsets — it must be a new decode session.
            raise ValueError(
                f"cache holds batch/head shape {self._keys.shape[:2]} but got "
                f"{keys.shape[:2]}; use fresh caches (new_caches()) for a new batch"
            )
        elif needed > self._keys.shape[2]:
            capacity = max(2 * self._keys.shape[2], needed)
            grown_k = np.empty(self._keys.shape[:2] + (capacity,) + self._keys.shape[3:], dtype=self._keys.dtype)
            grown_v = np.empty_like(grown_k)
            grown_k[:, :, : self._length] = self._keys[:, :, : self._length]
            grown_v[:, :, : self._length] = self._values[:, :, : self._length]
            self._keys, self._values = grown_k, grown_v
        self._keys[:, :, self._length : needed] = keys
        self._values[:, :, self._length : needed] = values
        self._length = needed
        return self._keys[:, :, : self._length], self._values[:, :, : self._length]


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``key_value=None``) and cross-attention, causal
    masking (used by the GPT-2 backbone) and padding masks.  Inputs are shaped
    ``(batch, sequence, d_model)``.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = False,
        record_attention: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.causal = causal
        #: Retain the ``(batch, heads, q_len, kv_len)`` attention weights of
        #: every forward pass on ``last_attention``.  Off by default: keeping
        #: one such array alive per layer per step is pure overhead unless an
        #: inspection/visualisation path explicitly asks for it.
        self.record_attention = record_attention
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout)
        self.resid_dropout = Dropout(dropout)
        self._last_attention: Optional[np.ndarray] = None

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key_value: Optional[Tensor] = None,
        padding_mask: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
    ) -> Tensor:
        """Attend from ``query`` to ``key_value`` (or to itself).

        Parameters
        ----------
        query:
            ``(batch, q_len, d_model)`` tensor.
        key_value:
            ``(batch, kv_len, d_model)`` tensor; defaults to ``query``.
        padding_mask:
            Boolean ``(batch, kv_len)`` array, ``True`` at padded key
            positions to exclude from attention.
        cache:
            Optional :class:`KVCache` for autoregressive decoding: the new
            keys/values are appended and attention runs over the full cached
            prefix, so each decode step costs O(prefix) instead of
            re-encoding it.  Inference only (requires ``no_grad``).
        """
        source = query if key_value is None else key_value
        q_len = query.shape[1]
        offset = 0
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(source))
        v = self._split_heads(self.v_proj(source))
        if cache is not None:
            if is_grad_enabled():
                raise RuntimeError(
                    "KV-cached attention is an inference fast path; wrap the call in no_grad()"
                )
            if key_value is not None:
                raise ValueError("KV caching only applies to self-attention")
            offset = cache.length
            cached_k, cached_v = cache.append(k.data, v.data)
            k, v = Tensor(cached_k), Tensor(cached_v)
        kv_len = k.shape[2]

        use_fused = fused_enabled()
        mask: Optional[np.ndarray] = None
        is_causal = False
        if self.causal and key_value is not None and kv_len != q_len:
            raise ValueError("causal attention requires self-attention with equal lengths")
        if use_fused:
            # Fast path: unpadded causal attention passes only a flag (the
            # kernel exploits the mask's triangular structure instead of
            # materialising it); otherwise causal masks are cached per shape
            # (None when nothing would be masked) and the padding branch is
            # skipped entirely for unpadded batches.
            if padding_mask is not None:
                pad = np.asarray(padding_mask, dtype=bool)
                if pad.any():
                    mask = pad[:, None, None, :]
            if self.causal:
                if mask is None and offset == 0:
                    is_causal = True
                else:
                    causal = F.cached_causal_mask(q_len, kv_len, offset=offset)
                    if causal is not None:
                        mask = causal if mask is None else (mask | causal)
        else:
            # Legacy engine path (kept for A/B benchmarking): a fresh
            # ``(1, 1, q_len, kv_len)`` mask is built and scanned every call,
            # exactly as the original formulation did.
            legacy = np.zeros((1, 1, q_len, kv_len), dtype=bool)
            if self.causal:
                legacy = legacy | np.triu(np.ones((q_len, kv_len), dtype=bool), k=1 + offset)[None, None]
            if padding_mask is not None:
                legacy = legacy | np.asarray(padding_mask, dtype=bool)[:, None, None, :]
            if legacy.any():
                mask = legacy

        scale = 1.0 / np.sqrt(self.head_dim)
        if use_fused:
            dropout_p = self.attn_dropout.p if self.training else 0.0
            fused = F.scaled_dot_product_attention(
                q,
                k,
                v,
                mask=mask,
                dropout_p=dropout_p,
                training=self.training,
                scale=scale,
                return_weights=self.record_attention,
                is_causal=is_causal,
            )
            if self.record_attention:
                context, weights = fused
                self._last_attention = weights
            else:
                context = fused
        else:
            scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale
            if mask is not None:
                scores = scores.masked_fill(mask, -1e9)
            attention = scores.softmax(axis=-1)
            if self.record_attention:
                self._last_attention = attention.data
            attention = self.attn_dropout(attention)
            context = attention.matmul(v)
        out = self.out_proj(self._merge_heads(context))
        return self.resid_dropout(out)

    @property
    def last_attention(self) -> Optional[np.ndarray]:
        """Attention weights from the latest forward pass.

        Populated only when ``record_attention`` is enabled; retaining the
        weights for every call is gated off by default.
        """
        return self._last_attention


class CrossAttentionPool(Module):
    """Fusion attention used by the ST tokenizer (Eq. 6–7 in the paper).

    Every road segment attends over all segments through a learnable query
    projection, producing fused spatial representations that capture
    long-range dependencies beyond the GAT neighbourhood.
    """

    def __init__(self, d_model: int, dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.d_model = d_model
        self.query_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, h: Tensor) -> Tensor:
        """Fuse representations ``h`` of shape ``(num_segments, d_model)``.

        Implements ``alpha_ij = q_i . h_j / sqrt(2 D_h)`` followed by a
        normalised weighted sum (Eq. 7).  The attended context is added to
        each segment's own representation (residual connection) so that the
        fused output keeps segment identity while gaining long-range context;
        without the residual the early-training attention is near uniform and
        every segment collapses to the same vector.
        """
        q = self.query_proj(h)
        scale = 1.0 / np.sqrt(2.0 * self.d_model)
        scores = q.matmul(h.transpose()) * scale
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        return h + weights.matmul(h)
