"""Attention mechanisms: multi-head self/cross attention and attention pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.layers import Dropout, Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class MultiHeadAttention(Module):
    """Multi-head scaled dot-product attention.

    Supports self-attention (``key_value=None``) and cross-attention, causal
    masking (used by the GPT-2 backbone) and padding masks.  Inputs are shaped
    ``(batch, sequence, d_model)``.
    """

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        dropout: float = 0.0,
        causal: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if d_model % num_heads != 0:
            raise ValueError(f"d_model={d_model} must be divisible by num_heads={num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.head_dim = d_model // num_heads
        self.causal = causal
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)
        self.attn_dropout = Dropout(dropout)
        self.resid_dropout = Dropout(dropout)
        self._last_attention: Optional[np.ndarray] = None

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor) -> Tensor:
        batch, heads, length, head_dim = x.shape
        return x.transpose(0, 2, 1, 3).reshape(batch, length, heads * head_dim)

    def forward(
        self,
        query: Tensor,
        key_value: Optional[Tensor] = None,
        padding_mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Attend from ``query`` to ``key_value`` (or to itself).

        Parameters
        ----------
        query:
            ``(batch, q_len, d_model)`` tensor.
        key_value:
            ``(batch, kv_len, d_model)`` tensor; defaults to ``query``.
        padding_mask:
            Boolean ``(batch, kv_len)`` array, ``True`` at padded key
            positions to exclude from attention.
        """
        source = query if key_value is None else key_value
        q = self._split_heads(self.q_proj(query))
        k = self._split_heads(self.k_proj(source))
        v = self._split_heads(self.v_proj(source))

        scale = 1.0 / np.sqrt(self.head_dim)
        scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale

        q_len = query.shape[1]
        kv_len = source.shape[1]
        mask = np.zeros((1, 1, q_len, kv_len), dtype=bool)
        if self.causal:
            if key_value is not None and kv_len != q_len:
                raise ValueError("causal attention requires self-attention with equal lengths")
            mask = mask | np.triu(np.ones((q_len, kv_len), dtype=bool), k=1)[None, None]
        if padding_mask is not None:
            pad = np.asarray(padding_mask, dtype=bool)[:, None, None, :]
            mask = mask | pad
        if mask.any():
            scores = scores.masked_fill(mask, -1e9)

        attention = scores.softmax(axis=-1)
        self._last_attention = attention.data
        attention = self.attn_dropout(attention)
        context = attention.matmul(v)
        out = self.out_proj(self._merge_heads(context))
        return self.resid_dropout(out)

    @property
    def last_attention(self) -> Optional[np.ndarray]:
        """Attention weights from the latest forward pass (for inspection)."""
        return self._last_attention


class CrossAttentionPool(Module):
    """Fusion attention used by the ST tokenizer (Eq. 6–7 in the paper).

    Every road segment attends over all segments through a learnable query
    projection, producing fused spatial representations that capture
    long-range dependencies beyond the GAT neighbourhood.
    """

    def __init__(self, d_model: int, dropout: float = 0.0, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.d_model = d_model
        self.query_proj = Linear(d_model, d_model, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, h: Tensor) -> Tensor:
        """Fuse representations ``h`` of shape ``(num_segments, d_model)``.

        Implements ``alpha_ij = q_i . h_j / sqrt(2 D_h)`` followed by a
        normalised weighted sum (Eq. 7).  The attended context is added to
        each segment's own representation (residual connection) so that the
        fused output keeps segment identity while gaining long-range context;
        without the residual the early-training attention is near uniform and
        every segment collapses to the same vector.
        """
        q = self.query_proj(h)
        scale = 1.0 / np.sqrt(2.0 * self.d_model)
        scores = q.matmul(h.transpose()) * scale
        weights = scores.softmax(axis=-1)
        weights = self.dropout(weights)
        return h + weights.matmul(h)
