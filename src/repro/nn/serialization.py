"""Saving and loading module state dicts as ``.npz`` archives."""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.nn.module import Module

PathLike = Union[str, os.PathLike]


def save_state_dict(module: Module, path: PathLike, metadata: Optional[Dict[str, str]] = None) -> Path:
    """Serialise ``module.state_dict()`` (plus optional metadata) to ``path``.

    The file is a standard ``numpy.savez_compressed`` archive; metadata is
    stored under the reserved key ``__metadata__`` as a JSON string.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = module.state_dict()
    arrays = dict(state)
    if metadata:
        arrays["__metadata__"] = np.array(json.dumps(metadata))
    np.savez_compressed(path, **arrays)
    return path


def load_state_dict(module: Module, path: PathLike, strict: bool = True) -> Dict[str, str]:
    """Load a ``.npz`` archive produced by :func:`save_state_dict` into ``module``.

    Returns the metadata dictionary (empty if none was stored).
    """
    path = Path(path)
    if not path.exists():
        # numpy appends .npz when saving without a suffix
        candidate = path.with_suffix(path.suffix + ".npz")
        if candidate.exists():
            path = candidate
        else:
            raise FileNotFoundError(path)
    with np.load(path, allow_pickle=False) as archive:
        metadata: Dict[str, str] = {}
        state = {}
        for key in archive.files:
            if key == "__metadata__":
                metadata = json.loads(str(archive[key]))
            else:
                state[key] = archive[key]
    module.load_state_dict(state, strict=strict)
    return metadata
