"""Graph attention network (GAT) layers.

The ST tokenizer (Sec. IV-B) encodes the static and dynamic features of the
road network with GATs over the road graph ``G = {R, A, E}``.  The layer
follows Velickovic et al. (2018): per-edge attention coefficients computed
from concatenated projected endpoint features, LeakyReLU, softmax over each
node's in-neighbourhood, optional multi-head concatenation/averaging.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.nn import init
from repro.nn.layers import Dropout
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor


class GraphAttentionLayer(Module):
    """A single graph-attention head over a dense adjacency matrix.

    Inputs are node features ``(num_nodes, in_features)`` and a binary
    adjacency matrix ``(num_nodes, num_nodes)``; self-loops are always added
    so every node attends at least to itself.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        dropout: float = 0.0,
        negative_slope: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.negative_slope = negative_slope
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng=rng))
        self.attn_src = Parameter(init.xavier_uniform((out_features, 1), rng=rng))
        self.attn_dst = Parameter(init.xavier_uniform((out_features, 1), rng=rng))
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        adjacency = np.asarray(adjacency, dtype=bool)
        num_nodes = adjacency.shape[0]
        if adjacency.shape != (num_nodes, num_nodes):
            raise ValueError("adjacency must be square")
        if x.shape[0] != num_nodes:
            raise ValueError("feature row count must match adjacency size")
        with_self_loops = adjacency | np.eye(num_nodes, dtype=bool)

        h = x.matmul(self.weight)
        # e_ij = LeakyReLU(a_src . h_i + a_dst . h_j); broadcast to a matrix.
        src_scores = h.matmul(self.attn_src)  # (N, 1)
        dst_scores = h.matmul(self.attn_dst)  # (N, 1)
        scores = (src_scores + dst_scores.transpose()).leaky_relu(self.negative_slope)
        scores = scores.masked_fill(~with_self_loops, -1e9)
        attention = scores.softmax(axis=-1)
        attention = self.dropout(attention)
        return attention.matmul(h)


class GAT(Module):
    """Multi-head, multi-layer GAT with ELU-style nonlinearity between layers.

    ``head_aggregation`` is ``"concat"`` for hidden layers and ``"mean"`` for
    the output layer, matching the reference GAT formulation.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        num_layers: int = 2,
        num_heads: int = 2,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.num_layers = num_layers
        self.num_heads = num_heads
        self.layers = ModuleList()
        dims_in = in_features
        for layer_idx in range(num_layers):
            is_last = layer_idx == num_layers - 1
            out_dim = out_features if is_last else hidden_features
            heads = ModuleList(
                [GraphAttentionLayer(dims_in, out_dim, dropout=dropout, rng=rng) for _ in range(num_heads)]
            )
            self.layers.append(heads)
            dims_in = out_dim if is_last else out_dim * num_heads

    def forward(self, x: Tensor, adjacency: np.ndarray) -> Tensor:
        h = x
        for layer_idx, heads in enumerate(self.layers):
            outputs = [head(h, adjacency) for head in heads]
            is_last = layer_idx == self.num_layers - 1
            if is_last:
                h = outputs[0]
                for extra in outputs[1:]:
                    h = h + extra
                h = h * (1.0 / len(outputs))
            else:
                h = Tensor.concat(outputs, axis=-1).relu()
        return h


def normalized_adjacency(adjacency: np.ndarray, add_self_loops: bool = True) -> np.ndarray:
    """Symmetrically normalised adjacency ``D^{-1/2} (A + I) D^{-1/2}``.

    Several baseline models (DCRNN, GWNET, MTGNN, STGODE) propagate signals
    with normalised adjacency matrices rather than attention; this helper is
    shared by all of them.
    """
    adjacency = np.asarray(adjacency, dtype=np.float64)
    if add_self_loops:
        adjacency = adjacency + np.eye(adjacency.shape[0])
    degrees = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]


def random_walk_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Row-normalised transition matrix ``D^{-1} A`` used by diffusion convolution."""
    adjacency = np.asarray(adjacency, dtype=np.float64)
    degrees = adjacency.sum(axis=1)
    inv = 1.0 / np.maximum(degrees, 1e-12)
    return adjacency * inv[:, None]
