"""Module / parameter containers mirroring the ``torch.nn.Module`` contract."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules.

    Sub-classes register :class:`Parameter` and :class:`Module` instances as
    attributes; ``parameters()``, ``state_dict()`` and ``train()/eval()``
    traverse the registration tree automatically.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def trainable_parameters(self) -> List[Parameter]:
        return [p for p in self.parameters() if p.requires_grad]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def children(self) -> Iterator["Module"]:
        return iter(self._modules.values())

    def num_parameters(self, trainable_only: bool = False) -> int:
        params = self.trainable_parameters() if trainable_only else self.parameters()
        return int(sum(p.size for p in params))

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for name, param in self._parameters.items():
            state[f"{prefix}{name}"] = param.data.copy()
        for name, buffer in self._buffers.items():
            state[f"{prefix}{name}"] = np.asarray(buffer).copy()
        for name, module in self._modules.items():
            state.update(module.state_dict(prefix=f"{prefix}{name}."))
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = self.state_dict()
        missing = [k for k in own if k not in state]
        unexpected = [k for k in state if k not in own]
        if strict and (missing or unexpected):
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={unexpected}")
        self._load(state, prefix="")

    def _load(self, state: Dict[str, np.ndarray], prefix: str) -> None:
        for name, param in self._parameters.items():
            key = f"{prefix}{name}"
            if key in state:
                value = np.asarray(state[key])
                if value.shape != param.data.shape:
                    raise ValueError(f"shape mismatch for {key}: {value.shape} vs {param.data.shape}")
                param.data = value.astype(param.data.dtype, copy=True)
        for name in list(self._buffers):
            key = f"{prefix}{name}"
            if key in state:
                self._buffers[name] = np.asarray(state[key]).copy()
                object.__setattr__(self, name, self._buffers[name])
        for name, module in self._modules.items():
            module._load(state, prefix=f"{prefix}{name}.")

    # ------------------------------------------------------------------
    # Modes and gradient helpers
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    def freeze(self) -> "Module":
        """Mark every parameter of this module as non-trainable."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        lines = [self.__class__.__name__ + "("]
        for name, module in self._modules.items():
            sub = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {sub}")
        lines.append(")")
        return "\n".join(lines) if len(lines) > 2 else f"{self.__class__.__name__}()"


class ModuleList(Module):
    """An indexable list of sub-modules."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        self.add_module(str(len(self._items)), module)
        self._items.append(module)
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def forward(self, *args, **kwargs):  # pragma: no cover - containers are not called
        raise RuntimeError("ModuleList is a container and cannot be called")


class Sequential(Module):
    """Chain modules, feeding each output into the next module."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules:
            self.add_module(str(len(self._items)), module)
            self._items.append(module)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def forward(self, x):
        for module in self._items:
            x = module(x)
        return x
