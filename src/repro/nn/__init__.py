"""A small, self-contained neural-network runtime built on NumPy.

This package is the substrate BIGCity's reference implementation obtains from
PyTorch: a reverse-mode autograd engine (:mod:`repro.nn.tensor`), standard
layers (:mod:`repro.nn.layers`), multi-head attention and GPT-2-style
transformer blocks (:mod:`repro.nn.attention`, :mod:`repro.nn.transformer`),
graph attention networks (:mod:`repro.nn.gat`), LoRA adapters
(:mod:`repro.nn.lora`), optimisers (:mod:`repro.nn.optim`) and losses
(:mod:`repro.nn.losses`).

Everything runs on CPU with float64/float32 NumPy arrays and is sized for
laptop-scale experiments; the APIs intentionally mirror the PyTorch
equivalents so that the BIGCity model code in :mod:`repro.core` reads like
the architecture described in the paper.

**Compute dtype.**  The engine defaults to float64; wrap model construction
*and* the training/inference calls in ``compute_dtype("float32")`` to run the
whole stack — parameters, activations, gradients — in float32, which roughly
halves memory traffic on the memory-bound kernels (measured in the
``dtype_policy`` section of ``BENCH_engine.json``).  Numerically delicate
accumulations (loss reductions, Adam moments) stay in float64 internally.
"""

from repro.nn.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    fused_kernels,
    fused_enabled,
    compute_dtype,
    get_compute_dtype,
    set_compute_dtype,
)
from repro.nn import functional
from repro.nn.attention import KVCache
from repro.nn.module import Module, Parameter, ModuleList, Sequential
from repro.nn.layers import (
    Linear,
    MLP,
    Embedding,
    LayerNorm,
    Dropout,
    ReLU,
    GELU,
    Tanh,
    Sigmoid,
    Identity,
)
from repro.nn.attention import MultiHeadAttention, CrossAttentionPool
from repro.nn.transformer import (
    TransformerBlock,
    GPT2Config,
    GPT2Model,
    TransformerEncoder,
)
from repro.nn.gat import GraphAttentionLayer, GAT
from repro.nn.rnn import GRU, GRUCell
from repro.nn.tcn import CausalConv1d, TemporalBlock, TemporalConvNet
from repro.nn.lora import LoRALinear, attach_lora, lora_parameters, mark_only_lora_trainable
from repro.nn.optim import SGD, Adam, AdamW, StepLR, CosineAnnealingLR
from repro.nn.losses import (
    cross_entropy,
    mse_loss,
    mae_loss,
    binary_cross_entropy_with_logits,
    huber_loss,
    info_nce,
)
from repro.nn import init
from repro.nn.serialization import save_state_dict, load_state_dict

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "fused_kernels",
    "fused_enabled",
    "compute_dtype",
    "get_compute_dtype",
    "set_compute_dtype",
    "KVCache",
    "functional",
    "Module",
    "Parameter",
    "ModuleList",
    "Sequential",
    "Linear",
    "MLP",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MultiHeadAttention",
    "CrossAttentionPool",
    "TransformerBlock",
    "GPT2Config",
    "GPT2Model",
    "TransformerEncoder",
    "GraphAttentionLayer",
    "GAT",
    "GRU",
    "GRUCell",
    "CausalConv1d",
    "TemporalBlock",
    "TemporalConvNet",
    "LoRALinear",
    "attach_lora",
    "lora_parameters",
    "mark_only_lora_trainable",
    "SGD",
    "Adam",
    "AdamW",
    "StepLR",
    "CosineAnnealingLR",
    "cross_entropy",
    "mse_loss",
    "mae_loss",
    "binary_cross_entropy_with_logits",
    "huber_loss",
    "info_nce",
    "init",
    "save_state_dict",
    "load_state_dict",
]
