"""Reverse-mode automatic differentiation on top of NumPy arrays.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records the operations
applied to it so that gradients can be computed with :meth:`Tensor.backward`.
The design follows the classic tape-based approach: every operation returns a
new tensor holding a closure that knows how to push gradients back to its
parents, and ``backward`` walks the graph in reverse topological order.

Only the operations needed by the rest of the library are implemented, but
they cover the usual deep-learning workload: broadcasting arithmetic, matrix
multiplication, reductions, indexing, concatenation, common activations and
shape manipulation.

**Compute-dtype policy.**  The engine runs in float64 by default; the
:func:`compute_dtype` context manager (or :func:`set_compute_dtype`) switches
the whole stack — parameters created by :mod:`repro.nn.init`, activations,
and gradients — to float32, roughly halving memory traffic on the
memory-bound kernels.  The policy is *downcast-only*: float64 inputs are cast
down to the active policy dtype when tensors are constructed, while
explicitly lower-precision inputs (e.g. a float32 array under the default
float64 policy) are left untouched, so the default policy is bit-identical to
the historical engine.  Gradients follow each tensor's own dtype (a float32
tensor accumulates float32 gradients); reductions that are numerically
delicate — ``sum``/``mean`` over float32 data, Adam's moment estimates —
accumulate in float64 internally and cast back.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, list, tuple, "Tensor"]

#: Grad mode is *per-thread*: the serving layer runs inference ticks on
#: worker threads concurrently with each other (multi-replica pools) and
#: with whatever the main thread is doing, so a process-wide flag would let
#: one thread's ``no_grad()`` exit re-enable grad mid-rollout on another.
_GRAD_STATE = threading.local()

_FUSED_ENABLED = True

_COMPUTE_DTYPE = np.dtype(np.float64)

#: True only under a float32 policy, so the per-construction downcast check in
#: ``_as_array`` costs one global-bool read on the (default) float64 path.
_DOWNCAST_ACTIVE = False

_COMPUTE_DTYPES = {"float32": np.dtype(np.float32), "float64": np.dtype(np.float64)}


def get_compute_dtype() -> np.dtype:
    """Return the active compute-policy dtype (float64 unless switched)."""
    return _COMPUTE_DTYPE


def set_compute_dtype(dtype) -> np.dtype:
    """Globally set the compute policy; accepts ``"float32"``/``"float64"``.

    Returns the previous policy dtype so callers can restore it.
    """
    global _COMPUTE_DTYPE, _DOWNCAST_ACTIVE
    if isinstance(dtype, str):
        if dtype not in _COMPUTE_DTYPES:
            raise ValueError(f"unknown compute dtype {dtype!r}; choose from {sorted(_COMPUTE_DTYPES)}")
        dtype = _COMPUTE_DTYPES[dtype]
    dtype = np.dtype(dtype)
    if dtype not in _COMPUTE_DTYPES.values():
        raise ValueError(f"compute dtype must be float32 or float64, got {dtype!r}")
    previous = _COMPUTE_DTYPE
    _COMPUTE_DTYPE = dtype
    _DOWNCAST_ACTIVE = dtype != np.float64
    return previous


@contextlib.contextmanager
def compute_dtype(dtype):
    """Context manager selecting the engine-wide compute dtype.

    ``with compute_dtype("float32"): ...`` makes every tensor constructed
    inside the block — parameters, activations and the gradients flowing back
    through them — float32.  Float64 inputs are downcast on construction;
    already-lower-precision inputs are never upcast, so nesting policies is
    safe and the default ``"float64"`` policy reproduces the historical
    engine exactly.
    """
    previous = set_compute_dtype(dtype)
    try:
        yield
    finally:
        set_compute_dtype(previous)


def is_grad_enabled() -> bool:
    """Return ``True`` when operations record gradient information (this thread)."""
    return getattr(_GRAD_STATE, "enabled", True)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (inference mode).

    The flag is thread-local: disabling grad on a serving worker never
    affects a training loop or another tick running concurrently.
    """
    previous = is_grad_enabled()
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


def fused_enabled() -> bool:
    """Return ``True`` when the fused fast-path kernels are active."""
    return _FUSED_ENABLED


def set_fused_enabled(enabled: bool) -> None:
    """Globally enable/disable the fused kernels (used by the perf harness)."""
    global _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Context manager selecting the fused or the composed (legacy) engine path.

    The composed path records every softmax / layer-norm / attention step as
    separate tape nodes exactly like the original engine; the fused path
    collapses each of those patterns into a single node with an analytic
    backward.  Both produce the same values and gradients (see
    ``tests/test_nn_fused.py``), so this switch exists for A/B benchmarking
    and for debugging suspected kernel issues.
    """
    global _FUSED_ENABLED
    previous = _FUSED_ENABLED
    _FUSED_ENABLED = bool(enabled)
    try:
        yield
    finally:
        _FUSED_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` (undo NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size one.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        value = value.data
    array = np.asarray(value, dtype=dtype)
    if array.dtype == np.float16:
        array = array.astype(np.float32)
    if _DOWNCAST_ACTIVE and dtype is None and array.dtype == np.float64:
        # Downcast-only policy: float64 data drops to a float32 policy, but a
        # float32 array under the float64 policy keeps its precision.
        array = array.astype(_COMPUTE_DTYPE)
    return array


def _grad_dtype(data: np.ndarray) -> np.dtype:
    """Dtype gradients of ``data`` accumulate in (its own dtype for floats)."""
    return data.dtype if data.dtype.kind == "f" else np.dtype(np.float64)


def apply_op(
    data: np.ndarray,
    parents: Sequence["Tensor"],
    backward: Callable[[np.ndarray], None],
) -> "Tensor":
    """Create a tensor recorded as ONE tape node over ``parents``.

    This is the building block of the fused kernels in
    :mod:`repro.nn.functional`: an arbitrary composite computation (attention,
    layer-norm, cross-entropy, ...) runs its forward pass in plain NumPy and
    registers a single ``backward`` closure that pushes gradients to every
    parent via ``Tensor._accumulate``, instead of recording 5-10 intermediate
    nodes with full-size temporaries.
    """
    parents = tuple(p for p in parents if isinstance(p, Tensor))
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)
    out = Tensor(data, requires_grad=requires)
    if requires:
        out._parents = parents
        out._backward = backward
    return out


class Tensor:
    """A NumPy-backed tensor with reverse-mode automatic differentiation."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype=None,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data, dtype=dtype)
        if self.data.dtype.kind not in "fiub":
            raise TypeError(f"unsupported dtype {self.data.dtype!r}")
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: Optional[np.ndarray] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def astype(self, dtype) -> "Tensor":
        """Cast to ``dtype`` as a differentiable tape op (for float targets).

        The backward casts the incoming gradient back to the source dtype, so
        dtype-policy code can move tensors between float32 and float64 without
        silently detaching them from the tape.  Casts to non-float dtypes are
        not differentiable and return a detached tensor, as before.
        """
        dtype = np.dtype(dtype)
        data = self.data.astype(dtype)
        # The explicit dtype bypasses the construction-time downcast policy:
        # an upcast to float64 inside a float32 region must stick.
        if dtype.kind != "f" or self.data.dtype.kind != "f":
            return Tensor(data, requires_grad=False, dtype=dtype)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)

        requires = is_grad_enabled() and self.requires_grad
        out = Tensor(data, requires_grad=requires, dtype=dtype)
        if requires:
            out._parents = (self,)
            out._backward = backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _ensure(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make_result(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        dtype = self.data.dtype
        grad = _unbroadcast(np.asarray(grad, dtype=dtype if dtype.kind == "f" else np.float64), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Accumulate a gradient buffer whose ownership transfers to this tensor.

        The fused kernels hand in freshly allocated arrays that nothing else
        references, so the defensive copy of :meth:`_accumulate` (and its
        re-broadcast check) would be pure overhead; the buffer is adopted
        directly on first accumulation and added in place afterwards.  Callers
        must pass a float array of exactly ``self.shape`` that they will not
        touch again.
        """
        if grad.shape != self.data.shape or grad.dtype != self.data.dtype:
            self._accumulate(grad)
            return
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Backpropagate from this tensor.

        Parameters
        ----------
        grad:
            Gradient of the final objective with respect to this tensor. If
            omitted, the tensor must be a scalar and the gradient defaults to
            one.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data, dtype=_grad_dtype(self.data))
        grad = _as_array(grad, dtype=_grad_dtype(self.data))

        # Iterative topological sort to avoid recursion limits on deep graphs.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            node._backward(node.grad)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(grad)

        return self._make_result(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make_result(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad)
            if other.requires_grad:
                other._accumulate(-grad)

        return self._make_result(data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * other.data)
            if other.requires_grad:
                other._accumulate(grad * self.data)

        return self._make_result(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / other.data)
            if other.requires_grad:
                other._accumulate(-grad * self.data / (other.data**2))

        return self._make_result(data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make_result(data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other = self._ensure(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    grad_a = np.expand_dims(grad, -1) * b
                elif a.ndim == 1:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                else:
                    grad_a = grad @ np.swapaxes(b, -1, -2)
                self._accumulate(_unbroadcast(grad_a, a.shape))
            if other.requires_grad:
                if a.ndim == 1:
                    grad_b = np.outer(a, grad) if b.ndim == 2 else a * grad
                elif b.ndim == 1:
                    grad_b = (np.swapaxes(a, -1, -2) @ np.expand_dims(grad, -1))[..., 0]
                else:
                    grad_b = np.swapaxes(a, -1, -2) @ grad
                other._accumulate(_unbroadcast(grad_b, b.shape))

        return self._make_result(data, (self, other), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if self.data.dtype == np.float32:
            # Float32 policy: reductions (losses, norms) accumulate in float64
            # and cast back, so long sums keep full precision.
            data = self.data.sum(axis=axis, keepdims=keepdims, dtype=np.float64).astype(np.float32)
        else:
            data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_full = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad_full = np.expand_dims(grad_full, ax)
            self._accumulate(np.broadcast_to(grad_full, self.data.shape))

        return self._make_result(data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axis is None:
                mask = (self.data == self.data.max()).astype(_grad_dtype(self.data))
                mask /= mask.sum()
                self._accumulate(mask * grad)
            else:
                expanded_max = self.data.max(axis=axis, keepdims=True)
                mask = (self.data == expanded_max).astype(_grad_dtype(self.data))
                mask /= mask.sum(axis=axis, keepdims=True)
                grad_full = grad if keepdims else np.expand_dims(grad, axis)
                self._accumulate(mask * grad_full)

        return self._make_result(data, (self,), backward)

    # ------------------------------------------------------------------
    # Elementwise functions
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return self._make_result(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make_result(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / np.maximum(data, 1e-12))

        return self._make_result(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return self._make_result(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return self._make_result(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return self._make_result(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(data, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = (self.data > 0).astype(self.data.dtype)
        slope = mask + (1.0 - mask) * negative_slope
        data = self.data * slope

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * slope)

        return self._make_result(data, (self,), backward)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation, as in GPT-2)."""
        c = np.sqrt(2.0 / np.pi)
        x = self.data
        inner = c * (x + 0.044715 * x**3)
        tanh_inner = np.tanh(inner)
        data = 0.5 * x * (1.0 + tanh_inner)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            sech2 = 1.0 - tanh_inner**2
            d_inner = c * (1.0 + 3 * 0.044715 * x**2)
            d = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
            self._accumulate(grad * d)

        return self._make_result(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)
        mask = ((self.data >= low) & (self.data <= high)).astype(_grad_dtype(self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original_shape))

        return self._make_result(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._make_result(data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        if isinstance(index, Tensor):
            index = index.data
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data, dtype=_grad_dtype(self.data))
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make_result(data, (self,), backward)

    def index_select(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Gather rows along ``axis`` (used for embedding lookups)."""
        indices = np.asarray(indices)
        data = np.take(self.data, indices, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data, dtype=_grad_dtype(self.data))
            if axis == 0:
                flat_idx = indices.reshape(-1)
                flat_grad = grad.reshape(-1, *self.data.shape[1:]) if indices.ndim else grad
                np.add.at(full, flat_idx, flat_grad)
            else:
                moved = np.moveaxis(full, axis, 0)
                grad_moved = np.moveaxis(grad, axis, 0)
                np.add.at(moved, indices.reshape(-1), grad_moved)
                full = np.moveaxis(moved, 0, axis)
            self._accumulate(full)

        return self._make_result(data, (self,), backward)

    def pad_last_dims(self, pad_width: Sequence[Tuple[int, int]]) -> "Tensor":
        """Zero-pad the trailing dimensions of the tensor."""
        full_pad = [(0, 0)] * (self.data.ndim - len(pad_width)) + list(pad_width)
        data = np.pad(self.data, full_pad)
        slices = tuple(slice(p[0], p[0] + s) for p, s in zip(full_pad, self.data.shape))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[slices])

        return self._make_result(data, (self,), backward)

    # ------------------------------------------------------------------
    # Composite helpers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            dot = (grad * data).sum(axis=axis, keepdims=True)
            self._accumulate(data * (grad - dot))

        return self._make_result(data, (self,), backward)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        data = shifted - logsumexp
        softmax = np.exp(data)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_sum = grad.sum(axis=axis, keepdims=True)
            self._accumulate(grad - softmax * grad_sum)

        return self._make_result(data, (self,), backward)

    def masked_fill(self, mask: ArrayLike, value: float) -> "Tensor":
        mask_arr = _as_array(mask).astype(bool)
        data = np.where(mask_arr, value, self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(np.where(mask_arr, 0.0, grad))

        return self._make_result(data, (self,), backward)

    def dropout(self, p: float, training: bool = True) -> "Tensor":
        if not training or p <= 0.0:
            return self
        keep = 1.0 - p
        mask = (np.random.random(self.data.shape) < keep).astype(self.data.dtype) / keep
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make_result(data, (self,), backward)

    # ------------------------------------------------------------------
    # Static constructors and combinators
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: Sequence["Tensor"], axis: int = -1) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]

        def backward(grad: np.ndarray) -> None:
            offset = 0
            for tensor, size in zip(tensors, sizes):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(offset, offset + size)
                    tensor._accumulate(grad[tuple(slicer)])
                offset += size

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor._ensure(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for i, tensor in enumerate(tensors):
                if tensor.requires_grad:
                    tensor._accumulate(moved[i])

        requires = is_grad_enabled() and any(t.requires_grad for t in tensors)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(tensors)
            out._backward = backward
        return out

    @staticmethod
    def zeros(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype or _COMPUTE_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False, dtype=None) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype or _COMPUTE_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, requires_grad: bool = False, scale: float = 1.0, rng: Optional[np.random.Generator] = None) -> "Tensor":
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape) * scale, requires_grad=requires_grad)

    @staticmethod
    def arange(*args, dtype=None) -> "Tensor":
        return Tensor(np.arange(*args, dtype=dtype or _COMPUTE_DTYPE))
