"""Parameter initialisation schemes."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """He uniform initialisation for ReLU-style activations."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape, std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian initialisation (GPT-2 uses std=0.02)."""
    rng = rng or np.random.default_rng()
    return rng.normal(0.0, std, size=shape)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


def _fans(shape) -> tuple[int, int]:
    shape = tuple(int(s) for s in shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_out, fan_in = shape[0], int(np.prod(shape[1:]))
    return fan_in, fan_out
