"""Parameter initialisation schemes.

Every initialiser returns an array in the active compute-policy dtype (see
:func:`repro.nn.tensor.compute_dtype`), so models built under a float32
policy get float32 parameters without the layers having to care.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import get_compute_dtype


def _finalise(array: np.ndarray) -> np.ndarray:
    """Cast an initialiser's output to the active compute dtype."""
    return np.asarray(array, dtype=get_compute_dtype())


def xavier_uniform(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    limit = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return _finalise(rng.uniform(-limit, limit, size=shape))


def xavier_normal(shape, gain: float = 1.0, rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    rng = rng or np.random.default_rng()
    fan_in, fan_out = _fans(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return _finalise(rng.normal(0.0, std, size=shape))


def kaiming_uniform(shape, rng: np.random.Generator | None = None) -> np.ndarray:
    """He uniform initialisation for ReLU-style activations."""
    rng = rng or np.random.default_rng()
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _finalise(rng.uniform(-limit, limit, size=shape))


def normal(shape, std: float = 0.02, rng: np.random.Generator | None = None) -> np.ndarray:
    """Gaussian initialisation (GPT-2 uses std=0.02)."""
    rng = rng or np.random.default_rng()
    return _finalise(rng.normal(0.0, std, size=shape))


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=get_compute_dtype())


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=get_compute_dtype())


def _fans(shape) -> tuple[int, int]:
    shape = tuple(int(s) for s in shape)
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_out, fan_in = shape[0], int(np.prod(shape[1:]))
    return fan_in, fan_out
