"""Temporal convolutional layers (causal, dilated 1-D convolutions).

The traffic-state literature the paper compares against (Graph WaveNet,
MTGNN) models temporal dependencies with dilated causal convolutions rather
than recurrence.  This module provides the building blocks on top of the
autograd :class:`~repro.nn.tensor.Tensor`:

* :class:`CausalConv1d` — a dilated causal convolution over ``(B, L, C)``
  sequences (channel-last, matching the rest of the library).
* :class:`TemporalBlock` — the standard two-convolution residual block.
* :class:`TemporalConvNet` — a stack of blocks with exponentially growing
  dilation, exposing a receptive-field helper.

The convolution is expressed as a sum of shifted affine maps, so it reuses
the existing dense autograd kernels instead of requiring a dedicated
convolution primitive.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Dropout
from repro.nn.module import Module, ModuleList, Parameter
from repro.nn.tensor import Tensor

__all__ = ["CausalConv1d", "TemporalBlock", "TemporalConvNet"]


class CausalConv1d(Module):
    """Dilated causal 1-D convolution over channel-last sequences.

    Input and output have shape ``(batch, length, channels)``; output step
    ``t`` only depends on input steps ``t, t - d, ..., t - (k - 1) d`` where
    ``k`` is the kernel size and ``d`` the dilation, so the layer never leaks
    future information.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError("kernel_size must be at least 1")
        if dilation < 1:
            raise ValueError("dilation must be at least 1")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        # One (out, in) weight matrix per kernel tap; tap 0 is the current step.
        self.taps = ModuleList()
        self.weights = []
        for tap in range(kernel_size):
            weight = Parameter(init.xavier_uniform((out_channels, in_channels), rng=rng), name=f"tap{tap}")
            setattr(self, f"weight_{tap}", weight)
            self.weights.append(weight)
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @property
    def receptive_field(self) -> int:
        """Number of past steps (inclusive) that influence one output step."""
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 3:
            raise ValueError(f"CausalConv1d expects (batch, length, channels); got shape {x.shape}")
        batch, length, channels = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {channels}")
        pad = (self.kernel_size - 1) * self.dilation
        if pad > 0:
            zeros = Tensor(np.zeros((batch, pad, channels)))
            padded = Tensor.concat([zeros, x], axis=1)
        else:
            padded = x
        output = None
        for tap, weight in enumerate(self.weights):
            # Tap ``tap`` looks ``tap * dilation`` steps into the past.
            offset = pad - tap * self.dilation
            window = padded[:, offset : offset + length, :]
            term = F.linear(window, weight, None)
            output = term if output is None else output + term
        if self.bias is not None:
            output = output + self.bias
        return output


class TemporalBlock(Module):
    """Residual block of two causal convolutions with the same dilation."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 2,
        dilation: int = 1,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = CausalConv1d(in_channels, out_channels, kernel_size, dilation, rng=rng)
        self.conv2 = CausalConv1d(out_channels, out_channels, kernel_size, dilation, rng=rng)
        self.dropout = Dropout(dropout)
        self.downsample = None
        if in_channels != out_channels:
            self.downsample = CausalConv1d(in_channels, out_channels, kernel_size=1, dilation=1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.dropout(self.conv1(x).relu())
        hidden = self.dropout(self.conv2(hidden).relu())
        residual = x if self.downsample is None else self.downsample(x)
        return (hidden + residual).relu()


class TemporalConvNet(Module):
    """Stack of :class:`TemporalBlock` with exponentially growing dilation."""

    def __init__(
        self,
        in_channels: int,
        channel_sizes: Sequence[int],
        kernel_size: int = 2,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not channel_sizes:
            raise ValueError("channel_sizes must contain at least one layer width")
        self.blocks = ModuleList()
        previous = in_channels
        for level, width in enumerate(channel_sizes):
            block = TemporalBlock(
                previous,
                width,
                kernel_size=kernel_size,
                dilation=2**level,
                dropout=dropout,
                rng=rng,
            )
            self.blocks.append(block)
            previous = width
        self.out_channels = previous
        self.kernel_size = kernel_size

    @property
    def receptive_field(self) -> int:
        """Total number of past steps visible to the final output step."""
        field = 1
        for level in range(len(self.blocks)):
            field += 2 * (self.kernel_size - 1) * 2**level
        return field

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x

    def last_step(self, x: Tensor) -> Tensor:
        """Convenience: run the network and return the final time step ``(B, C)``."""
        output = self.forward(x)
        return output[:, -1, :]
