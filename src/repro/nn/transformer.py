"""Transformer blocks and a GPT-2-style causal language-model backbone.

BIGCity (Sec. V-B) uses GPT-2 as the backbone of its Versatile Model with
Task-oriented Prompts.  We reproduce the GPT-2 architecture — pre-norm
transformer blocks with causal multi-head attention, GELU feed-forward
layers, learned positional embeddings — at a configurable (CPU-friendly)
size.  A bidirectional :class:`TransformerEncoder` is also provided for the
baseline models that need one (Toast, START, RNTrajRec, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.nn.attention import KVCache, MultiHeadAttention
from repro.nn.layers import Dropout, Embedding, GELU, LayerNorm, Linear
from repro.nn.module import Module, ModuleList
from repro.nn.tensor import Tensor, is_grad_enabled


class FeedForward(Module):
    """Position-wise feed-forward network used inside transformer blocks."""

    def __init__(self, d_model: int, d_ff: int, dropout: float = 0.0, rng=None) -> None:
        super().__init__()
        self.fc_in = Linear(d_model, d_ff, rng=rng)
        self.act = GELU()
        self.fc_out = Linear(d_ff, d_model, rng=rng)
        self.dropout = Dropout(dropout)

    def forward(self, x: Tensor) -> Tensor:
        return self.dropout(self.fc_out(self.act(self.fc_in(x))))


class TransformerBlock(Module):
    """Pre-norm transformer block (GPT-2 layout)."""

    def __init__(
        self,
        d_model: int,
        num_heads: int,
        d_ff: Optional[int] = None,
        dropout: float = 0.0,
        causal: bool = True,
        rng=None,
    ) -> None:
        super().__init__()
        d_ff = d_ff or 4 * d_model
        self.ln_1 = LayerNorm(d_model)
        self.attn = MultiHeadAttention(d_model, num_heads, dropout=dropout, causal=causal, rng=rng)
        self.ln_2 = LayerNorm(d_model)
        self.mlp = FeedForward(d_model, d_ff, dropout=dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        padding_mask: Optional[np.ndarray] = None,
        cache: Optional[KVCache] = None,
    ) -> Tensor:
        x = x + self.attn(self.ln_1(x), padding_mask=padding_mask, cache=cache)
        x = x + self.mlp(self.ln_2(x))
        return x


@dataclass
class GPT2Config:
    """Configuration of the GPT-2-style backbone.

    The defaults are deliberately small so that the full BIGCity model trains
    on a CPU in seconds; the architecture is unchanged from GPT-2 apart from
    scale.
    """

    d_model: int = 64
    num_layers: int = 4
    num_heads: int = 4
    d_ff: Optional[int] = None
    max_position: int = 512
    dropout: float = 0.0
    vocab_size: int = 0
    causal: bool = True
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ValueError("d_model must be divisible by num_heads")
        if self.d_ff is None:
            self.d_ff = 4 * self.d_model


class GPT2Model(Module):
    """A GPT-2-architecture transformer operating on pre-embedded inputs.

    Unlike a text-only GPT-2, the BIGCity backbone receives a mixed sequence
    of text tokens, ST tokens and task tokens that are already embedded in
    ``d_model`` dimensions, so this module exposes ``forward(embeddings)``
    rather than ``forward(token_ids)``.  When ``vocab_size > 0`` a token
    embedding table is created as well (used by the text-instruction branch
    and by pure language-model tests).
    """

    def __init__(self, config: GPT2Config) -> None:
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        if config.vocab_size > 0:
            self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        else:
            self.token_embedding = None
        self.position_embedding = Embedding(config.max_position, config.d_model, rng=rng)
        self.drop = Dropout(config.dropout)
        self.blocks = ModuleList(
            [
                TransformerBlock(
                    config.d_model,
                    config.num_heads,
                    d_ff=config.d_ff,
                    dropout=config.dropout,
                    causal=config.causal,
                    rng=rng,
                )
                for _ in range(config.num_layers)
            ]
        )
        self.ln_f = LayerNorm(config.d_model)

    # ------------------------------------------------------------------
    def embed_tokens(self, token_ids: np.ndarray) -> Tensor:
        """Embed integer token ids with the (optional) token table."""
        if self.token_embedding is None:
            raise RuntimeError("backbone was built without a token vocabulary")
        return self.token_embedding(token_ids)

    def new_caches(self) -> List[KVCache]:
        """Fresh per-layer KV caches for autoregressive decoding."""
        return [KVCache() for _ in self.blocks]

    def forward(
        self,
        embeddings: Tensor,
        padding_mask: Optional[np.ndarray] = None,
        add_positions: bool = True,
        caches: Optional[List[KVCache]] = None,
        position_ids: Optional[np.ndarray] = None,
    ) -> Tensor:
        """Run the transformer over ``(batch, seq, d_model)`` embeddings.

        With ``caches`` (from :meth:`new_caches`) only the *new* positions are
        passed in; keys/values of earlier calls are reused so a decode step is
        O(prefix) instead of O(prefix^2).  Cached forwards are inference-only
        and must run under ``no_grad``.

        ``position_ids`` overrides the default ``arange`` positional indices;
        a ``(batch, length)`` array gives every row its own positions.  Batched
        autoregressive decoding over rows of different prompt lengths needs
        this: the rows share one physical cache slot per step, but each row's
        new token logically continues *its own* sequence.
        """
        batch, length, d_model = embeddings.shape
        if d_model != self.config.d_model:
            raise ValueError(f"expected embedding dim {self.config.d_model}, got {d_model}")
        offset = 0
        if caches is not None:
            if is_grad_enabled():
                raise RuntimeError(
                    "KV-cached decoding is an inference fast path; wrap the call in no_grad()"
                )
            if len(caches) != len(self.blocks):
                raise ValueError(f"expected {len(self.blocks)} caches, got {len(caches)}")
            offset = caches[0].length
        if position_ids is not None:
            position_ids = np.asarray(position_ids, dtype=np.int64)
            highest = int(position_ids.max()) + 1 if position_ids.size else 0
        else:
            highest = offset + length
        if highest > self.config.max_position:
            raise ValueError(
                f"sequence length {highest} exceeds max_position {self.config.max_position}"
            )
        x = embeddings
        if add_positions:
            if position_ids is None:
                positions = np.arange(offset, offset + length)
                pos = self.position_embedding(positions).reshape(1, length, d_model)
            else:
                pos = self.position_embedding(position_ids)
                if position_ids.ndim == 1:
                    pos = pos.reshape(1, length, d_model)
            x = x + pos
        x = self.drop(x)
        for index, block in enumerate(self.blocks):
            x = block(x, padding_mask=padding_mask, cache=caches[index] if caches is not None else None)
        return self.ln_f(x)

    def hidden_size(self) -> int:
        return self.config.d_model


class TransformerEncoder(Module):
    """Bidirectional (non-causal) transformer encoder for baseline models."""

    def __init__(
        self,
        d_model: int,
        num_layers: int = 2,
        num_heads: int = 4,
        d_ff: Optional[int] = None,
        dropout: float = 0.0,
        max_position: int = 512,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.d_model = d_model
        self.position_embedding = Embedding(max_position, d_model, rng=rng)
        self.blocks = ModuleList(
            [
                TransformerBlock(d_model, num_heads, d_ff=d_ff, dropout=dropout, causal=False, rng=rng)
                for _ in range(num_layers)
            ]
        )
        self.ln_f = LayerNorm(d_model)

    def forward(self, x: Tensor, padding_mask: Optional[np.ndarray] = None) -> Tensor:
        batch, length, d_model = x.shape
        positions = np.arange(length)
        x = x + self.position_embedding(positions).reshape(1, length, d_model)
        for block in self.blocks:
            x = block(x, padding_mask=padding_mask)
        return self.ln_f(x)
