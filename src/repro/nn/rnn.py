"""Recurrent layers (GRU) used by the RNN-based baseline models."""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.nn.layers import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class GRUCell(Module):
    """A single gated recurrent unit cell."""

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.reset_gate = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.update_gate = Linear(input_size + hidden_size, hidden_size, rng=rng)
        self.candidate = Linear(input_size + hidden_size, hidden_size, rng=rng)

    def forward(self, x: Tensor, hidden: Tensor) -> Tensor:
        """One step: ``x`` is ``(batch, input_size)``, ``hidden`` is ``(batch, hidden_size)``."""
        combined = Tensor.concat([x, hidden], axis=-1)
        reset = self.reset_gate(combined).sigmoid()
        update = self.update_gate(combined).sigmoid()
        candidate_input = Tensor.concat([x, reset * hidden], axis=-1)
        candidate = self.candidate(candidate_input).tanh()
        return update * hidden + (1.0 - update) * candidate


class GRU(Module):
    """A (single-layer) GRU over ``(batch, time, input_size)`` sequences.

    Padded positions (given by ``padding_mask``, True = padded) keep the
    previous hidden state, so the final hidden state corresponds to the last
    real element of each sequence.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.cell = GRUCell(input_size, hidden_size, rng=rng)

    def forward(
        self,
        x: Tensor,
        padding_mask: Optional[np.ndarray] = None,
        initial_hidden: Optional[Tensor] = None,
    ) -> Tuple[Tensor, Tensor]:
        """Return ``(outputs, final_hidden)``.

        ``outputs`` has shape ``(batch, time, hidden_size)`` and contains the
        hidden state after every step; ``final_hidden`` is ``(batch,
        hidden_size)``.
        """
        batch, length, _ = x.shape
        hidden = initial_hidden if initial_hidden is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs: List[Tensor] = []
        for step in range(length):
            step_input = x[:, step, :]
            new_hidden = self.cell(step_input, hidden)
            if padding_mask is not None:
                keep = np.asarray(padding_mask, dtype=bool)[:, step][:, None]
                keep_tensor = Tensor(keep.astype(np.float64))
                new_hidden = new_hidden * (1.0 - keep_tensor) + hidden * keep_tensor
            hidden = new_hidden
            outputs.append(hidden)
        return Tensor.stack(outputs, axis=1), hidden
