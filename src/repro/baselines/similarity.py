"""Classical trajectory-similarity measures (Fig. 6 scalability study).

DTW, LCSS, Fréchet distance and EDR operate directly on the coordinate
sequences of trajectories (segment midpoints).  They need no training, but
their query cost grows with both trajectory length and database size — which
is exactly the scalability contrast the paper draws against embedding-based
search.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

import numpy as np

from repro.data.trajectory import Trajectory
from repro.roadnet.network import RoadNetwork


def _pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two coordinate sequences."""
    return np.hypot(a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1])


def dtw_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Dynamic time warping distance between coordinate sequences."""
    costs = _pairwise_distances(a, b)
    n, m = costs.shape
    table = np.full((n + 1, m + 1), np.inf)
    table[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            table[i, j] = costs[i - 1, j - 1] + min(table[i - 1, j], table[i, j - 1], table[i - 1, j - 1])
    return float(table[n, m])


def lcss_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 0.3) -> float:
    """1 - normalised longest common subsequence (lower = more similar)."""
    costs = _pairwise_distances(a, b) <= epsilon
    n, m = costs.shape
    table = np.zeros((n + 1, m + 1))
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if costs[i - 1, j - 1]:
                table[i, j] = table[i - 1, j - 1] + 1
            else:
                table[i, j] = max(table[i - 1, j], table[i, j - 1])
    return float(1.0 - table[n, m] / min(n, m))


def frechet_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Discrete Fréchet distance between coordinate sequences."""
    costs = _pairwise_distances(a, b)
    n, m = costs.shape
    table = np.full((n, m), -1.0)
    table[0, 0] = costs[0, 0]
    for i in range(1, n):
        table[i, 0] = max(table[i - 1, 0], costs[i, 0])
    for j in range(1, m):
        table[0, j] = max(table[0, j - 1], costs[0, j])
    for i in range(1, n):
        for j in range(1, m):
            table[i, j] = max(min(table[i - 1, j], table[i - 1, j - 1], table[i, j - 1]), costs[i, j])
    return float(table[n - 1, m - 1])


def edr_distance(a: np.ndarray, b: np.ndarray, epsilon: float = 0.3) -> float:
    """Edit distance on real sequences, normalised by the longer length."""
    costs = _pairwise_distances(a, b) <= epsilon
    n, m = costs.shape
    table = np.zeros((n + 1, m + 1))
    table[:, 0] = np.arange(n + 1)
    table[0, :] = np.arange(m + 1)
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            substitution = 0 if costs[i - 1, j - 1] else 1
            table[i, j] = min(
                table[i - 1, j - 1] + substitution,
                table[i - 1, j] + 1,
                table[i, j - 1] + 1,
            )
    return float(table[n, m] / max(n, m))


#: name -> distance function over coordinate arrays
CLASSICAL_SIMILARITY_MEASURES: Dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "dtw": dtw_distance,
    "lcss": lcss_distance,
    "frechet": frechet_distance,
    "edr": edr_distance,
}


class ClassicalSimilarity:
    """Adapter exposing a classical measure as a trajectory distance function."""

    def __init__(self, network: RoadNetwork, method: str = "dtw") -> None:
        if method not in CLASSICAL_SIMILARITY_MEASURES:
            raise KeyError(f"unknown measure {method!r}; available: {sorted(CLASSICAL_SIMILARITY_MEASURES)}")
        self.method = method
        self._distance = CLASSICAL_SIMILARITY_MEASURES[method]
        self._midpoints = np.array([s.midpoint for s in network.segments])

    def coordinates(self, trajectory: Trajectory) -> np.ndarray:
        return self._midpoints[trajectory.segment_array()]

    def __call__(self, query: Trajectory, candidate: Trajectory) -> float:
        return self._distance(self.coordinates(query), self.coordinates(candidate))
