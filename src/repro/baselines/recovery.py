"""Trajectory-recovery baselines (Table IV).

* **Linear+HMM** — positions of the missing samples are linearly interpolated
  between the observed samples, then snapped to road segments with an HMM map
  matcher (Hoteit et al., 2014).
* **DTHR+HMM** — like Linear+HMM but the interpolation follows the road-graph
  shortest path between observed samples (distance-threshold heuristic).
* **MTrajRec** — GRU seq2seq: encode the observed low-rate trajectory, decode
  a segment id for every missing position (Ren et al., 2021).
* **RNTrajRec** — transformer encoder over the observed samples with
  road-network-enhanced segment embeddings (adjacency-propagated), decoding
  as in MTrajRec (Chen et al., 2023).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.mapmatch import HMMMapMatcher
from repro.data.trajectory import Trajectory, subsample_trajectory
from repro.nn import losses
from repro.nn.gat import normalized_adjacency
from repro.nn.layers import Embedding, Linear, MLP
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.nn.rnn import GRU
from repro.nn.tensor import Tensor, no_grad
from repro.nn.transformer import TransformerEncoder
from repro.tasks.decoding import constrained_recovery_choice, gap_candidates


# ----------------------------------------------------------------------
# Rule-based methods
# ----------------------------------------------------------------------
class _InterpolateHMMRecovery:
    """Shared implementation of the interpolation + HMM map-matching recovery."""

    interpolation_mode = "linear"
    name = "interp_hmm"

    def __init__(self, dataset: CityDataset, **matcher_kwargs) -> None:
        self.dataset = dataset
        self.matcher = HMMMapMatcher(dataset.network, **matcher_kwargs)

    def fit(self) -> None:
        """Rule-based methods need no training; present for interface parity."""

    def recover(self, trajectory: Trajectory, kept_indices: np.ndarray) -> np.ndarray:
        kept = np.asarray(sorted(int(i) for i in kept_indices))
        known_segments = [trajectory.segments[i] for i in kept]
        counts_between = [int(b - a - 1) for a, b in zip(kept[:-1], kept[1:])]
        positions = self.matcher.interpolate_positions(
            known_segments, counts_between, mode=self.interpolation_mode
        )
        matched = self.matcher.match(positions)
        # ``positions``/``matched`` cover every original index in order; pick the missing ones.
        missing = np.setdiff1d(np.arange(len(trajectory)), kept)
        index_of_position = {original: row for row, original in enumerate(self._original_indices(kept, counts_between))}
        return np.array([matched[index_of_position[int(i)]] for i in missing], dtype=np.int64)

    @staticmethod
    def _original_indices(kept: np.ndarray, counts_between: Sequence[int]) -> List[int]:
        """Original trajectory index of every interpolated position, in order."""
        order: List[int] = []
        for pair, count in enumerate(counts_between):
            order.append(int(kept[pair]))
            order.extend(range(int(kept[pair]) + 1, int(kept[pair]) + 1 + count))
        order.append(int(kept[-1]))
        return order


class LinearHMMRecovery(_InterpolateHMMRecovery):
    """Straight-line interpolation between observed samples + HMM matching."""

    interpolation_mode = "linear"
    name = "linear_hmm"


class DTHRHMMRecovery(_InterpolateHMMRecovery):
    """Shortest-path (distance-threshold) interpolation + HMM matching."""

    interpolation_mode = "distance_threshold"
    name = "dthr_hmm"


# ----------------------------------------------------------------------
# Learned methods
# ----------------------------------------------------------------------
class _Seq2SeqRecovery(Module):
    """Shared encoder/decoder scaffolding for MTrajRec and RNTrajRec."""

    name = "seq2seq"

    def __init__(self, dataset: CityDataset, hidden_dim: int = 32, seed: int = 0) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.num_segments = dataset.num_segments
        self._rng = np.random.default_rng(seed)
        self.seed = seed
        self.segment_embedding = Embedding(self.num_segments, hidden_dim, rng=self._rng, std=0.5)
        self._build_encoder()
        # Decoder: [encoder summary || position fraction || neighbouring known segments]
        decoder_in = hidden_dim + 1 + 2 * hidden_dim
        self.decoder = MLP(decoder_in, [2 * hidden_dim], self.num_segments, rng=self._rng)

    # -- architecture hooks ---------------------------------------------------
    def _build_encoder(self) -> None:
        raise NotImplementedError

    def _encode_known(self, segment_ids: np.ndarray) -> Tensor:
        """Encode the observed (kept) samples; returns ``(num_kept, hidden)``."""
        raise NotImplementedError

    # -- shared logic -----------------------------------------------------------
    def _decoder_inputs(self, trajectory: Trajectory, kept: np.ndarray, encoded: Tensor) -> Tuple[Tensor, np.ndarray]:
        """Assemble decoder inputs for every missing position."""
        kept = np.asarray(sorted(int(i) for i in kept))
        missing = np.setdiff1d(np.arange(len(trajectory)), kept)
        summary = encoded.mean(axis=0)
        rows = []
        for position in missing:
            previous_kept = kept[kept < position].max()
            next_kept = kept[kept > position].min()
            prev_row = int(np.where(kept == previous_kept)[0][0])
            next_row = int(np.where(kept == next_kept)[0][0])
            fraction = (position - previous_kept) / max(next_kept - previous_kept, 1)
            rows.append(
                Tensor.concat(
                    [summary, Tensor(np.array([fraction])), encoded[prev_row], encoded[next_row]],
                    axis=-1,
                )
            )
        return Tensor.stack(rows, axis=0), missing

    def fit(self, mask_ratios: Sequence[float] = (0.85, 0.90), epochs: int = 2, learning_rate: float = 3e-3, max_samples: int = 80) -> List[float]:
        """Train on masked versions of the training trajectories."""
        trajectories = [t for t in self.dataset.train_trajectories if len(t) >= 6]
        if len(trajectories) > max_samples:
            index = self._rng.choice(len(trajectories), size=max_samples, replace=False)
            trajectories = [trajectories[i] for i in index]
        optimizer = Adam(self.trainable_parameters(), lr=learning_rate)
        history = []
        for _ in range(epochs):
            epoch_loss, count = 0.0, 0
            for trajectory in trajectories:
                ratio = float(self._rng.choice(mask_ratios))
                _, kept = subsample_trajectory(trajectory, keep_ratio=1.0 - ratio, rng=self._rng)
                encoded = self._encode_known(np.array([trajectory.segments[i] for i in kept]))
                inputs, missing = self._decoder_inputs(trajectory, kept, encoded)
                if len(missing) == 0:
                    continue
                targets = np.array([trajectory.segments[i] for i in missing])
                optimizer.zero_grad()
                loss = losses.cross_entropy(self.decoder(inputs), targets)
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.item())
                count += 1
            history.append(epoch_loss / max(count, 1))
        return history

    def recover(
        self, trajectory: Trajectory, kept_indices: np.ndarray, constrain_to_network: bool = True
    ) -> np.ndarray:
        kept = np.asarray(sorted(int(i) for i in kept_indices))
        with no_grad():
            encoded = self._encode_known(np.array([trajectory.segments[i] for i in kept]))
            inputs, missing = self._decoder_inputs(trajectory, kept, encoded)
            if len(missing) == 0:
                return np.zeros(0, dtype=np.int64)
            logits = self.decoder(inputs).data
        if not constrain_to_network:
            return np.argmax(logits, axis=-1)
        # Map-constrained decoding: both MTrajRec and RNTrajRec restrict the
        # recovered segment to candidates reachable between the surrounding
        # observed samples on the road network.
        recovered = []
        for row, position in zip(logits, missing):
            previous_kept = int(kept[kept < position].max())
            next_kept = int(kept[kept > position].min())
            candidates = gap_candidates(
                self.dataset.network,
                previous_segment=int(trajectory.segments[previous_kept]),
                next_segment=int(trajectory.segments[next_kept]),
                gap_length=next_kept - previous_kept - 1,
            )
            recovered.append(constrained_recovery_choice(row, candidates))
        return np.asarray(recovered, dtype=np.int64)


class MTrajRec(_Seq2SeqRecovery):
    """GRU seq2seq map-constrained recovery."""

    name = "mtrajrec"

    def _build_encoder(self) -> None:
        self.encoder = GRU(self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _encode_known(self, segment_ids: np.ndarray) -> Tensor:
        embedded = self.segment_embedding(segment_ids).reshape(1, len(segment_ids), self.hidden_dim)
        outputs, _ = self.encoder(embedded)
        return outputs.reshape(len(segment_ids), self.hidden_dim)


class RNTrajRec(_Seq2SeqRecovery):
    """Road-network-enhanced transformer recovery."""

    name = "rntrajrec"

    def _build_encoder(self) -> None:
        self.encoder = TransformerEncoder(
            d_model=self.hidden_dim, num_layers=2, num_heads=2, max_position=256, seed=self.seed
        )
        self._propagation = normalized_adjacency(self.dataset.network.adjacency)

    def _encode_known(self, segment_ids: np.ndarray) -> Tensor:
        # Road-network enhancement: propagate the embedding table over the graph
        # so each segment embedding carries neighbourhood context.
        table = self.segment_embedding.weight
        enhanced = Tensor(self._propagation).matmul(table) + table
        embedded = enhanced.index_select(segment_ids, axis=0).reshape(1, len(segment_ids), self.hidden_dim)
        return self.encoder(embedded).reshape(len(segment_ids), self.hidden_dim)


#: Registry used by the benchmark harness.
RECOVERY_BASELINES: Dict[str, type] = {
    LinearHMMRecovery.name: LinearHMMRecovery,
    DTHRHMMRecovery.name: DTHRHMMRecovery,
    MTrajRec.name: MTrajRec,
    RNTrajRec.name: RNTrajRec,
}


def build_recovery_baseline(name: str, dataset: CityDataset, seed: int = 0):
    """Instantiate a recovery baseline by its registry name."""
    if name not in RECOVERY_BASELINES:
        raise KeyError(f"unknown recovery baseline {name!r}; available: {sorted(RECOVERY_BASELINES)}")
    cls = RECOVERY_BASELINES[name]
    if cls in (MTrajRec, RNTrajRec):
        return cls(dataset, seed=seed)
    return cls(dataset)
