"""Traffic-state prediction baselines (Table V).

Each model consumes a history window of the whole-network traffic tensor,
``(batch, segments, history, channels)``, encodes it with its characteristic
spatial-temporal mechanism into per-segment hidden states, and decodes either
a forecast (``horizon`` future steps per segment) or a reconstruction of the
whole window (imputation mode).  The defining mechanisms:

* **DCRNN** — diffusion-convolutional GRU over the road graph.
* **GWNET** — gated temporal convolution + graph convolution with an
  *adaptive* adjacency learned from node embeddings.
* **MTGNN** — graph learned from node embeddings (top-k) + mix-hop
  propagation.
* **TrGNN** — propagation along the *trajectory transition* graph (transition
  counts harvested from the training trajectories).
* **STGODE** — continuous graph propagation integrated with explicit Euler
  steps (a graph ODE).
* **ST-Norm** — spatial and temporal normalisation branches feeding an MLP.
* **SSTBAN** — self-supervised temporal bottleneck attention.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.data.datasets import CityDataset
from repro.data.loader import TrafficWindowSampler
from repro.nn import losses
from repro.nn.gat import normalized_adjacency, random_walk_matrix
from repro.nn.layers import Linear, MLP
from repro.nn.module import Module, Parameter
from repro.nn import init
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad


class TrafficBaseline(Module):
    """Shared scaffolding: window sampling, normalisation, fit/predict/impute."""

    name = "base"

    def __init__(
        self,
        dataset: CityDataset,
        history: int = 6,
        horizon: int = 6,
        hidden_dim: int = 24,
        seed: int = 0,
    ) -> None:
        super().__init__()
        if dataset.traffic_states is None:
            raise ValueError(f"dataset {dataset.name!r} has no traffic states")
        self.dataset = dataset
        self.traffic = dataset.traffic_states
        self.history = history
        self.horizon = horizon
        self.hidden_dim = hidden_dim
        self.num_segments = self.traffic.num_segments
        self.num_channels = self.traffic.num_channels
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        flat = self.traffic.values.reshape(-1, self.num_channels)
        self._mean = flat.mean(axis=0)
        std = flat.std(axis=0)
        self._std = np.where(std < 1e-9, 1.0, std)
        self.adjacency = dataset.network.adjacency.astype(np.float64)
        self._build()
        self.forecast_head = Linear(self.hidden_dim, self.horizon * self.num_channels, rng=self._rng)
        self.imputation_head = Linear(self.hidden_dim, self.history * self.num_channels, rng=self._rng)

    # -- architecture hook ---------------------------------------------------
    def _build(self) -> None:
        raise NotImplementedError

    def _encode(self, x: Tensor) -> Tensor:
        """Encode ``(batch, segments, history, channels)`` into ``(batch, segments, hidden)``."""
        raise NotImplementedError

    # -- normalisation ---------------------------------------------------------
    def _normalise(self, values: np.ndarray) -> np.ndarray:
        return (values - self._mean) / self._std

    def _denormalise(self, values: np.ndarray) -> np.ndarray:
        return values * self._std + self._mean

    # -- training --------------------------------------------------------------
    def fit(
        self,
        num_windows: int = 32,
        epochs: int = 3,
        batch_size: int = 4,
        learning_rate: float = 3e-3,
        train_fraction: float = 0.7,
    ) -> List[float]:
        """Train the forecasting head on windows from the temporal train split."""
        sampler = TrafficWindowSampler(self.traffic, history=self.history, horizon=self.horizon, seed=self.seed)
        low, high = sampler.valid_start_range("train", train_fraction)
        starts = self._rng.integers(low, high, size=num_windows)
        inputs, targets = self._windows_from_starts(starts)
        optimizer = Adam(self.trainable_parameters(), lr=learning_rate)
        history = []
        for _ in range(epochs):
            order = self._rng.permutation(len(starts))
            epoch_loss, batches = 0.0, 0
            for begin in range(0, len(order), batch_size):
                index = order[begin : begin + batch_size]
                optimizer.zero_grad()
                hidden = self._encode(Tensor(inputs[index]))
                prediction = self.forecast_head(hidden).reshape(
                    len(index), self.num_segments, self.horizon, self.num_channels
                )
                loss = losses.mse_loss(prediction, targets[index])
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.item())
                batches += 1
            history.append(epoch_loss / max(batches, 1))
        return history

    def _windows_from_starts(self, starts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        values = self._normalise(self.traffic.values)
        inputs = np.stack([values[:, s : s + self.history, :] for s in starts])
        targets = np.stack([values[:, s + self.history : s + self.history + self.horizon, :] for s in starts])
        return inputs, targets

    # -- forecasting -------------------------------------------------------------
    def predict(self, segment_id: int, start_slice: int, history: int, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` steps for one segment, in original units."""
        if history != self.history:
            raise ValueError(f"model was built for history={self.history}, got {history}")
        values = self._normalise(self.traffic.values)
        window = values[:, start_slice : start_slice + self.history, :][None]
        with no_grad():
            hidden = self._encode(Tensor(window))
            prediction = self.forecast_head(hidden).reshape(
                1, self.num_segments, self.horizon, self.num_channels
            ).data
        return self._denormalise(prediction[0, segment_id, :horizon])

    # -- imputation ----------------------------------------------------------------
    def fit_imputation(
        self,
        num_windows: int = 24,
        epochs: int = 3,
        batch_size: int = 4,
        learning_rate: float = 3e-3,
        mask_ratio: float = 0.25,
    ) -> List[float]:
        """Train the imputation head: reconstruct windows whose cells are masked."""
        values = self._normalise(self.traffic.values)
        max_start = max(self.traffic.num_slices - self.history, 1)
        starts = self._rng.integers(0, max_start, size=num_windows)
        optimizer = Adam(self.trainable_parameters(), lr=learning_rate)
        history = []
        for _ in range(epochs):
            epoch_loss, batches = 0.0, 0
            for begin in range(0, num_windows, batch_size):
                chunk = starts[begin : begin + batch_size]
                clean = np.stack([values[:, s : s + self.history, :] for s in chunk])
                mask = self._rng.random(clean.shape[:3]) < mask_ratio
                corrupted = clean.copy()
                corrupted[mask] = 0.0
                optimizer.zero_grad()
                hidden = self._encode(Tensor(corrupted))
                reconstruction = self.imputation_head(hidden).reshape(clean.shape)
                loss = losses.masked_mse_loss(reconstruction, clean, mask[..., None] * np.ones_like(clean))
                loss.backward()
                optimizer.step()
                epoch_loss += float(loss.item())
                batches += 1
            history.append(epoch_loss / max(batches, 1))
        return history

    def impute(
        self,
        segment_id: int,
        start_slice: int,
        num_slices: int,
        masked_positions: Sequence[int],
        traffic_override: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Impute the masked slices of one segment's window, in original units.

        The window is processed in chunks of the model's native ``history``
        length; masked cells of the input are taken from ``traffic_override``
        (which the evaluator fills with channel means).
        """
        source = self.traffic.values if traffic_override is None else traffic_override
        values = self._normalise(source)
        masked_positions = np.asarray(sorted(int(p) for p in masked_positions))
        outputs = np.zeros((len(masked_positions), self.num_channels))
        with no_grad():
            for chunk_start in range(0, num_slices, self.history):
                lo = start_slice + chunk_start
                hi = min(lo + self.history, values.shape[1])
                window = values[:, lo:hi, :]
                if window.shape[1] < self.history:
                    pad = np.zeros((self.num_segments, self.history - window.shape[1], self.num_channels))
                    window = np.concatenate([window, pad], axis=1)
                hidden = self._encode(Tensor(window[None]))
                reconstruction = self.imputation_head(hidden).reshape(
                    1, self.num_segments, self.history, self.num_channels
                ).data[0, segment_id]
                for row, position in enumerate(masked_positions):
                    offset = position - chunk_start
                    if 0 <= offset < self.history:
                        outputs[row] = reconstruction[offset]
        return self._denormalise(outputs)


# ----------------------------------------------------------------------
# Model-specific encoders
# ----------------------------------------------------------------------
class DCRNN(TrafficBaseline):
    """Diffusion-convolutional recurrent network (Li et al., 2018)."""

    name = "dcrnn"

    def _build(self) -> None:
        self._forward_walk = random_walk_matrix(self.adjacency)
        self._backward_walk = random_walk_matrix(self.adjacency.T)
        in_dim = self.num_channels + self.hidden_dim
        self.update_gate = Linear(3 * in_dim, self.hidden_dim, rng=self._rng)
        self.reset_gate = Linear(3 * in_dim, self.hidden_dim, rng=self._rng)
        self.candidate = Linear(3 * in_dim, self.hidden_dim, rng=self._rng)

    def _diffuse(self, x: Tensor) -> Tensor:
        """Diffusion convolution: concatenate identity, forward and backward walks."""
        forward = Tensor(self._forward_walk).matmul(x)
        backward = Tensor(self._backward_walk).matmul(x)
        return Tensor.concat([x, forward, backward], axis=-1)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        hidden = Tensor(np.zeros((batch, segments, self.hidden_dim)))
        for step in range(history):
            step_input = x[:, :, step, :]
            combined = Tensor.concat([step_input, hidden], axis=-1)
            diffused = self._diffuse(combined)
            update = self.update_gate(diffused).sigmoid()
            reset = self.reset_gate(diffused).sigmoid()
            candidate_in = self._diffuse(Tensor.concat([step_input, reset * hidden], axis=-1))
            candidate = self.candidate(candidate_in).tanh()
            hidden = update * hidden + (1.0 - update) * candidate
        return hidden


class GWNET(TrafficBaseline):
    """Graph WaveNet (Wu et al., 2019): gated temporal conv + adaptive adjacency."""

    name = "gwnet"

    def _build(self) -> None:
        self._norm_adj = normalized_adjacency(self.adjacency)
        self.node_embedding = Parameter(init.normal((self.num_segments, 8), std=0.1, rng=self._rng))
        self.temporal_filter = Linear(self.history * self.num_channels, self.hidden_dim, rng=self._rng)
        self.temporal_gate = Linear(self.history * self.num_channels, self.hidden_dim, rng=self._rng)
        self.graph_mix = Linear(2 * self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        flat = x.reshape(batch, segments, history * channels)
        gated = self.temporal_filter(flat).tanh() * self.temporal_gate(flat).sigmoid()
        # Adaptive adjacency from node embeddings (softmax of E E^T).
        scores = self.node_embedding.matmul(self.node_embedding.transpose()).relu()
        adaptive = scores.softmax(axis=-1)
        static_prop = Tensor(self._norm_adj).matmul(gated)
        adaptive_prop = adaptive.matmul(gated)
        return self.graph_mix(Tensor.concat([static_prop, adaptive_prop], axis=-1)).relu()


class MTGNN(TrafficBaseline):
    """MTGNN (Wu et al., 2020): learned sparse graph + mix-hop propagation."""

    name = "mtgnn"

    def _build(self) -> None:
        self.source_embedding = Parameter(init.normal((self.num_segments, 8), std=0.1, rng=self._rng))
        self.target_embedding = Parameter(init.normal((self.num_segments, 8), std=0.1, rng=self._rng))
        self.temporal_mlp = MLP(self.history * self.num_channels, [self.hidden_dim], self.hidden_dim, rng=self._rng)
        self.hop_mix = Linear(3 * self.hidden_dim, self.hidden_dim, rng=self._rng)
        self._top_k = min(8, self.num_segments)

    def _learned_adjacency(self) -> Tensor:
        scores = self.source_embedding.matmul(self.target_embedding.transpose()).tanh().relu()
        # Sparsify: keep the top-k scores per row (mask computed outside the graph).
        raw = scores.data
        threshold = np.sort(raw, axis=1)[:, -self._top_k][:, None]
        mask = raw < threshold
        sparse = scores.masked_fill(mask, 0.0)
        row_sum = sparse.sum(axis=1, keepdims=True).clip(1e-9, np.inf)
        return sparse / row_sum

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        h0 = self.temporal_mlp(x.reshape(batch, segments, history * channels))
        adjacency = self._learned_adjacency()
        h1 = adjacency.matmul(h0)
        h2 = adjacency.matmul(h1)
        return self.hop_mix(Tensor.concat([h0, h1, h2], axis=-1)).relu()


class TrGNN(TrafficBaseline):
    """TrGNN (Li et al., 2021): propagation along trajectory transition flows."""

    name = "trgnn"

    def _build(self) -> None:
        self._transition = self._trajectory_transition_matrix()
        self.temporal_mlp = MLP(self.history * self.num_channels, [self.hidden_dim], self.hidden_dim, rng=self._rng)
        self.propagation_mix = Linear(2 * self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _trajectory_transition_matrix(self) -> np.ndarray:
        counts = np.zeros((self.num_segments, self.num_segments))
        for trajectory in self.dataset.train_trajectories:
            for a, b in zip(trajectory.segments[:-1], trajectory.segments[1:]):
                counts[a, b] += 1.0
        counts += self.adjacency * 0.1  # fall back to topology where no trajectories pass
        row_sum = counts.sum(axis=1, keepdims=True)
        return counts / np.maximum(row_sum, 1e-9)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        h0 = self.temporal_mlp(x.reshape(batch, segments, history * channels))
        flow = Tensor(self._transition).matmul(h0)
        return self.propagation_mix(Tensor.concat([h0, flow], axis=-1)).relu()


class STGODE(TrafficBaseline):
    """STGODE (Fang et al., 2021): graph ODE integrated with explicit Euler steps."""

    name = "stgode"

    _ode_steps = 4
    _step_size = 0.25

    def _build(self) -> None:
        self._norm_adj = normalized_adjacency(self.adjacency)
        self.temporal_mlp = MLP(self.history * self.num_channels, [self.hidden_dim], self.hidden_dim, rng=self._rng)
        self.ode_transform = Linear(self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        h = self.temporal_mlp(x.reshape(batch, segments, history * channels))
        adjacency = Tensor(self._norm_adj)
        for _ in range(self._ode_steps):
            derivative = adjacency.matmul(self.ode_transform(h).tanh()) - h
            h = h + derivative * self._step_size
        return h.relu()


class STNorm(TrafficBaseline):
    """ST-Norm (Deng et al., 2021): spatial and temporal normalisation branches."""

    name = "stnorm"

    def _build(self) -> None:
        feature_dim = self.history * self.num_channels
        self.mixer = MLP(3 * feature_dim, [2 * self.hidden_dim], self.hidden_dim, rng=self._rng)

    @staticmethod
    def _normalise_over(values: np.ndarray, axis: int) -> np.ndarray:
        mean = values.mean(axis=axis, keepdims=True)
        std = values.std(axis=axis, keepdims=True)
        return (values - mean) / np.maximum(std, 1e-6)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        raw = x.data
        spatial_norm = self._normalise_over(raw, axis=1)   # normalise across segments
        temporal_norm = self._normalise_over(raw, axis=2)  # normalise across time
        stacked = np.concatenate(
            [
                raw.reshape(batch, segments, history * channels),
                spatial_norm.reshape(batch, segments, history * channels),
                temporal_norm.reshape(batch, segments, history * channels),
            ],
            axis=-1,
        )
        return self.mixer(Tensor(stacked)).relu()


class SSTBAN(TrafficBaseline):
    """SSTBAN (Guo et al., 2023): self-supervised temporal bottleneck attention."""

    name = "sstban"

    _bottleneck = 4

    def _build(self) -> None:
        self.step_projection = Linear(self.num_channels, self.hidden_dim, rng=self._rng)
        self.bottleneck_query = Parameter(init.normal((self._bottleneck, self.hidden_dim), std=0.1, rng=self._rng))
        self.attention_out = Linear(self._bottleneck * self.hidden_dim, self.hidden_dim, rng=self._rng)

    def _encode(self, x: Tensor) -> Tensor:
        batch, segments, history, channels = x.shape
        steps = self.step_projection(x)  # (B, N, T, H)
        flat = steps.reshape(batch * segments, history, self.hidden_dim)
        # Bottleneck attention: a small set of latent queries attends over time.
        queries = self.bottleneck_query  # (K, H)
        scores = flat.matmul(queries.transpose())  # (B*N, T, K)
        weights = scores.softmax(axis=1)
        summarised = weights.transpose(0, 2, 1).matmul(flat)  # (B*N, K, H)
        pooled = self.attention_out(summarised.reshape(batch * segments, self._bottleneck * self.hidden_dim))
        return pooled.reshape(batch, segments, self.hidden_dim).relu()


#: Registry used by the benchmark harness.
TRAFFIC_BASELINES: Dict[str, Type[TrafficBaseline]] = {
    cls.name: cls for cls in (DCRNN, GWNET, MTGNN, TrGNN, STGODE, STNorm, SSTBAN)
}


def build_traffic_baseline(
    name: str,
    dataset: CityDataset,
    history: int = 6,
    horizon: int = 6,
    hidden_dim: int = 24,
    seed: int = 0,
) -> TrafficBaseline:
    """Instantiate a traffic baseline by its registry name."""
    if name not in TRAFFIC_BASELINES:
        raise KeyError(f"unknown traffic baseline {name!r}; available: {sorted(TRAFFIC_BASELINES)}")
    return TRAFFIC_BASELINES[name](dataset, history=history, horizon=horizon, hidden_dim=hidden_dim, seed=seed)
