"""Baseline models compared against BIGCity in the paper's evaluation.

Three families, mirroring Sec. VII-A "Baselines":

* :mod:`repro.baselines.trajectory` — seven trajectory representation models
  (Trajectory2vec, t2vec, TremBR, Toast, JCLRNT, START, JGRM).
* :mod:`repro.baselines.traffic` — seven traffic-state models (DCRNN, GWNET,
  MTGNN, TrGNN, STGODE, ST-Norm, SSTBAN).
* :mod:`repro.baselines.recovery` — four trajectory-recovery methods
  (Linear+HMM, DTHR+HMM, MTrajRec, RNTrajRec).
* :mod:`repro.baselines.similarity` — classical similarity measures (DTW,
  LCSS, Fréchet, EDR) used in the scalability study (Fig. 6).

Each re-implementation keeps the defining mechanism of the original method at
a CPU-friendly scale; see DESIGN.md for the per-model summary.
"""

from repro.baselines.trajectory import (
    TrajectoryBaseline,
    Trajectory2Vec,
    T2Vec,
    TremBR,
    Toast,
    JCLRNT,
    START,
    JGRM,
    TRAJECTORY_BASELINES,
    build_trajectory_baseline,
)
from repro.baselines.traffic import (
    TrafficBaseline,
    DCRNN,
    GWNET,
    MTGNN,
    TrGNN,
    STGODE,
    STNorm,
    SSTBAN,
    TRAFFIC_BASELINES,
    build_traffic_baseline,
)
from repro.baselines.recovery import (
    LinearHMMRecovery,
    DTHRHMMRecovery,
    MTrajRec,
    RNTrajRec,
    RECOVERY_BASELINES,
    build_recovery_baseline,
)
from repro.baselines.similarity import (
    ClassicalSimilarity,
    dtw_distance,
    lcss_distance,
    frechet_distance,
    edr_distance,
    CLASSICAL_SIMILARITY_MEASURES,
)

__all__ = [
    "TrajectoryBaseline",
    "Trajectory2Vec",
    "T2Vec",
    "TremBR",
    "Toast",
    "JCLRNT",
    "START",
    "JGRM",
    "TRAJECTORY_BASELINES",
    "build_trajectory_baseline",
    "TrafficBaseline",
    "DCRNN",
    "GWNET",
    "MTGNN",
    "TrGNN",
    "STGODE",
    "STNorm",
    "SSTBAN",
    "TRAFFIC_BASELINES",
    "build_traffic_baseline",
    "LinearHMMRecovery",
    "DTHRHMMRecovery",
    "MTrajRec",
    "RNTrajRec",
    "RECOVERY_BASELINES",
    "build_recovery_baseline",
    "ClassicalSimilarity",
    "dtw_distance",
    "lcss_distance",
    "frechet_distance",
    "edr_distance",
    "CLASSICAL_SIMILARITY_MEASURES",
]
